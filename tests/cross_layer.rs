//! Cross-layer scenarios: interactions *between* the reliability,
//! security and quality tools — the paper's core thesis that these
//! aspects are interdependent.

use rescue_core::aging::bti::BtiModel;
use rescue_core::aging::delay::{aged_timing, OperatingPoint};
use rescue_core::aging::rejuvenation;
use rescue_core::atpg::scoap::Cop;
use rescue_core::cpu::autosoc::{run_campaign, AutoSocConfig};
use rescue_core::cpu::programs;
use rescue_core::fault_mgmt::{evaluate, event_mix, Policy};
use rescue_core::mem::march::{classic_universe, march_cm, march_coverage};
use rescue_core::mem::sensor::{compare_dft, CurrentSensor};
use rescue_core::mem::FinfetDefect;
use rescue_core::netlist::generate;

#[test]
fn aging_uses_quality_tools_signal_probabilities() {
    // Quality → reliability: COP signal probabilities (an ATPG-side
    // measure) drive the NBTI duty model.
    let net = generate::alu(4);
    let cop = Cop::analyze(&net);
    let p_one: Vec<f64> = net.ids().map(|id| cop.p_one(id)).collect();
    let timing = aged_timing(
        &net,
        &p_one,
        &BtiModel::bulk_28nm(),
        OperatingPoint::nominal(),
        10.0,
        380.0,
    );
    assert!(timing.slowdown() > 1.0);
    // Rejuvenation patterns reduce the imbalance the COP profile showed.
    let r = rejuvenation::evolve(&net, 12, 80, 5);
    assert!(r.evolved.mean_imbalance <= r.baseline.mean_imbalance);
}

#[test]
fn finfet_defects_split_between_march_and_sensor() {
    // Quality (March tests) and reliability (weak cells) need different
    // detectors; only the combination closes the FinFET defect list.
    let mut faults = Vec::new();
    for c in 0..12 {
        faults.push(
            FinfetDefect::ChannelCrack {
                cell: c,
                severity: 3,
            }
            .to_cell_fault(),
        );
        faults.push(
            FinfetDefect::GateOxideShort {
                cell: c,
                severity: 0,
            }
            .to_cell_fault(),
        );
    }
    let cmp = compare_dft(&march_cm(), CurrentSensor::new(0.15), 12, &faults);
    assert!(cmp.march_only < 0.6);
    assert_eq!(cmp.combined, 1.0);
    // ...while the classic universe alone is fully covered by March C-.
    let classic = classic_universe(12);
    assert_eq!(march_coverage(&march_cm(), 12, &classic), 1.0);
}

#[test]
fn safety_mechanisms_trade_area_for_sdc() {
    let w = programs::matmul().expect("assembles");
    let base = run_campaign(AutoSocConfig::Baseline, &w, 20, 3);
    let full = run_campaign(AutoSocConfig::LockstepEcc, &w, 20, 3);
    assert!(full.sdc <= base.sdc);
    assert!(AutoSocConfig::LockstepEcc.area_overhead() > AutoSocConfig::Baseline.area_overhead());
}

#[test]
fn cross_layer_management_beats_single_layer() {
    let events = event_mix(400, 0.2, 13);
    let mitm = evaluate(Policy::MeetInTheMiddle, &events);
    let high = evaluate(Policy::HighLevelOnly, &events);
    let low = evaluate(Policy::LowLevelOnly, &events);
    assert!(mitm.mean_latency < high.mean_latency);
    assert!(mitm.mean_latency <= low.mean_latency);
    // The middle ground keeps the high-level manager's adaptivity…
    assert!(mitm.recurrences_prevented > 0);
    // …while handling the simple majority locally.
    assert!(mitm.local_handled > mitm.escalations);
}

#[test]
fn security_blocks_scan_access_story() {
    // Quality infrastructure (RSN) is a security liability: the same
    // access plan that calibrates an instrument reads out a key register.
    use rescue_core::rsn::access::access_sequence;
    use rescue_core::rsn::network::{RsnNode, ScanNetwork};
    let mut net = ScanNetwork::new(RsnNode::chain(vec![
        RsnNode::sib("dbg", RsnNode::tdr("debug_reg", 8)),
        RsnNode::sib("sec", RsnNode::tdr("key_reg", 16)),
    ]));
    let plan = access_sequence(&mut net, "key_reg", &[true; 16]).expect("plan found");
    assert!(
        plan.csu_count() >= 2,
        "an attacker reaches the key register through the test network"
    );
    // The RESCUE answer: keys should live in PUFs, not scan-accessible
    // registers (Section III.F).
    use rescue_core::mem::puf::{Environment, SramPuf};
    use rescue_core::security::keystore::PufKeyStore;
    let puf = SramPuf::manufacture(160, 1);
    let store = PufKeyStore::new(5);
    let (key, helper) = store.enroll(&puf);
    let clone = SramPuf::manufacture(160, 2);
    assert_ne!(
        store.reconstruct(&clone, &helper, Environment::nominal(), 4),
        key,
        "helper data without the physical device yields nothing"
    );
}

#[test]
fn one_journal_captures_every_layer_of_a_mixed_run() {
    // Observability is itself cross-layer: quality (fault sim), safety
    // (classification) and reliability (SEU) campaigns all report into
    // the same journal and metrics registry, so one export shows where
    // a mixed analysis spent its time.
    use rescue_core::campaign::Campaign;
    use rescue_core::faults::{simulate::FaultSimulator, universe};
    use rescue_core::radiation::seu_analysis::SeuCampaign;
    use rescue_core::safety::classify::classify_with_stats;
    use rescue_core::telemetry::{journal, metrics, TelemetryConfig};
    let _serial = rescue_core::telemetry::exclusive();
    TelemetryConfig::on().install();
    metrics::reset();
    let mark = journal::mark();
    let driver = Campaign::serial();

    let comb = generate::random_logic(6, 60, 3, 21);
    let faults = universe::stuck_at_universe(&comb);
    let patterns: Vec<Vec<bool>> = (0..32u32)
        .map(|p| (0..6).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let outputs: Vec<String> = comb
        .primary_outputs()
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    FaultSimulator::new(&comb).campaign_with_stats(&faults, &patterns, &driver);
    classify_with_stats(&comb, &faults, &outputs, &[], &patterns, &driver);
    let seq = generate::lfsr(6, &[5, 1]);
    SeuCampaign::new(4, 6).run_exhaustive_on(&seq, &[], &driver);

    let j = journal::Journal::take_since(mark).current_thread();
    let snap = metrics::snapshot();
    TelemetryConfig::off().install();
    metrics::reset();

    let names: Vec<&str> = j.spans().iter().map(|s| s.name).collect();
    for span in ["fault.campaign", "safety.classify", "seu.campaign"] {
        assert!(names.contains(&span), "{span} missing from {names:?}");
    }
    assert_eq!(j.unmatched_begins(), 0);
    // Each layer also left its engine-level metrics behind.
    assert!(snap.counter("fault.faults_evaluated").unwrap_or(0) > 0);
    assert!(snap.counter("sim.seq_steps").unwrap_or(0) > 0);
    assert!(
        snap.histogram("fault.cone_size")
            .map(|h| h.total)
            .unwrap_or(0)
            > 0
    );
}
