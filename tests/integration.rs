//! Cross-crate integration tests: the holistic flow and the consistency
//! of verdicts between independently implemented engines.

use rescue_core::atpg::podem::{Podem, PodemOutcome};
use rescue_core::faults::{simulate::FaultSimulator, universe};
use rescue_core::flow::HolisticFlow;
use rescue_core::netlist::generate;
use rescue_core::riif::RiifDatabase;
use rescue_core::safety::confidence::cross_check;
use rescue_core::safety::slicing::sliced_campaign;

#[test]
fn holistic_flow_over_the_circuit_zoo() {
    for design in [
        generate::c17(),
        generate::adder(6),
        generate::alu(4),
        generate::parity(12),
        generate::comparator(6),
        generate::mux_tree(3),
    ] {
        let report = HolisticFlow::new().run(&design, 64, 9);
        assert!(
            report.fault_coverage > 0.99,
            "{}: coverage {}",
            report.design,
            report.fault_coverage
        );
        // RIIF round-trips through the text format.
        let back = RiifDatabase::from_text(&report.riif.to_text()).expect("riif parses");
        assert_eq!(back, report.riif);
    }
}

#[test]
fn three_engines_agree_on_random_designs() {
    for seed in [1u64, 2, 3, 4, 5] {
        let net = generate::random_logic(7, 60, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns: Vec<Vec<bool>> = (0..128u32)
            .map(|p| (0..7).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let check = cross_check(&net, &faults, &patterns);
        assert!(
            check.inconsistencies().is_empty(),
            "seed {seed}: {:?}",
            check.inconsistencies()
        );
    }
}

#[test]
fn slicing_never_changes_campaign_verdicts() {
    for seed in [11u64, 12, 13] {
        let net = generate::random_logic(6, 50, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns: Vec<Vec<bool>> = (0..64u32)
            .map(|p| (0..6).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let sliced = sliced_campaign(&net, &faults, &patterns);
        let naive = FaultSimulator::new(&net).campaign(&net, &faults, &patterns);
        assert_eq!(sliced.report.first_detection(), naive.first_detection());
        assert!(sliced.speedup() >= 1.0);
    }
}

#[test]
fn atpg_closes_what_fault_simulation_confirms() {
    // End-to-end: PODEM's claimed tests, once filled, must be confirmed
    // by the independent fault simulator.
    let net = generate::multiplier(3);
    let faults = universe::stuck_at_universe(&net);
    let podem = Podem::new(&net);
    let sim = FaultSimulator::new(&net);
    let mut patterns = Vec::new();
    let mut untestable = 0;
    for &f in &faults {
        match podem.generate(&net, f) {
            PodemOutcome::Test(cube) => patterns.push(cube.fill_with(true)),
            PodemOutcome::Untestable => untestable += 1,
            PodemOutcome::Aborted => {}
        }
    }
    let report = sim.campaign(&net, &faults, &patterns);
    assert!(
        report.detected_count() + untestable >= faults.len(),
        "detected {} + untestable {untestable} < {}",
        report.detected_count(),
        faults.len()
    );
}

#[test]
fn flow_journal_exports_validate_end_to_end() {
    // Observability end-to-end: run the flow with telemetry on, export
    // the journal through every sink, and hold the exports to the same
    // bar CI holds the quickstart artifact to.
    use rescue_core::telemetry::sinks::validate_jsonl;
    use rescue_core::telemetry::{journal, TelemetryConfig};
    let _serial = rescue_core::telemetry::exclusive();
    TelemetryConfig::on().install();
    let mark = journal::mark();
    let report = HolisticFlow::new().run(&generate::adder(6), 64, 9);
    let j = journal::Journal::take_since(mark).current_thread();
    TelemetryConfig::off().install();
    // The journal round-trips through the JSONL validator...
    let check = validate_jsonl(&j.to_jsonl()).expect("flow journal is well-formed");
    assert_eq!(check.events, j.len());
    assert_eq!(check.begins, check.ends, "every span closed");
    // ...the Chrome trace and markdown sinks render the same stream...
    assert!(j.to_chrome_trace().contains("\"name\":\"flow.atpg\""));
    assert!(j.to_markdown_summary().contains("| flow.fault_sim |"));
    // ...and the report's stage breakdown agrees with the raw journal.
    let journaled: u64 = j
        .with_prefix("flow.")
        .spans()
        .iter()
        .map(|s| s.dur_ns)
        .sum();
    let reported: u64 = report.stage_spans.iter().map(|(_, ns)| ns).sum();
    assert_eq!(reported, journaled);
}

#[test]
fn tmr_reduces_set_derating() {
    use rescue_core::radiation::set_analysis::SetCampaign;
    let inner = generate::parity(8);
    let protected = generate::tmr(&inner);
    let raw = SetCampaign::new(&inner).run(&inner, 300, 5);
    let tmr = SetCampaign::new(&protected).run(&protected, 300, 5);
    assert!(
        tmr.derating() < raw.derating(),
        "TMR {} vs raw {}",
        tmr.derating(),
        raw.derating()
    );
}
