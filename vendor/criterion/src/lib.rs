//! Offline, deterministic subset of the `criterion` 0.5 API.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the external `criterion` crate is replaced by this shim. It keeps the
//! harness surface the `rescue-bench` targets use — [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`] and [`black_box`] — and measures
//! wall-clock time with `std::time::Instant`, reporting the per-iteration
//! median over the configured sample count. No statistical analysis, plots
//! or `target/criterion` reports are produced.

use std::fmt;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work. Delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-invocation timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    pub last_median_ns: f64,
}

impl Bencher {
    /// Times `f`, collecting one duration per sample, and records the
    /// median. Each sample batches iterations so sub-microsecond bodies
    /// still get a meaningful reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit ~1 ms?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1);
        let batch = (1_000_000 / once).clamp(1, 10_000) as usize;
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_median_ns = times[times.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Benchmark driver: runs closures and prints one median line per target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            last_median_ns: 0.0,
        };
        f(&mut b);
        eprintln!(
            "{:<50} time: {}",
            id.to_string(),
            human_time(b.last_median_ns)
        );
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            last_median_ns: 0.0,
        };
        f(&mut b);
        eprintln!(
            "{:<50} time: {}",
            format!("{}/{}", self.name, id),
            human_time(b.last_median_ns)
        );
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Two-part benchmark identifier rendered as `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Declares a group of benchmark targets, with optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Expands to `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| black_box(1u64 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = target
    }

    #[test]
    fn harness_runs_and_measures() {
        benches();
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("f", 42), |b| {
            b.iter(|| black_box(2u32.pow(10)));
            assert!(b.last_median_ns >= 0.0);
        });
        group.finish();
    }
}
