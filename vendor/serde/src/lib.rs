//! Offline `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as marker
//! annotations (its persistence formats are hand-rolled), so this shim
//! re-exports no-op derive macros from the companion `serde_derive`
//! crate. No serialization machinery exists here; if a future PR needs
//! real serde, vendor the actual crate instead.

pub use serde_derive::{Deserialize, Serialize};
