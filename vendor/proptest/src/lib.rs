//! Offline, deterministic subset of the `proptest` 1.x API.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the external `proptest` crate is replaced by this shim. It covers the
//! surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and both
//!   `name in strategy` and `name: Type` parameter forms;
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, [`strategy::Just`],
//!   ranges, tuples, [`collection::vec`], [`option::of`],
//!   [`prop_oneof!`] and [`arbitrary::any`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully reproducible, no `.proptest-regressions` files)
//! and there is **no shrinking** — a failure reports the case index and
//! the generated values are reconstructible from the seed.

pub mod test_runner {
    /// Error raised by `prop_assert*` inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed-case error with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps hermetic CI fast
            // while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator driving strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator.
        pub fn seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Drives `f` over `config.cases` deterministic cases, panicking with
    /// the case index on the first failure (no shrinking).
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        for case in 0..config.cases {
            let mut rng = TestRng::seed(base ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15));
            if let Err(e) = f(&mut rng) {
                panic!(
                    "property '{name}' failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`; panics when empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one value from the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.index(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element`, `len` drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len: size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Defines property tests. Mirrors proptest's macro:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     fn holds(x in 0u32..100, flag: bool) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __pt_config = $cfg;
            $crate::test_runner::run_cases(&__pt_config, stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng, $($params)*);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $n:ident in $s:expr, $($rest:tt)*) => {
        let $n = $crate::strategy::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $n:ident in $s:expr) => {
        let $n = $crate::strategy::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, $n:ident : $ty:ty, $($rest:tt)*) => {
        let $n: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $n:ident : $ty:ty) => {
        let $n: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), $rng);
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__pt_l, __pt_r) => {
                if !(*__pt_l == *__pt_r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                            __pt_l,
                            __pt_r
                        )),
                    );
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__pt_l, __pt_r) => {
                if !(*__pt_l == *__pt_r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                            __pt_l,
                            __pt_r,
                            ::std::format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__pt_l, __pt_r) => {
                if *__pt_l == *__pt_r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
                            __pt_l,
                            __pt_r
                        ),
                    ));
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Commonly used re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i16..=4, f in 0.5f64..1.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        fn typed_params_and_vec(flag: bool, v in crate::collection::vec(0usize..10, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert_eq!(flag, flag);
        }

        fn oneof_and_map(x in prop_oneof![Just(1usize), (2usize..5).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (20..50).contains(&x), "got {x}");
        }

        fn option_of_generates_both(xs in crate::collection::vec(
            crate::option::of(0u8..10), 16..64)) {
            // With 16+ draws at 25% None, both variants overwhelmingly appear.
            prop_assert!(xs.iter().any(|x| x.is_some()) || xs.iter().all(|x| x.is_none()));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        crate::test_runner::run_cases(
            &ProptestConfig::with_cases(8),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
