//! Offline, deterministic subset of the `rand` 0.8 API.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the external `rand` crate is replaced by this shim. It implements the
//! exact surface the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`] — on top of the public-domain
//! xoshiro256++ generator seeded via SplitMix64. There is no OS entropy
//! source: every generator must be seeded explicitly, which is what the
//! reproducible experiments want anyway.

/// Low-level source of random words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with a uniform-ish distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// The generic `Range<T>`/`RangeInclusive<T>` impls of [`SampleRange`]
/// bound on this, which lets integer-literal ranges unify with the
/// surrounding expression's type (`BASE + rng.gen_range(0..32)` infers
/// the range element type from `BASE`), matching `rand`'s inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `lo..hi` (`inclusive = false`) or `lo..=hi`.
    ///
    /// Panics when the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let f = <$t as Standard>::sample(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded with
    /// SplitMix64, matching `rand`'s `StdRng` contract (fast, not
    /// cryptographic, stable across runs for a fixed seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
