//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable (`Arc`-backed) byte
//! container with slice semantics via `Deref`. Only the surface the
//! workspace uses is implemented.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip_and_slice_ops() {
        let b = Bytes::from(vec![5u8, 6, 7]);
        assert_eq!(b[0], 5);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[6, 7]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[1, 2]).as_ref(), &[1, 2]);
    }
}
