//! No-op `Serialize`/`Deserialize` derive macros for the offline `serde`
//! shim. The workspace only uses the derives as marker annotations (the
//! actual on-disk formats are hand-rolled line formats), so the derives
//! expand to nothing.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
