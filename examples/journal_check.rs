//! Validates a JSONL run journal exported by the quickstart (or any
//! other `RESCUE_JOURNAL=` export): every line must parse and every
//! `Begin` must pair LIFO with its `End` per `(process, thread)` lane —
//! so merged multi-process journals from `journal_merge` (each line
//! carrying a `pid` field) validate with the same gate as
//! single-process exports.
//!
//! ```text
//! RESCUE_JOURNAL=run cargo run --example quickstart
//! cargo run --example journal_check -- run.jsonl
//! ```
//!
//! Exits non-zero with a line-numbered diagnostic on the first
//! malformed line or unbalanced span — the CI gate for journal exports.

use rescue_core::telemetry::sinks::validate_jsonl;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "run.jsonl".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("journal_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_jsonl(&text) {
        Ok(check) => {
            if check.truncated {
                eprintln!(
                    "{path}: WARNING — journal ends in a partial record \
                     (writer died mid-line); validated the complete prefix"
                );
            }
            println!(
                "{path}: OK — {} events ({} begin / {} end / {} instant) on \
                 {} thread(s) across {} process(es)",
                check.events,
                check.begins,
                check.ends,
                check.instants,
                check.threads,
                check.processes
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
