//! AutoSoC safety-mechanism comparison (experiment E8).
//!
//! Runs SEU campaigns over the automotive workloads under each AutoSoC
//! configuration and prints the SDC/DUE/detected breakdown plus the
//! SBST coverage story of Section III.A.
//!
//! ```text
//! cargo run --release --example autosoc_safety
//! ```

use rescue_core::cpu::autosoc::{run_campaign, AutoSocConfig};
use rescue_core::cpu::programs;
use rescue_core::cpu::sbst::{cpu_fault_universe, generate_sbst, grade};

fn main() {
    println!("== AutoSoC configurations under SEU campaigns ==\n");
    let workloads = programs::all().expect("workloads assemble");
    let injections = 40;
    println!(
        "{:<12} {:<12} {:>7} {:>7} {:>9} {:>6} {:>6} {:>9} {:>9}",
        "workload", "config", "masked", "corr", "detected", "sdc", "due", "SDC rate", "area +%"
    );
    for w in &workloads {
        for config in AutoSocConfig::all() {
            let r = run_campaign(config, w, injections, 42);
            println!(
                "{:<12} {:<12} {:>7} {:>7} {:>9} {:>6} {:>6} {:>8.1}% {:>8.0}%",
                w.name,
                format!("{config:?}"),
                r.masked,
                r.corrected,
                r.detected,
                r.sdc,
                r.due,
                r.sdc_rate() * 100.0,
                config.area_overhead() * 100.0,
            );
        }
    }

    println!("\n== SBST grading (sampled stuck-at universe) ==\n");
    let program = generate_sbst(3000);
    let universe: Vec<_> = cpu_fault_universe().into_iter().step_by(23).collect();
    let report = grade(&program, &universe, 300_000);
    println!(
        "SBST program: {} instructions, coverage {:.1}% over {} sampled faults",
        program.len(),
        report.coverage() * 100.0,
        universe.len()
    );
    for (name, filter) in [
        (
            "register file",
            Box::new(|f: &rescue_core::cpu::CpuFault| {
                matches!(f, rescue_core::cpu::CpuFault::RegisterStuck { .. })
            }) as Box<dyn Fn(&rescue_core::cpu::CpuFault) -> bool>,
        ),
        (
            "ALU",
            Box::new(|f| matches!(f, rescue_core::cpu::CpuFault::AluStuck { .. })),
        ),
        (
            "flag/PC",
            Box::new(|f| {
                matches!(
                    f,
                    rescue_core::cpu::CpuFault::FlagStuck { .. }
                        | rescue_core::cpu::CpuFault::PcStuck { .. }
                )
            }),
        ),
    ] {
        println!("  {name:<14} {:.1}%", report.coverage_of(&filter) * 100.0);
    }
}
