//! IEEE 1687 scan-network exploration (Section III.E).
//!
//! Builds a hierarchical instrument network, accesses a deep instrument,
//! compares test-generation strategies, diagnoses an injected fault and
//! projects NBTI aging of the SIB infrastructure.
//!
//! ```text
//! cargo run --example rsn_explorer
//! ```

use rescue_core::rsn::access::access_sequence;
use rescue_core::rsn::aging::analyze;
use rescue_core::rsn::diagnose::diagnose;
use rescue_core::rsn::faults::{fault_universe, RsnFault};
use rescue_core::rsn::network::{RsnNode, ScanNetwork};
use rescue_core::rsn::testgen::{compare, wave_test};

fn build_network() -> ScanNetwork {
    ScanNetwork::new(RsnNode::chain(vec![
        RsnNode::sib("temp_sib", RsnNode::tdr("temp_sensor", 12)),
        RsnNode::sib(
            "mem_sib",
            RsnNode::chain(vec![
                RsnNode::sib("bist_sib", RsnNode::tdr("mem_bist", 16)),
                RsnNode::sib("repair_sib", RsnNode::tdr("mem_repair", 24)),
            ]),
        ),
        RsnNode::mux(
            "dbg_mux",
            vec![
                RsnNode::tdr("trace_ctrl", 8),
                RsnNode::sib("perf_sib", RsnNode::tdr("perf_counters", 32)),
            ],
        ),
    ]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== IEEE 1687 network exploration ==\n");
    let net = build_network();
    println!(
        "segments: {:?}\ninitial path length: {} bits\n",
        net.segment_names(),
        net.path_len()
    );

    // Retarget to a deep instrument.
    let mut work = net.clone();
    let pattern: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
    let plan = access_sequence(&mut work, "mem_repair", &pattern)?;
    println!(
        "accessing mem_repair: {} CSUs, {} bits shifted",
        plan.csu_count(),
        plan.total_bits()
    );
    println!("readback ok: {}\n", work.tdr("mem_repair")? == &pattern[..]);

    // Test-generation comparison (E6).
    let cmp = compare(&net);
    println!(
        "test generation:   naive {} bits @ {:.0}% coverage",
        cmp.naive_bits,
        cmp.naive_coverage * 100.0
    );
    println!(
        "                   wave  {} bits @ {:.0}% coverage",
        cmp.wave_bits,
        cmp.wave_coverage * 100.0
    );
    println!(
        "                   reduction {:.1}x\n",
        cmp.naive_bits as f64 / cmp.wave_bits as f64
    );

    // Diagnosis of an injected fault.
    let test = wave_test(&net);
    let truth = RsnFault::SibStuckClosed("bist_sib".into());
    let observed = test.faulty_response(&net, &truth);
    let d = diagnose(&net, &test, &observed);
    println!(
        "diagnosis of {truth}: best candidates {:?} (ambiguity {})\n",
        d.best().iter().map(|f| f.to_string()).collect::<Vec<_>>(),
        d.ambiguity()
    );
    println!("fault universe size: {}\n", fault_universe(&net).len());

    // Aging of a health-monitoring usage profile: temp polled forever.
    let mut used = net.clone();
    // open temp_sib (first control bit on the path from scan-out side).
    let l = used.path_len();
    let mut v = vec![false; l];
    if let Some(slot) = v.last_mut() {
        *slot = true; // temp_sib control sits nearest scan-in
    }
    used.csu(&v);
    for _ in 0..50 {
        let l = used.path_len();
        let mut poll = vec![false; l];
        if let Some(slot) = poll.last_mut() {
            *slot = true; // keep it open
        }
        used.csu(&poll);
    }
    println!("NBTI projection over 10 years of this profile:");
    for a in analyze(&used, 10.0).iter().take(4) {
        println!(
            "  {:<12} duty {:>5.2}  ΔVth {:>6.2} mV",
            a.name, a.duty, a.delta_vth_mv
        );
    }
    Ok(())
}
