//! E18 — durable campaigns: warm-cache re-submission and kill-resume.
//!
//! The acceptance run for the content-addressed work-unit store. One
//! binary, two roles:
//!
//! * **parent** (no args) — runs the plain packed campaign as the
//!   verdict baseline, then the durable campaign cold (every unit
//!   executes) and warm (zero units execute) against a filesystem
//!   store; then spawns a throttled **child process** against a fresh
//!   store directory, SIGKILLs it as soon as the first unit record
//!   lands on disk, and resumes the half-dead store to completion —
//!   asserting the resumed run reuses the dead writer's units
//!   (`units_cached > 0`), executes only the missing ones, and
//!   reproduces the uninterrupted verdicts bit for bit.
//! * **child** (`--child <dir> <throttle_ms>`) — the same durable
//!   campaign through a [`ThrottledStore`] that sleeps in `put`, so the
//!   parent reliably catches it mid-campaign.
//!
//! The resumed run executes with telemetry on and exports its journal
//! to `e18_resume.jsonl` for `journal_check` validation. The child runs
//! with telemetry on too, exporting a pid-tagged snapshot of its
//! journal (open spans stripped) before every unit flush — so when the
//! SIGKILL lands, a crash-consistent journal of the dead process
//! survives in the store's journal directory. The parent salvages it to
//! `e18_child.jsonl`: together with `e18_resume.jsonl` it is the
//! two-process input `journal_merge` reassembles into one timeline
//! (CI's E19 gate). Set `E18_SMOKE=1` for the seconds-scale CI
//! workload; the full workload additionally writes `BENCH_resume.json`
//! (plain vs cold vs warm vs resumed, with the execution environment
//! recorded).

use rescue_bench::{banner, blog, env_json};
use rescue_core::campaign::{
    Campaign, ClaimOutcome, ContentHash, FsStore, ResultStore, UnitRecord,
};
use rescue_core::faults::simulate::{FaultSimulator, PackedOptions};
use rescue_core::faults::universe;
use rescue_core::netlist::generate;
use rescue_core::telemetry::merge::MergedJournal;
use rescue_core::telemetry::{instant, journal, TelemetryConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const N_INPUTS: usize = 16;
const N_OUTPUTS: usize = 4;
const SEED: u64 = 12;
const WORKERS: usize = 2;
const THROTTLE_MS: u64 = 25;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// The shared workload: parent and child must rebuild the identical
/// campaign (same netlist, universe, patterns, grain) or the content
/// hashes — and therefore the store keys — would not line up.
struct Setup {
    net: rescue_core::netlist::Netlist,
    patterns: Vec<Vec<bool>>,
    grain: usize,
    smoke: bool,
}

fn setup() -> Setup {
    let smoke = std::env::var("E18_SMOKE").is_ok_and(|v| v == "1");
    let (gates, n_patterns, grain) = if smoke {
        (400, 128, 16)
    } else {
        (1500, 512, 64)
    };
    Setup {
        net: generate::random_logic(N_INPUTS, gates, N_OUTPUTS, SEED),
        patterns: random_patterns(N_INPUTS, n_patterns, SEED ^ 0x9e37),
        grain,
        smoke,
    }
}

/// [`FsStore`] wrapper that sleeps before publishing each unit record:
/// slows the child's campaign down to human-observable speed so the
/// parent's kill always lands mid-campaign, without touching the
/// engine. Every other operation passes straight through — the claim
/// protocol stays real.
///
/// Before each flush it also exports a pid-tagged snapshot of the
/// child's journal into the store's journal directory (atomic rename,
/// open spans stripped so the mid-run snapshot validates). The export
/// happens *before* the unit record lands, so once the parent sees a
/// unit on disk a journal of the soon-to-be-dead process is guaranteed
/// to exist.
struct ThrottledStore {
    inner: FsStore,
    delay: Duration,
    journal_mark: u64,
}

impl ThrottledStore {
    fn export_journal(&self) {
        let snap = journal::Journal::snapshot_since(self.journal_mark).without_open_spans();
        let tagged = MergedJournal::from_journal(&snap, std::process::id());
        let _ = tagged.export_jsonl(&self.inner.journal_path("child.jsonl"));
    }
}

impl ResultStore for ThrottledStore {
    fn get(&self, id: ContentHash) -> Option<UnitRecord> {
        self.inner.get(id)
    }
    fn put(&self, id: ContentHash, record: &UnitRecord) {
        std::thread::sleep(self.delay);
        instant!("e18.child_put", bytes = record.payload.len());
        self.export_journal();
        self.inner.put(id, record);
    }
    fn claim(&self, id: ContentHash) -> ClaimOutcome {
        self.inner.claim(id)
    }
    fn release(&self, id: ContentHash) {
        self.inner.release(id)
    }
    fn break_stale_claims(&self) -> usize {
        self.inner.break_stale_claims()
    }
    fn completed_units(&self) -> usize {
        self.inner.completed_units()
    }
}

/// Child role: run the durable campaign through the throttled store
/// until the parent kills us. Exiting normally means the throttle was
/// too low — the parent treats that as a failure.
fn child(dir: &str, throttle_ms: u64) {
    let s = setup();
    let faults = universe::stuck_at_universe(&s.net);
    let sim = FaultSimulator::new(&s.net);
    TelemetryConfig::on().install();
    let store = ThrottledStore {
        inner: FsStore::open(dir),
        delay: Duration::from_millis(throttle_ms),
        journal_mark: journal::mark(),
    };
    sim.campaign_packed_durable(
        &faults,
        &s.patterns,
        &Campaign::new(SEED, WORKERS),
        PackedOptions::default(),
        &store,
        s.grain,
    );
}

/// Completed unit records currently on disk under `dir/units`.
fn units_on_disk(dir: &Path) -> usize {
    std::fs::read_dir(dir.join("units"))
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "unit"))
                .count()
        })
        .unwrap_or(0)
}

fn parent() {
    banner("E18", "durable campaigns: warm cache + kill-resume");
    let s = setup();
    let faults = universe::stuck_at_universe(&s.net);
    let sim = FaultSimulator::new(&s.net);
    let campaign = Campaign::new(SEED, WORKERS);
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../e18_store"));
    let _ = std::fs::remove_dir_all(&root);

    // Verdict baseline: the plain in-process packed campaign.
    let t = Instant::now();
    let plain = sim.campaign_packed(&faults, &s.patterns, &campaign, PackedOptions::default());
    let t_plain = t.elapsed().as_secs_f64();

    // Cold durable run: every unit executes and lands in the store.
    let cold_store = FsStore::open(root.join("cold"));
    let t = Instant::now();
    let cold = sim.campaign_packed_durable(
        &faults,
        &s.patterns,
        &campaign,
        PackedOptions::default(),
        &cold_store,
        s.grain,
    );
    let t_cold = t.elapsed().as_secs_f64();
    assert_eq!(cold.report, plain.report, "cold durable run ≡ plain");
    let units_total = cold.stats.units_total;
    assert_eq!(cold.stats.units_executed, units_total);

    // Warm re-submission of the identical campaign: pure cache hit.
    let t = Instant::now();
    let warm = sim.campaign_packed_durable(
        &faults,
        &s.patterns,
        &campaign,
        PackedOptions::default(),
        &cold_store,
        s.grain,
    );
    let t_warm = t.elapsed().as_secs_f64();
    assert_eq!(warm.report, plain.report, "warm durable run ≡ plain");
    assert_eq!(
        warm.stats.units_executed, 0,
        "warm run must execute nothing"
    );
    assert_eq!(warm.stats.cache_hit_ratio(), 1.0);

    // Kill-resume: throttled child on a fresh store, SIGKILLed the
    // moment its first unit record flushes.
    let kill_dir = root.join("kill");
    let exe = std::env::current_exe().expect("own executable path");
    let mut worker = std::process::Command::new(exe)
        .arg("--child")
        .arg(&kill_dir)
        .arg(THROTTLE_MS.to_string())
        .spawn()
        .expect("spawn throttled child");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if units_on_disk(&kill_dir) > 0 {
            break;
        }
        if let Some(status) = worker.try_wait().expect("child status") {
            panic!("child finished before the kill ({status}); raise the throttle");
        }
        assert!(
            Instant::now() < deadline,
            "child flushed no unit record within 120 s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    worker.kill().expect("kill child");
    let _ = worker.wait();
    let flushed = units_on_disk(&kill_dir);
    blog!("  killed child with {flushed}/{units_total} unit(s) on disk");

    // Salvage the dead child's journal: the throttled store exported a
    // pid-tagged snapshot before each unit flush, so with at least one
    // unit on disk the export must exist (atomic rename — never torn).
    let child_journal_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../e18_child.jsonl");
    std::fs::copy(
        kill_dir.join("journal").join("child.jsonl"),
        child_journal_path,
    )
    .expect("child journal must exist once a unit is on disk");

    // Resume the half-dead store to completion, journal on. The dead
    // child's leftover claim files are broken (its pid is gone) and the
    // missing units re-claimed.
    TelemetryConfig::on().install();
    let mark = journal::mark();
    let t = Instant::now();
    let resumed = sim.campaign_packed_durable(
        &faults,
        &s.patterns,
        &campaign,
        PackedOptions::default(),
        &FsStore::open(&kill_dir),
        s.grain,
    );
    let t_resume = t.elapsed().as_secs_f64();
    let j = journal::Journal::take_since(mark);
    TelemetryConfig::off().install();
    assert_eq!(resumed.report, plain.report, "resumed run ≡ uninterrupted");
    assert_eq!(resumed.stats.tally, plain.stats.tally, "merged stats ≡");
    assert!(
        resumed.stats.units_cached > 0,
        "resume must reuse the dead writer's flushed units"
    );
    assert!(
        resumed.stats.units_executed > 0,
        "the kill must leave work behind"
    );
    assert_eq!(
        resumed.stats.units_cached + resumed.stats.units_executed,
        units_total,
        "cached + executed covers the plan exactly"
    );

    // Export pid-tagged so `journal_merge` keeps the resumed run and
    // the killed child on distinct process lanes.
    let journal_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../e18_resume.jsonl");
    MergedJournal::from_journal(&j, std::process::id())
        .export_jsonl(Path::new(journal_path))
        .expect("write resume journal");

    blog!(
        "\n  workload: {} gates, {} faults, {} patterns, {units_total} units (grain {})",
        s.net.len(),
        faults.len(),
        s.patterns.len(),
        s.grain
    );
    blog!("  run                    time        units executed/cached");
    for (name, secs, executed, cached) in [
        ("plain (no store)    ", t_plain, units_total, 0),
        ("durable cold        ", t_cold, units_total, 0),
        ("durable warm        ", t_warm, 0, units_total),
        (
            "durable kill-resume ",
            t_resume,
            resumed.stats.units_executed,
            resumed.stats.units_cached,
        ),
    ] {
        blog!(
            "  {name}  {:>9.1} ms   {executed:>5} / {cached}",
            secs * 1e3
        );
    }
    blog!(
        "  coverage {:.1}%, warm cache answers in {:.2}% of the cold time, {} journal events -> {journal_path}",
        plain.report.coverage() * 100.0,
        100.0 * t_warm / t_cold,
        j.len()
    );
    blog!("  child journal salvaged -> {child_journal_path}");

    if !s.smoke {
        let json = format!(
            "{{\n  \"experiment\": \"e18_resume\",\n  {},\n  \"workload\": {{\n    \
             \"netlist\": \"random_logic({N_INPUTS}, 1500, {N_OUTPUTS}, {SEED})\",\n    \
             \"gates\": {},\n    \"faults\": {},\n    \"patterns\": {},\n    \
             \"unit_grain\": {},\n    \"units\": {units_total}\n  }},\n  \"seconds\": {{\n    \
             \"plain\": {t_plain:.6},\n    \"durable_cold\": {t_cold:.6},\n    \
             \"durable_warm\": {t_warm:.6},\n    \"durable_resumed\": {t_resume:.6}\n  }},\n  \
             \"kill_resume\": {{\n    \"units_flushed_before_kill\": {flushed},\n    \
             \"units_cached\": {},\n    \"units_executed\": {},\n    \
             \"units_total\": {units_total}\n  }},\n  \
             \"warm_over_cold\": {:.2}\n}}\n",
            env_json(WORKERS, 64),
            s.net.len(),
            faults.len(),
            s.patterns.len(),
            s.grain,
            resumed.stats.units_cached,
            resumed.stats.units_executed,
            t_cold / t_warm.max(1e-9),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resume.json");
        if let Err(e) = std::fs::write(path, &json) {
            blog!("  (could not write {path}: {e})");
        } else {
            blog!("  wrote {path}");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--child" {
        child(&args[2], args[3].parse().expect("throttle in ms"));
        return;
    }
    parent();
}
