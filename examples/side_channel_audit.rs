//! Hardware-security audit (Section III.F).
//!
//! Runs the timing-SCA verification flow, a CPA power attack with and
//! without masking, a laser fault-injection campaign with detector
//! cells, the NN program-flow monitor, and PUF-backed key storage.
//!
//! ```text
//! cargo run --release --example side_channel_audit
//! ```

use rescue_core::mem::puf::{Environment, SramPuf};
use rescue_core::security::flow_monitor::{ControlFlowGraph, FlowMonitor};
use rescue_core::security::keystore::PufKeyStore;
use rescue_core::security::laser::RegisterBank;
use rescue_core::security::power::{success_rate, LeakyDevice};
use rescue_core::security::timing::{assess, ModExp};

fn main() {
    println!("== Timing side channel (PASCAL flow) ==\n");
    for (name, implementation) in [
        ("square-and-multiply", ModExp::square_and_multiply()),
        ("montgomery ladder", ModExp::montgomery_ladder()),
    ] {
        let v = assess(&implementation, 400, 7);
        println!(
            "{name:<22} |t| = {:>7.1}  -> {}",
            v.t_statistic,
            if v.leaks { "LEAKS" } else { "constant-time" }
        );
    }

    println!("\n== Power side channel (CPA on AES S-box) ==\n");
    let key = 0x5Bu8;
    for traces in [50usize, 200, 1000] {
        let open = success_rate(&LeakyDevice::new(key, 1.0), traces, 10, 3);
        let masked = success_rate(&LeakyDevice::masked(key, 1.0), traces, 10, 3);
        println!(
            "{traces:>5} traces: unprotected success {:>4.0}%   masked success {:>4.0}%",
            open * 100.0,
            masked * 100.0
        );
    }

    println!("\n== Laser fault injection (register bank) ==\n");
    let critical: Vec<usize> = (0..64).step_by(5).collect();
    for (name, stride) in [("no detectors", 0usize), ("detectors /3", 3)] {
        let bank = RegisterBank::grid(8, 8, 10.0, &critical, stride);
        let stats = bank.campaign(3000, 12.0, 11);
        println!(
            "{name:<14} attacker success {:>5.1}%  detection {:>5.1}%",
            stats.success_rate() * 100.0,
            stats.detection_rate() * 100.0
        );
    }

    println!("\n== NN program-flow fault detection ==\n");
    let cfg = ControlFlowGraph::crypto_kernel();
    let monitor = FlowMonitor::train(&cfg, 30, 60, 5);
    let (detection, false_pos) = monitor.evaluate(&cfg, 60, 60, 77);
    println!(
        "trained on golden traces only: detection {:.0}%, false positives {:.0}%",
        detection * 100.0,
        false_pos * 100.0
    );

    println!("\n== PUF key storage ==\n");
    let puf = SramPuf::manufacture(320, 42);
    let store = PufKeyStore::new(5);
    let (key_bits, helper) = store.enroll(&puf);
    let rec = store.reconstruct(&puf, &helper, Environment::nominal(), 1);
    println!(
        "enrolled {}-bit key; nominal reconstruction {}",
        key_bits.len(),
        if rec == key_bits { "OK" } else { "FAILED" }
    );
    for (name, env) in [
        ("nominal", Environment::nominal()),
        (
            "hot corner",
            Environment {
                temperature_k: 400.0,
                vdd_deviation_pct: -10.0,
            },
        ),
    ] {
        println!(
            "failure rate @ {name:<11} {:.2}%",
            store.failure_rate(&puf, env, 200, 3) * 100.0
        );
    }
}
