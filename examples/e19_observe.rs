//! E19 — live campaign observability: scrape `/metrics` and `/status`
//! from inside a running durable campaign.
//!
//! The acceptance run for the observability plane. One process, fully
//! deterministic: telemetry on, an [`Observer`] bound to
//! `RESCUE_OBSERVE` (or an ephemeral port when unset), and a durable
//! fault campaign driven through a [`ProbeStore`] that scrapes its own
//! process over real TCP from inside the first `put()` — guaranteed
//! mid-campaign, no polling race. The example asserts:
//!
//! * the mid-campaign `/metrics` body parses as Prometheus text
//!   exposition and carries the store counters;
//! * the mid-campaign `/status` JSON shows the live campaign on the
//!   `fault.campaign_durable` stage, unfinished;
//! * after the run, `/metrics` reports exactly `units_total` store
//!   puts and `/status` marks the campaign finished;
//! * `/healthz` answers `ok` throughout.
//!
//! `E19_SMOKE=1` selects the seconds-scale CI workload (the default is
//! the same shape, slightly larger).

use rescue_bench::{banner, blog};
use rescue_core::campaign::{
    Campaign, ClaimOutcome, ContentHash, FsStore, ResultStore, UnitRecord,
};
use rescue_core::faults::simulate::{FaultSimulator, PackedOptions};
use rescue_core::faults::universe;
use rescue_core::netlist::generate;
use rescue_core::observer::{http_get, Observer, OBSERVE_ENV};
use rescue_core::telemetry::expo::validate_exposition;
use rescue_core::telemetry::{metrics, TelemetryConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const N_INPUTS: usize = 16;
const N_OUTPUTS: usize = 4;
const SEED: u64 = 19;
const WORKERS: usize = 2;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// A mid-campaign scrape: both endpoint bodies, captured from inside
/// the store's first `put()`.
struct Scrape {
    metrics: String,
    status: String,
}

/// [`FsStore`] wrapper that scrapes the process's own observer from
/// inside the first unit flush. At that moment the durable runner is
/// demonstrably mid-campaign — registered in the fleet, workers live,
/// more units pending — so the captured bodies exercise the live
/// paths (fleet entry unfinished, claim files on disk) rather than the
/// quiescent after-the-run state.
struct ProbeStore {
    inner: FsStore,
    addr: SocketAddr,
    puts: AtomicUsize,
    captured: Mutex<Option<Scrape>>,
}

impl ResultStore for ProbeStore {
    fn get(&self, id: ContentHash) -> Option<UnitRecord> {
        self.inner.get(id)
    }
    fn put(&self, id: ContentHash, record: &UnitRecord) {
        if self.puts.fetch_add(1, Ordering::Relaxed) == 0 {
            let scrape = Scrape {
                metrics: http_get(self.addr, "/metrics").expect("mid-campaign /metrics"),
                status: http_get(self.addr, "/status").expect("mid-campaign /status"),
            };
            assert_eq!(
                http_get(self.addr, "/healthz").expect("mid-campaign /healthz"),
                "ok"
            );
            *self.captured.lock().unwrap() = Some(scrape);
        }
        self.inner.put(id, record);
    }
    fn claim(&self, id: ContentHash) -> ClaimOutcome {
        self.inner.claim(id)
    }
    fn release(&self, id: ContentHash) {
        self.inner.release(id)
    }
    fn break_stale_claims(&self) -> usize {
        self.inner.break_stale_claims()
    }
    fn completed_units(&self) -> usize {
        self.inner.completed_units()
    }
}

/// First sample value for `name` in a Prometheus exposition body.
fn sample(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

fn main() {
    banner("E19", "live observability: /metrics + /status mid-campaign");
    let smoke = std::env::var("E19_SMOKE").is_ok_and(|v| v == "1");
    let (gates, n_patterns, grain) = if smoke { (300, 96, 8) } else { (900, 256, 16) };
    let net = generate::random_logic(N_INPUTS, gates, N_OUTPUTS, SEED);
    let patterns = random_patterns(N_INPUTS, n_patterns, SEED ^ 0x9e37);
    let faults = universe::stuck_at_universe(&net);
    let sim = FaultSimulator::new(&net);

    TelemetryConfig::on().install();
    metrics::reset();

    // Honour RESCUE_OBSERVE when set (the CI gate sets it); fall back
    // to an OS-assigned port so the example runs anywhere.
    let listen = std::env::var(OBSERVE_ENV).unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let observer = Observer::bind(&listen).expect("bind observability endpoint");
    let addr = observer.addr();
    blog!("  observer listening on {addr} ({OBSERVE_ENV}={listen})");

    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../e19_store"));
    let _ = std::fs::remove_dir_all(&root);
    let store = ProbeStore {
        inner: FsStore::open(&root),
        addr,
        puts: AtomicUsize::new(0),
        captured: Mutex::new(None),
    };
    let run = sim.campaign_packed_durable(
        &faults,
        &patterns,
        &Campaign::new(SEED, WORKERS),
        PackedOptions::default(),
        &store,
        grain,
    );
    let units_total = run.stats.units_total;
    assert_eq!(
        run.stats.units_executed, units_total,
        "cold run executes all"
    );

    // Mid-campaign scrape: captured inside the first unit flush.
    let scrape = store
        .captured
        .lock()
        .unwrap()
        .take()
        .expect("campaign flushed at least one unit");
    let samples = validate_exposition(&scrape.metrics).expect("mid-campaign scrape parses");
    assert!(
        scrape.metrics.contains("rescue_store_puts_total"),
        "store counters exposed mid-campaign"
    );
    assert!(
        scrape
            .status
            .contains("\"stage\":\"fault.campaign_durable\""),
        "live stage visible in /status"
    );
    assert!(
        scrape
            .status
            .contains("\"name\":\"fault.campaign_durable\""),
        "durable campaign registered in the fleet"
    );
    assert!(
        scrape.status.contains("\"finished\":false"),
        "mid-campaign entry is unfinished"
    );
    blog!(
        "  mid-campaign: /metrics {} sample(s) ({} bytes), /status {} bytes",
        samples,
        scrape.metrics.len(),
        scrape.status.len()
    );

    // Quiescent scrape: the counters account for every unit flushed.
    let after = http_get(addr, "/metrics").expect("post-campaign /metrics");
    validate_exposition(&after).expect("post-campaign scrape parses");
    let puts = sample(&after, "rescue_store_puts_total").expect("puts counter present");
    assert_eq!(puts as usize, units_total, "one store put per unit");
    let status = http_get(addr, "/status").expect("post-campaign /status");
    assert!(
        status.contains("\"finished\":true"),
        "fleet entry marked finished after the run"
    );
    blog!(
        "  post-campaign: {units_total} unit(s), rescue_store_puts_total {}, coverage {:.1}%",
        puts as usize,
        run.report.coverage() * 100.0
    );

    observer.shutdown();
    TelemetryConfig::off().install();
    let _ = std::fs::remove_dir_all(&root);
    blog!("  E19 OK — live scrape validated mid-campaign and quiescent");
}
