//! The chip demonstrator (paper Section IV.C).
//!
//! "The demonstrator shall include the reliability, security and quality
//! aware hardware and software IPs from the consortium, but also the
//! contribution in terms of design flow improvements, as well as test
//! approach enhancements." This example assembles the RESCUE-rs
//! equivalent: one virtual SoC whose blocks each go through the relevant
//! sign-off analysis, ending in a merged RIIF database and a combined
//! health-management simulation.
//!
//! ```text
//! cargo run --release --example chip_demonstrator
//! ```

use rescue_core::aging::bti::BtiModel;
use rescue_core::cpu::autosoc::{run_campaign, AutoSocConfig};
use rescue_core::cpu::programs;
use rescue_core::flow::HolisticFlow;
use rescue_core::health::{HealthAction, HealthPolicy, SystemHealthManager};
use rescue_core::mem::march::{classic_universe, march_cm, march_coverage};
use rescue_core::mem::puf::{Environment, SramPuf};
use rescue_core::netlist::generate;
use rescue_core::radiation::monitor::SramSeuMonitor;
use rescue_core::riif::{ComponentRecord, FailureMode, RiifDatabase};
use rescue_core::rsn::network::{RsnNode, ScanNetwork};
use rescue_core::rsn::testgen::compare;
use rescue_core::security::keystore::PufKeyStore;

fn main() {
    println!("== RESCUE-rs chip demonstrator sign-off ==\n");
    let mut soc_riif = RiifDatabase::new("demonstrator");

    // --- Logic blocks through the holistic quality/safety flow.
    println!("[1] logic blocks (holistic flow)");
    for block in [
        generate::alu(8),
        generate::multiplier(4),
        generate::parity(16),
    ] {
        let r = HolisticFlow::new().run(&block, 128, 42);
        println!(
            "    {:<10} coverage {:>6.1}%  SET derating {:.2}  {}",
            r.design,
            r.fault_coverage * 100.0,
            r.set_derating,
            r.safety
        );
        soc_riif.merge(r.riif);
    }

    // --- CPU subsystem under SEU campaigns.
    println!("\n[2] CPU subsystem (AutoSoC lockstep+ECC)");
    let w = programs::crc32().expect("workload assembles");
    let r = run_campaign(AutoSocConfig::LockstepEcc, &w, 30, 42);
    println!(
        "    crc32: sdc {}  detected {}  corrected {}  (protection {:.0}%)",
        r.sdc,
        r.detected,
        r.corrected,
        r.protection_rate() * 100.0
    );
    soc_riif.add_component(ComponentRecord {
        name: "cpu_lockstep_ecc".into(),
        technology: "generic".into(),
        modes: vec![FailureMode {
            mechanism: "seu".into(),
            raw_fit: 150.0,
            derating: r.sdc_rate(),
        }],
    });

    // --- Embedded SRAM: manufacturing test sign-off.
    println!("\n[3] SRAM macro (March C- production test)");
    let cov = march_coverage(&march_cm(), 64, &classic_universe(64));
    println!("    classic fault universe coverage: {:.1}%", cov * 100.0);

    // --- Test infrastructure (IEEE 1687).
    println!("\n[4] test infrastructure (IEEE 1687 network)");
    let rsn = ScanNetwork::new(RsnNode::chain(vec![
        RsnNode::sib("cpu_dbg", RsnNode::tdr("cpu_trace", 16)),
        RsnNode::sib("mem_bist", RsnNode::tdr("bist_ctl", 8)),
        RsnNode::sib("sensors", RsnNode::tdr("temp", 12)),
    ]));
    let cmp = compare(&rsn);
    println!(
        "    infrastructure self-test: {} bits @ {:.0}% coverage (wave strategy)",
        cmp.wave_bits,
        cmp.wave_coverage * 100.0
    );

    // --- Security block: PUF-rooted key storage.
    println!("\n[5] security block (PUF key root)");
    let puf = SramPuf::manufacture(320, 7);
    let store = PufKeyStore::new(5);
    let (key, helper) = store.enroll(&puf);
    let ok = store.reconstruct(&puf, &helper, Environment::nominal(), 1) == key;
    println!(
        "    {}-bit key root, reconstruction {}, helper data {} bytes (public)",
        key.len(),
        if ok { "OK" } else { "FAILED" },
        helper.to_bytes().len()
    );

    // --- Run-time health management over a mission profile.
    println!("\n[6] mission simulation (sensor-fusion health management)");
    let mut manager = SystemHealthManager::new(
        SramSeuMonitor::new(65_536, 600),
        BtiModel::bulk_28nm(),
        HealthPolicy::default(),
        0.6,
        0.15,
    );
    let mission = [
        ("ground ops, cool", 1e-9 / 3600.0, 300.0),
        ("solar event", 5e-7, 310.0),
        ("hot summer", 1e-9 / 3600.0, 395.0),
    ];
    for (phase, flux, temp) in mission {
        let (state, action) = manager.observe(flux, 24.0, temp, 9);
        println!(
            "    {:<18} flux≈{:.2e}/bit/h  life {:>4.0}y  -> {:?}",
            phase, state.flux_per_bit_hour, state.remaining_life_years, action
        );
        if action == HealthAction::CheckpointAndDegrade {
            println!("      (checkpointing state and entering degraded mode)");
        }
    }

    // --- Final sign-off artifact.
    println!("\n[7] sign-off RIIF database");
    println!(
        "    {} components, chip-level {:.3} FIT",
        soc_riif.components.len(),
        soc_riif.chip_fit()
    );
    println!("\n{}", soc_riif.to_text());
}
