//! Merges per-process JSONL run journals into one campaign-wide
//! timeline.
//!
//! A multi-process campaign — E18's kill-resume run, a fleet of
//! `FsStore` workers — leaves one exported journal per process. This
//! tool reassembles them: events are tagged with their owner's pid,
//! interleaved by timestamp, re-sequenced, and written as one merged
//! JSONL journal (which `journal_check` validates like any other) plus
//! a pid-laned Chrome trace for side-by-side inspection in Perfetto.
//!
//! ```text
//! cargo run --example journal_merge -- merged e18_resume.jsonl e18_child.jsonl
//! # -> merged.jsonl + merged_trace.json
//! ```
//!
//! Each input may be `pid:path` to pin the process id lane explicitly
//! (`4242:worker.jsonl`); a bare path uses its position (1-based) as
//! the pid, and a journal whose lines already carry `pid` fields (a
//! re-merge) keeps them. A torn final line — the signature of a killed
//! writer — costs only that line, matching `journal_check`'s torn-tail
//! tolerance.
//!
//! Exits 2 on unreadable input, 1 on a malformed journal.

use rescue_core::telemetry::merge;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: journal_merge <out-stem> <journal.jsonl | pid:journal.jsonl>...");
        std::process::exit(2);
    }
    let stem = &args[0];
    let mut texts: Vec<(u32, String, String)> = Vec::new();
    for (i, spec) in args[1..].iter().enumerate() {
        // `pid:path` pins the lane; a bare path gets its position.
        let (pid, path) = match spec.split_once(':') {
            Some((pid, path)) if pid.chars().all(|c| c.is_ascii_digit()) && !pid.is_empty() => {
                (pid.parse().expect("digits only"), path.to_string())
            }
            _ => ((i + 1) as u32, spec.clone()),
        };
        match std::fs::read_to_string(&path) {
            Ok(text) => texts.push((pid, path, text)),
            Err(e) => {
                eprintln!("journal_merge: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let parts: Vec<(u32, &str)> = texts
        .iter()
        .map(|(pid, _, text)| (*pid, text.as_str()))
        .collect();
    let merged = match merge::merge(&parts) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("journal_merge: INVALID — {e}");
            std::process::exit(1);
        }
    };
    let jsonl_path = format!("{stem}.jsonl");
    let trace_path = format!("{stem}_trace.json");
    merged
        .export_jsonl(std::path::Path::new(&jsonl_path))
        .unwrap_or_else(|e| {
            eprintln!("journal_merge: cannot write {jsonl_path}: {e}");
            std::process::exit(2);
        });
    std::fs::write(&trace_path, merged.to_chrome_trace()).unwrap_or_else(|e| {
        eprintln!("journal_merge: cannot write {trace_path}: {e}");
        std::process::exit(2);
    });
    for (pid, path, text) in &texts {
        // Per-input accounting: a `pid` field inside the file overrides
        // the positional/pinned lane, so re-merge the file alone to see
        // the lanes it actually landed on.
        let solo = merge::merge(&[(*pid, text)]).expect("already merged above");
        let lanes = solo
            .pids()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
        let torn = if solo.len() < lines {
            " (torn tail dropped)"
        } else {
            ""
        };
        println!(
            "  pid {:>7}  {:>6} event(s){torn}  <- {path}",
            if lanes.is_empty() {
                "-".to_string()
            } else {
                lanes
            },
            solo.len()
        );
    }
    println!(
        "merged {} event(s) across {} process(es) -> {jsonl_path} + {trace_path}",
        merged.len(),
        merged.pids().len()
    );
}
