//! Quickstart: run the holistic RESCUE-rs flow on a generated design.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Telemetry is enabled for the run: each design prints its Fig. 2
//! stage-timing breakdown sourced from the run journal. Set
//! `RESCUE_JOURNAL=<prefix>` to additionally export the journal as
//! `<prefix>.jsonl` (machine-readable, CI-validated) and
//! `<prefix>.trace.json` (open in `chrome://tracing` / Perfetto).

use rescue_core::figure1;
use rescue_core::flow::HolisticFlow;
use rescue_core::netlist::generate;
use rescue_core::telemetry::sinks::human_ns;
use rescue_core::telemetry::{journal, TelemetryConfig};

fn main() {
    TelemetryConfig::on().install();
    println!("== RESCUE-rs quickstart ==\n");
    println!("{}", figure1::render());

    let mark = journal::mark();
    for design in [
        generate::c17(),
        generate::adder(8),
        generate::multiplier(4),
        generate::alu(8),
    ] {
        let stats = design.stats();
        let report = HolisticFlow::new().run(&design, 128, 42);
        println!("{stats}");
        println!(
            "  faults {:5}  pruned {:3}  patterns {:3}  coverage {:5.1}%  SET derating {:4.2}  {}",
            report.fault_universe,
            report.pruned,
            report.test_patterns,
            report.fault_coverage * 100.0,
            report.set_derating,
            report.safety,
        );
        println!("  RIIF: {:.3} FIT chip-level", report.riif.chip_fit());
        let total: u64 = report.stage_spans.iter().map(|(_, ns)| ns).sum();
        let breakdown: Vec<String> = report
            .stage_spans
            .iter()
            .map(|(stage, ns)| {
                format!(
                    "{} {} ({:.0}%)",
                    stage.trim_start_matches("flow."),
                    human_ns(*ns),
                    100.0 * *ns as f64 / total.max(1) as f64
                )
            })
            .collect();
        println!("  stages: {}\n", breakdown.join(", "));
    }

    if let Ok(prefix) = std::env::var("RESCUE_JOURNAL") {
        let j = journal::Journal::take_since(mark);
        let jsonl = format!("{prefix}.jsonl");
        let trace = format!("{prefix}.trace.json");
        j.export_jsonl(std::path::Path::new(&jsonl))
            .expect("write journal");
        std::fs::write(&trace, j.to_chrome_trace()).expect("write trace");
        println!(
            "journal: {} events -> {jsonl}, {trace} (open the trace in chrome://tracing)",
            j.len()
        );
    }
}
