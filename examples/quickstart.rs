//! Quickstart: run the holistic RESCUE-rs flow on a generated design.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rescue_core::figure1;
use rescue_core::flow::HolisticFlow;
use rescue_core::netlist::generate;

fn main() {
    println!("== RESCUE-rs quickstart ==\n");
    println!("{}", figure1::render());

    for design in [
        generate::c17(),
        generate::adder(8),
        generate::multiplier(4),
        generate::alu(8),
    ] {
        let stats = design.stats();
        let report = HolisticFlow::new().run(&design, 128, 42);
        println!("{stats}");
        println!(
            "  faults {:5}  pruned {:3}  patterns {:3}  coverage {:5.1}%  SET derating {:4.2}  {}",
            report.fault_universe,
            report.pruned,
            report.test_patterns,
            report.fault_coverage * 100.0,
            report.set_derating,
            report.safety,
        );
        println!("  RIIF: {:.3} FIT chip-level\n", report.riif.chip_fit());
    }
}
