//! GPGPU reliability analysis (Sections III.A/III.B).
//!
//! Demonstrates the FlexGrip-substitute model: scheduler SBST, pipeline
//! fault effects, and the software-encoding-style comparison of \[40\]
//! under transient register-file upsets.
//!
//! ```text
//! cargo run --release --example gpgpu_reliability
//! ```

use rescue_core::gpgpu::kernels::{
    load_saxpy_data, saxpy, saxpy_expected, saxpy_selfcheck, CHECK_FLAG, SAXPY_Y_BASE,
};
use rescue_core::gpgpu::machine::{Gpgpu, GpuFault, Scheduler};
use rescue_core::gpgpu::sbst::{detects, scheduler_fault_universe};

fn main() {
    println!("== GPGPU scheduler SBST ==\n");
    let universe = scheduler_fault_universe(8);
    let detected = universe.iter().filter(|&&f| detects(f, 8, 8)).count();
    println!(
        "scheduler select-stuck faults: {detected}/{} detected by the SBST kernel\n",
        universe.len()
    );

    println!("== Encoding styles under register-file SEUs (a=3, 2 warps x 8 lanes) ==\n");
    let mut table = [[0usize; 3]; 2]; // style x {masked, detected, sdc}
    let trials = 200;
    for trial in 0..trials {
        let fault = GpuFault::RegisterFlip {
            warp: (trial % 2) as u8,
            lane: (trial % 8) as u8,
            reg: (trial % 10) as u8,
            bit: (trial % 32) as u8,
            slot: 10 + (trial % 40) as u64,
        };
        for (style, kernel) in [(0usize, saxpy(3, 8)), (1, saxpy_selfcheck(3, 8))] {
            let mut gpu = Gpgpu::new(2, 8, Scheduler::RoundRobin);
            load_saxpy_data(&mut gpu, 3);
            gpu.load_kernel(&kernel);
            gpu.inject(fault);
            let outcome = match gpu.run(100_000) {
                Err(_) => 1, // trap = detected
                Ok(()) => {
                    let flagged = style == 1 && gpu.memory(CHECK_FLAG) > 0;
                    let sdc = (0..16u32).any(|i| {
                        let v = gpu.memory(SAXPY_Y_BASE + i);
                        v != saxpy_expected(3, i) && !(style == 1 && v == 100 + i)
                    });
                    if flagged {
                        1
                    } else if sdc {
                        2
                    } else {
                        0
                    }
                }
            };
            table[style][outcome] += 1;
        }
    }
    println!(
        "{:<14} {:>8} {:>9} {:>6}",
        "style", "masked", "detected", "SDC"
    );
    for (style, name) in [(0usize, "plain"), (1, "self-check")] {
        println!(
            "{:<14} {:>8} {:>9} {:>6}",
            name, table[style][0], table[style][1], table[style][2]
        );
    }
    println!(
        "\nself-checking converts SDCs into detections at a runtime cost \
         (see the paper's encoding-style study [40])"
    );
}
