//! ISO 26262 fault classification.

use rescue_faults::{simulate::FaultSimulator, Fault};
use rescue_netlist::Netlist;
use rescue_sim::parallel::pack_patterns;

/// ISO 26262 class of a fault with respect to a safety goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Never corrupts a functional output under the stimulus (and thus
    /// cannot violate the safety goal).
    Safe,
    /// Corrupts a functional output but every such corruption is
    /// simultaneously flagged by a checker output.
    Detected,
    /// Corrupts a functional output with no alarm on at least one
    /// pattern — a dangerous undetected (residual) fault.
    Residual,
    /// Never corrupts a functional output but trips the checker —
    /// a latent corruption inside the safety mechanism itself.
    Latent,
}

/// Per-fault classification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationReport {
    faults: Vec<Fault>,
    classes: Vec<FaultClass>,
}

impl ClassificationReport {
    /// The classified faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The class of each fault, parallel to [`Self::faults`].
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Count of a class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// Fraction of a class.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        self.count(class) as f64 / self.classes.len() as f64
    }

    /// Iterates `(fault, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Fault, FaultClass)> + '_ {
        self.faults
            .iter()
            .copied()
            .zip(self.classes.iter().copied())
    }
}

/// Classifies `faults` by simulating `patterns` and comparing the
/// behaviour of `functional` outputs (safety-goal relevant) and
/// `checkers` outputs (safety mechanisms).
///
/// Classification is stimulus-relative — exactly like a real FI
/// campaign: a richer stimulus can move faults from `Safe` to another
/// class, never the other way.
///
/// # Panics
///
/// Panics if an output name is unknown or a pattern width mismatches.
pub fn classify(
    netlist: &Netlist,
    faults: &[Fault],
    functional: &[String],
    checkers: &[String],
    patterns: &[Vec<bool>],
) -> ClassificationReport {
    let find_driver = |name: &str| {
        netlist
            .primary_outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or_else(|| panic!("unknown output `{name}`"))
    };
    let func: Vec<_> = functional.iter().map(|n| find_driver(n)).collect();
    let chk: Vec<_> = checkers.iter().map(|n| find_driver(n)).collect();
    let sim = FaultSimulator::new(netlist);

    let mut classes = vec![FaultClass::Safe; faults.len()];
    let mut corrupts = vec![false; faults.len()];
    let mut undetected_corruption = vec![false; faults.len()];
    let mut alarms = vec![false; faults.len()];

    for chunk in patterns.chunks(64) {
        let words = pack_patterns(chunk);
        let golden = sim.golden(netlist, &words);
        let live = if chunk.len() < 64 {
            (1u64 << chunk.len()) - 1
        } else {
            u64::MAX
        };
        for (fi, &fault) in faults.iter().enumerate() {
            let faulty = sim.with_stuck(netlist, &words, fault);
            let mut func_mask = 0u64;
            for &g in &func {
                func_mask |= golden[g.index()] ^ faulty[g.index()];
            }
            let mut chk_mask = 0u64;
            for &g in &chk {
                chk_mask |= golden[g.index()] ^ faulty[g.index()];
            }
            func_mask &= live;
            chk_mask &= live;
            if func_mask != 0 {
                corrupts[fi] = true;
                if func_mask & !chk_mask != 0 {
                    undetected_corruption[fi] = true;
                }
            }
            if chk_mask != 0 {
                alarms[fi] = true;
            }
        }
    }
    for fi in 0..faults.len() {
        classes[fi] = match (corrupts[fi], undetected_corruption[fi], alarms[fi]) {
            (true, true, _) => FaultClass::Residual,
            (true, false, _) => FaultClass::Detected,
            (false, _, true) => FaultClass::Latent,
            (false, _, false) => FaultClass::Safe,
        };
    }
    ClassificationReport {
        faults: faults.to_vec(),
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplication::duplicate_with_comparator;
    use rescue_faults::universe;
    use rescue_netlist::generate;

    fn exhaustive(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn unprotected_design_is_mostly_residual() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let functional: Vec<String> = c.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let r = classify(&c, &faults, &functional, &[], &exhaustive(5));
        assert_eq!(r.count(FaultClass::Detected), 0, "no checker, no detection");
        assert!(r.fraction(FaultClass::Residual) > 0.9);
    }

    #[test]
    fn duplication_detects_single_copy_faults() {
        let inner = generate::adder(2);
        let p = duplicate_with_comparator(&inner);
        let faults = universe::stuck_at_universe(&p.netlist);
        let r = classify(
            &p.netlist,
            &faults,
            &p.functional_outputs,
            &p.checker_outputs,
            &exhaustive(p.netlist.primary_inputs().len()),
        );
        // Faults inside either copy corrupt exactly one copy -> alarm.
        // Only common-cause faults on the shared primary inputs escape
        // (both copies compute the same wrong answer).
        use rescue_netlist::GateKind;
        for (f, c) in r.iter() {
            if c == FaultClass::Residual {
                assert_eq!(
                    p.netlist.gate(f.site().gate()).kind(),
                    GateKind::Input,
                    "only shared-input faults may be residual, got {f}"
                );
            }
        }
        // Copy-A faults corrupt mission outputs with an alarm (Detected);
        // copy-B and comparator faults corrupt only the alarm (Latent).
        assert!(r.fraction(FaultClass::Detected) > 0.2);
        assert!(r.fraction(FaultClass::Latent) > 0.2);
    }

    #[test]
    fn stimulus_relative_monotonicity() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let functional: Vec<String> = c.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let few = classify(&c, &faults, &functional, &[], &exhaustive(5)[..2]);
        let all = classify(&c, &faults, &functional, &[], &exhaustive(5));
        // Safe count can only shrink with more stimulus.
        assert!(all.count(FaultClass::Safe) <= few.count(FaultClass::Safe));
    }

    #[test]
    #[should_panic(expected = "unknown output")]
    fn unknown_output_panics() {
        let c = generate::c17();
        classify(&c, &[], &["nope".into()], &[], &exhaustive(5));
    }
}
