//! ISO 26262 fault classification.
//!
//! Classification campaigns run on the shared [`rescue_campaign`] driver
//! and the incremental cone engine: instead of fully resimulating the
//! design per fault, each fault's effect is propagated through its
//! memoized fanout cone and observed at the functional/checker output
//! groups ([`rescue_faults::engine::CampaignPlan::detect_observed`]).

use rescue_campaign::{Campaign, CampaignStats};
use rescue_faults::engine::{CampaignPlan, FaultScratch, ObserverGroups};
use rescue_faults::{simulate::FaultSimulator, Fault};
use rescue_netlist::Netlist;
use rescue_sim::parallel::{live_mask, pack_patterns};

/// ISO 26262 class of a fault with respect to a safety goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Never corrupts a functional output under the stimulus (and thus
    /// cannot violate the safety goal).
    Safe,
    /// Corrupts a functional output but every such corruption is
    /// simultaneously flagged by a checker output.
    Detected,
    /// Corrupts a functional output with no alarm on at least one
    /// pattern — a dangerous undetected (residual) fault.
    Residual,
    /// Never corrupts a functional output but trips the checker —
    /// a latent corruption inside the safety mechanism itself.
    Latent,
}

/// Per-fault classification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationReport {
    faults: Vec<Fault>,
    classes: Vec<FaultClass>,
}

impl ClassificationReport {
    /// The classified faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The class of each fault, parallel to [`Self::faults`].
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Count of a class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// Fraction of a class.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        self.count(class) as f64 / self.classes.len() as f64
    }

    /// Iterates `(fault, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Fault, FaultClass)> + '_ {
        self.faults
            .iter()
            .copied()
            .zip(self.classes.iter().copied())
    }
}

/// A classification verdict plus its campaign observability record.
#[derive(Debug, Clone)]
pub struct ClassificationRun {
    /// The (deterministic) classification verdicts.
    pub report: ClassificationReport,
    /// Throughput, worker timing and lane-occupancy figures.
    pub stats: CampaignStats,
}

/// Classifies `faults` by simulating `patterns` and comparing the
/// behaviour of `functional` outputs (safety-goal relevant) and
/// `checkers` outputs (safety mechanisms). Serial convenience wrapper
/// over [`classify_with_stats`].
///
/// Classification is stimulus-relative — exactly like a real FI
/// campaign: a richer stimulus can move faults from `Safe` to another
/// class, never the other way.
///
/// # Panics
///
/// Panics if an output name is unknown or a pattern width mismatches.
pub fn classify(
    netlist: &Netlist,
    faults: &[Fault],
    functional: &[String],
    checkers: &[String],
    patterns: &[Vec<bool>],
) -> ClassificationReport {
    classify_with_stats(
        netlist,
        faults,
        functional,
        checkers,
        patterns,
        &Campaign::serial(),
    )
    .report
}

/// [`classify`] on the shared [`Campaign`] driver: faults are sharded
/// over scoped workers, each propagating fault effects through the
/// memoized cone engine and observing the two output groups. Verdicts
/// are identical for every worker count.
///
/// # Panics
///
/// Panics if an output name is unknown or a pattern width mismatches.
pub fn classify_with_stats(
    netlist: &Netlist,
    faults: &[Fault],
    functional: &[String],
    checkers: &[String],
    patterns: &[Vec<bool>],
    campaign: &Campaign,
) -> ClassificationRun {
    let _campaign_span = rescue_telemetry::span!("safety.classify", faults = faults.len());
    let find_driver = |name: &str| {
        netlist
            .primary_outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.index() as u32)
            .unwrap_or_else(|| panic!("unknown output `{name}`"))
    };
    let func: Vec<u32> = functional.iter().map(|n| find_driver(n)).collect();
    let chk: Vec<u32> = checkers.iter().map(|n| find_driver(n)).collect();
    let sim = FaultSimulator::new(netlist);
    let c = sim.compiled();
    let observers = ObserverGroups::new(c.len(), &func, &chk);
    let plan = CampaignPlan::build(c, faults);
    // Per-chunk golden values and live mask, shared read-only.
    let chunks: Vec<(Vec<u64>, u64)> = patterns
        .chunks(64)
        .map(|chunk| {
            let words = pack_patterns(chunk);
            (sim.golden(&words), live_mask(chunk.len()))
        })
        .collect();
    let run = campaign.run_ranges(
        faults,
        |_| FaultScratch::new(c.len()),
        |scratch, _, range| {
            let mut flags = vec![(false, false, false); range.len()];
            for (golden, live) in &chunks {
                scratch.load_golden(golden);
                for (fi, &fault) in range.iter().enumerate() {
                    let (corrupts, undetected, alarms) = &mut flags[fi];
                    if *undetected && *alarms {
                        continue; // Residual is already locked in
                    }
                    let (func_mask, chk_mask) =
                        plan.detect_observed(c, golden, scratch, fault, &observers);
                    let func_mask = func_mask & live;
                    let chk_mask = chk_mask & live;
                    if func_mask != 0 {
                        *corrupts = true;
                        if func_mask & !chk_mask != 0 {
                            *undetected = true;
                        }
                    }
                    if chk_mask != 0 {
                        *alarms = true;
                    }
                }
            }
            flags
                .iter()
                .map(
                    |&(corrupts, undetected, alarms)| match (corrupts, undetected, alarms) {
                        (true, true, _) => FaultClass::Residual,
                        (true, false, _) => FaultClass::Detected,
                        (false, _, true) => FaultClass::Latent,
                        (false, _, false) => FaultClass::Safe,
                    },
                )
                .collect()
        },
    );
    let mut stats = CampaignStats::from_run(faults.len(), &run);
    for (_, live) in &chunks {
        stats.record_lanes(live.count_ones() as u64, 64);
    }
    let report = ClassificationReport {
        faults: faults.to_vec(),
        classes: run.results,
    };
    stats.tally.masked = report.count(FaultClass::Safe);
    stats.tally.detected = report.count(FaultClass::Detected);
    stats.tally.latent = report.count(FaultClass::Latent);
    stats.tally.undetected = report.count(FaultClass::Residual);
    ClassificationRun { report, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplication::duplicate_with_comparator;
    use rescue_faults::universe;
    use rescue_netlist::generate;

    fn exhaustive(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn unprotected_design_is_mostly_residual() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let functional: Vec<String> = c.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let r = classify(&c, &faults, &functional, &[], &exhaustive(5));
        assert_eq!(r.count(FaultClass::Detected), 0, "no checker, no detection");
        assert!(r.fraction(FaultClass::Residual) > 0.9);
    }

    #[test]
    fn duplication_detects_single_copy_faults() {
        let inner = generate::adder(2);
        let p = duplicate_with_comparator(&inner);
        let faults = universe::stuck_at_universe(&p.netlist);
        let r = classify(
            &p.netlist,
            &faults,
            &p.functional_outputs,
            &p.checker_outputs,
            &exhaustive(p.netlist.primary_inputs().len()),
        );
        // Faults inside either copy corrupt exactly one copy -> alarm.
        // Only common-cause faults on the shared primary inputs escape
        // (both copies compute the same wrong answer).
        use rescue_netlist::GateKind;
        for (f, c) in r.iter() {
            if c == FaultClass::Residual {
                assert_eq!(
                    p.netlist.gate(f.site().gate()).kind(),
                    GateKind::Input,
                    "only shared-input faults may be residual, got {f}"
                );
            }
        }
        // Copy-A faults corrupt mission outputs with an alarm (Detected);
        // copy-B and comparator faults corrupt only the alarm (Latent).
        assert!(r.fraction(FaultClass::Detected) > 0.2);
        assert!(r.fraction(FaultClass::Latent) > 0.2);
    }

    #[test]
    fn stimulus_relative_monotonicity() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let functional: Vec<String> = c.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let few = classify(&c, &faults, &functional, &[], &exhaustive(5)[..2]);
        let all = classify(&c, &faults, &functional, &[], &exhaustive(5));
        // Safe count can only shrink with more stimulus.
        assert!(all.count(FaultClass::Safe) <= few.count(FaultClass::Safe));
    }

    #[test]
    #[should_panic(expected = "unknown output")]
    fn unknown_output_panics() {
        let c = generate::c17();
        classify(&c, &[], &["nope".into()], &[], &exhaustive(5));
    }

    #[test]
    fn verdicts_stable_across_worker_counts() {
        let inner = generate::adder(2);
        let p = duplicate_with_comparator(&inner);
        let faults = universe::stuck_at_universe(&p.netlist);
        let pats = exhaustive(p.netlist.primary_inputs().len());
        let serial = classify(
            &p.netlist,
            &faults,
            &p.functional_outputs,
            &p.checker_outputs,
            &pats,
        );
        for workers in [2usize, 3, 8] {
            let run = classify_with_stats(
                &p.netlist,
                &faults,
                &p.functional_outputs,
                &p.checker_outputs,
                &pats,
                &Campaign::new(0, workers),
            );
            assert_eq!(run.report, serial, "workers = {workers}");
            assert_eq!(run.stats.injections, faults.len());
            assert!(!run.stats.worker_ns.is_empty() && run.stats.worker_ns.len() <= workers);
            assert_eq!(run.stats.tally.total(), faults.len());
        }
    }
}
