//! Dynamic-slicing fault-injection acceleration \[49\], \[51\].
//!
//! A fault only matters for a given test if its site lies in the
//! *dynamically active* logic of that test: the set of gates whose value
//! actually influences an observed output under the test's input values
//! (a dynamic slice). Faults outside the slice of every pattern are
//! skipped, cutting campaign time without changing the verdicts.
//!
//! The slice is computed per pattern with the standard sensitization
//! criterion: walk back from the outputs; at each gate, follow inputs
//! that are *not* masked by a controlling side-input.

use rescue_campaign::{Campaign, CampaignStats};
use rescue_faults::engine::{CampaignPlan, FaultScratch};
use rescue_faults::{simulate::FaultSimulator, CampaignReport, Fault};
use rescue_netlist::{GateId, GateKind, Netlist};
use rescue_sim::comb::eval_bool;
use rescue_sim::parallel::pack_patterns;
use rescue_telemetry::{instant, metrics, span};

/// Computes the dynamic slice of one pattern: gates with a sensitized
/// path to some primary output under `pattern`.
///
/// # Panics
///
/// Panics if `pattern` has the wrong width.
pub fn dynamic_slice(netlist: &Netlist, pattern: &[bool]) -> Vec<GateId> {
    let values = eval_bool(netlist, pattern).expect("pattern width");
    let mut in_slice = vec![false; netlist.len()];
    let mut stack: Vec<GateId> = Vec::new();
    for (_, out) in netlist.primary_outputs() {
        if !in_slice[out.index()] {
            in_slice[out.index()] = true;
            stack.push(*out);
        }
    }
    while let Some(g) = stack.pop() {
        let gate = netlist.gate(g);
        let ins = gate.inputs();
        let followed: Vec<GateId> = match gate.kind() {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => vec![],
            GateKind::Buf | GateKind::Not => vec![ins[0]],
            GateKind::And | GateKind::Nand => {
                // Sound (critical-path-tracing) rule: a 0→1 output flip
                // requires *every* controlling-0 input to change, so
                // following the controlling inputs covers all multi-path
                // fault effects; with no controlling input, any input
                // change can matter.
                let zeros: Vec<GateId> =
                    ins.iter().copied().filter(|p| !values[p.index()]).collect();
                if zeros.is_empty() {
                    ins.to_vec()
                } else {
                    zeros
                }
            }
            GateKind::Or | GateKind::Nor => {
                let ones: Vec<GateId> = ins.iter().copied().filter(|p| values[p.index()]).collect();
                if ones.is_empty() {
                    ins.to_vec()
                } else {
                    ones
                }
            }
            // XOR-likes never mask.
            GateKind::Xor | GateKind::Xnor => ins.to_vec(),
            GateKind::Mux => {
                let sel = ins[0];
                let data = if values[sel.index()] { ins[2] } else { ins[1] };
                if values[ins[1].index()] != values[ins[2].index()] {
                    // Differing data: a change needs the select or the
                    // currently selected data to change.
                    vec![sel, data]
                } else {
                    // Equal data: output can only change through a data
                    // change (possibly combined with a select change).
                    vec![sel, ins[1], ins[2]]
                }
            }
        };
        for p in followed {
            if !in_slice[p.index()] {
                in_slice[p.index()] = true;
                stack.push(p);
            }
        }
    }
    in_slice
        .iter()
        .enumerate()
        .filter(|(_, &s)| s)
        .map(|(i, _)| GateId(i))
        .collect()
}

/// Campaign statistics with slicing.
#[derive(Debug, Clone)]
pub struct SlicedCampaign {
    /// The (identical) campaign verdicts.
    pub report: CampaignReport,
    /// Fault simulations actually executed.
    pub simulations_run: usize,
    /// Fault simulations a naive campaign would run.
    pub simulations_naive: usize,
    /// Throughput and worker timing from the shared campaign driver.
    pub stats: CampaignStats,
}

impl SlicedCampaign {
    /// The speedup factor (`naive / run`).
    pub fn speedup(&self) -> f64 {
        if self.simulations_run == 0 {
            return f64::INFINITY;
        }
        self.simulations_naive as f64 / self.simulations_run as f64
    }
}

/// Runs a serial stuck-at campaign that skips `(fault, pattern)` pairs
/// where the fault site is outside the pattern's dynamic slice.
/// Convenience wrapper over [`sliced_campaign_on`] with
/// [`Campaign::serial`].
///
/// Produces exactly the same first-detection verdicts as
/// [`FaultSimulator::campaign`] run pattern-by-pattern.
///
/// # Panics
///
/// Panics on pattern-width mismatches.
pub fn sliced_campaign(
    netlist: &Netlist,
    faults: &[Fault],
    patterns: &[Vec<bool>],
) -> SlicedCampaign {
    sliced_campaign_on(netlist, faults, patterns, &Campaign::serial())
}

/// [`sliced_campaign`] on the shared [`Campaign`] driver: slices and
/// golden values are computed once per pattern, then faults are sharded
/// over scoped workers. Each fault's pattern walk — skip-if-detected,
/// skip-if-out-of-slice, simulate otherwise — is independent of every
/// other fault, so verdicts *and* both simulation counters are identical
/// for every worker count.
///
/// # Panics
///
/// Panics on pattern-width mismatches.
pub fn sliced_campaign_on(
    netlist: &Netlist,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    campaign: &Campaign,
) -> SlicedCampaign {
    let _campaign_span = span!("safety.slicing", faults = faults.len());
    let sim = FaultSimulator::new(netlist);
    let c = sim.compiled();
    let plan = CampaignPlan::build(c, faults);
    // Golden values and slice membership per pattern, shared read-only.
    let prep: Vec<(Vec<u64>, Vec<bool>)> = {
        let _prep_span = span!("safety.slicing.prep", patterns = patterns.len());
        patterns
            .iter()
            .map(|pattern| {
                let words = pack_patterns(std::slice::from_ref(pattern));
                let golden = sim.golden(&words);
                let mut in_slice = vec![false; netlist.len()];
                let slice = dynamic_slice(netlist, pattern);
                // Verbose per-pattern diagnostics ride the telemetry
                // journal (instant events) instead of stderr prints.
                instant!("slicing.pattern_slice", gates = slice.len());
                for g in slice {
                    in_slice[g.index()] = true;
                }
                (golden, in_slice)
            })
            .collect()
    };
    let sharded = campaign.run_ranges(
        faults,
        |_| FaultScratch::new(c.len()),
        |scratch, _, range| {
            let mut out: Vec<(Option<usize>, usize, usize)> = vec![(None, 0, 0); range.len()];
            for (pi, (golden, in_slice)) in prep.iter().enumerate() {
                scratch.load_golden(golden);
                for (fi, &fault) in range.iter().enumerate() {
                    let (detected, run, naive) = &mut out[fi];
                    if detected.is_some() {
                        continue;
                    }
                    *naive += 1;
                    if !in_slice[fault.site().gate().index()] {
                        continue; // provably undetected by this pattern
                    }
                    *run += 1;
                    if plan.detect(c, golden, scratch, fault) & 1 != 0 {
                        *detected = Some(pi);
                    }
                }
            }
            out
        },
    );
    let mut first_detection = Vec::with_capacity(faults.len());
    let (mut run, mut naive) = (0usize, 0usize);
    for &(detected, r, n) in &sharded.results {
        first_detection.push(detected);
        run += r;
        naive += n;
    }
    if rescue_telemetry::enabled() {
        metrics::counter("slicing.sims_run").add(run as u64);
        metrics::counter("slicing.sims_skipped").add((naive - run) as u64);
    }
    let mut stats = CampaignStats::from_run(run, &sharded);
    for _ in &prep {
        stats.record_lanes(1, 64); // one pattern per word: single live lane
    }
    // Reconstruct a CampaignReport through the public constructor path:
    // re-run the dropped bookkeeping shape by marrying our verdicts with
    // the fault list (identical semantics).
    let report = CampaignReportBuilder {
        faults: faults.to_vec(),
        first_detection,
        patterns: patterns.len(),
    }
    .build();
    stats.tally.detected = report.detected_count();
    stats.tally.undetected = faults.len() - stats.tally.detected;
    SlicedCampaign {
        report,
        simulations_run: run,
        simulations_naive: naive,
        stats,
    }
}

struct CampaignReportBuilder {
    faults: Vec<Fault>,
    first_detection: Vec<Option<usize>>,
    patterns: usize,
}

impl CampaignReportBuilder {
    fn build(self) -> CampaignReport {
        CampaignReport::from_parts(self.faults, self.first_detection, self.patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_faults::universe;
    use rescue_netlist::generate;

    fn patterns(n: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut s = seed.max(1);
        (0..count)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn slice_soundness_exhaustive() {
        // Any fault outside the slice must be undetected by that pattern.
        let net = generate::c17();
        let faults = universe::stuck_at_universe(&net);
        let sim = FaultSimulator::new(&net);
        for p in 0u32..32 {
            let pattern: Vec<bool> = (0..5).map(|i| p >> i & 1 == 1).collect();
            let slice = dynamic_slice(&net, &pattern);
            let words = rescue_sim::parallel::pack_patterns(std::slice::from_ref(&pattern));
            let golden = sim.golden(&words);
            for &f in &faults {
                if slice.contains(&f.site().gate()) {
                    continue;
                }
                let detected = sim.detection_mask(&net, &words, &golden, f) & 1;
                assert_eq!(detected, 0, "pattern {p}, fault {f} escaped the slice");
            }
        }
    }

    #[test]
    fn sliced_campaign_matches_naive_verdicts() {
        let net = generate::random_logic(7, 70, 3, 13);
        let faults = universe::stuck_at_universe(&net);
        let pats = patterns(7, 48, 5);
        let sliced = sliced_campaign(&net, &faults, &pats);
        let naive = FaultSimulator::new(&net).campaign(&net, &faults, &pats);
        assert_eq!(
            sliced.report.first_detection(),
            naive.first_detection(),
            "slicing must not change any verdict"
        );
        assert!(sliced.speedup() > 1.0, "speedup {}", sliced.speedup());
    }

    #[test]
    fn sliced_campaign_counters_stable_across_worker_counts() {
        use rescue_campaign::Campaign;
        let net = generate::random_logic(7, 70, 3, 13);
        let faults = universe::stuck_at_universe(&net);
        let pats = patterns(7, 48, 5);
        let serial = sliced_campaign(&net, &faults, &pats);
        for workers in [2usize, 4] {
            let par = sliced_campaign_on(&net, &faults, &pats, &Campaign::new(0, workers));
            assert_eq!(
                par.report.first_detection(),
                serial.report.first_detection()
            );
            assert_eq!(par.simulations_run, serial.simulations_run);
            assert_eq!(par.simulations_naive, serial.simulations_naive);
            assert!(par.stats.injections_per_sec() > 0.0);
        }
    }

    #[test]
    fn slice_smaller_on_masked_circuits() {
        // An AND tree with one zero input masks everything else.
        let mut b = rescue_netlist::NetlistBuilder::new("mask");
        let ins = b.inputs("i", 8);
        let g = b.and_n(&ins);
        b.output("y", g);
        let net = b.finish();
        let all_ones = vec![true; 8];
        let one_zero: Vec<bool> = (0..8).map(|i| i != 0).collect();
        let s1 = dynamic_slice(&net, &all_ones);
        let s2 = dynamic_slice(&net, &one_zero);
        assert!(s1.len() > s2.len());
        assert!(s2.contains(&ins[0]), "the controlling input is in-slice");
        assert!(!s2.contains(&ins[3]), "masked inputs are out of slice");
    }
}
