//! Tool-confidence cross-validation.
//!
//! "Our proposed vendor-independent methodology helps improving the
//! confidence in fault analysis tools by combining the strengths of
//! ATPGs, Formal methods and Fault Injection simulation to automatically
//! verify tools and detect any errors in their fault classification"
//! (paper Section III.D, \[20\], \[48\], \[50\]).
//!
//! Three independent engines give a verdict per fault:
//!
//! * **ATPG** (PODEM) — testable (with a witness pattern) / untestable;
//! * **FI** — detected / undetected under a given stimulus;
//! * **Formal** (structural + constant reasoning) — safe / potentially
//!   dangerous.
//!
//! Consistency rules: FI-detected ⇒ ATPG-testable and formal-dangerous;
//! ATPG-untestable ⇒ FI-undetected. Violations indicate a tool bug.

use rescue_atpg::podem::{Podem, PodemOutcome};
use rescue_atpg::untestable::{identify, UntestableReason};
use rescue_campaign::Campaign;
use rescue_faults::{simulate::FaultSimulator, Fault};
use rescue_netlist::Netlist;

/// Verdicts of the three engines for one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolVerdicts {
    /// ATPG: `Some(true)` testable, `Some(false)` untestable, `None`
    /// aborted.
    pub atpg_testable: Option<bool>,
    /// FI: detected under the stimulus.
    pub fi_detected: bool,
    /// Formal: proven safe (unobservable/unactivatable).
    pub formally_safe: bool,
}

/// One inconsistency between engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// The fault with conflicting verdicts.
    pub fault: Fault,
    /// The verdicts.
    pub verdicts: ToolVerdicts,
    /// Which rule was violated.
    pub rule: &'static str,
}

/// Cross-check result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossCheck {
    verdicts: Vec<(Fault, ToolVerdicts)>,
    inconsistencies: Vec<Inconsistency>,
}

impl CrossCheck {
    /// Per-fault verdicts.
    pub fn verdicts(&self) -> &[(Fault, ToolVerdicts)] {
        &self.verdicts
    }

    /// All detected rule violations (empty = tools agree).
    pub fn inconsistencies(&self) -> &[Inconsistency] {
        &self.inconsistencies
    }

    /// Agreement matrix counts:
    /// `(fi_detected & atpg_testable, fi_undetected & atpg_testable,
    ///   fi_undetected & atpg_untestable, aborted)`.
    pub fn agreement_matrix(&self) -> (usize, usize, usize, usize) {
        let mut m = (0, 0, 0, 0);
        for (_, v) in &self.verdicts {
            match (v.fi_detected, v.atpg_testable) {
                (true, Some(true)) => m.0 += 1,
                (false, Some(true)) => m.1 += 1,
                (false, Some(false)) => m.2 += 1,
                (_, None) => m.3 += 1,
                (true, Some(false)) => m.3 += 1, // recorded as inconsistency
            }
        }
        m
    }
}

/// Runs the three engines over `faults` and cross-checks their verdicts.
///
/// `patterns` is the FI stimulus. Combinational designs only (the paper
/// flow applies it block-wise).
///
/// # Panics
///
/// Panics on sequential designs or width mismatches.
pub fn cross_check(netlist: &Netlist, faults: &[Fault], patterns: &[Vec<bool>]) -> CrossCheck {
    assert!(!netlist.is_sequential(), "block-level cross-check only");
    let podem = Podem::new(netlist);
    let fi = FaultSimulator::new(netlist);
    let fi_report = fi
        .campaign_with_stats(faults, patterns, &Campaign::serial())
        .report;
    let formal = identify(netlist, faults, false);
    let formally_safe: Vec<bool> = faults
        .iter()
        .map(|f| {
            formal.untestable().iter().any(|(uf, r)| {
                uf == f
                    && matches!(
                        r,
                        UntestableReason::Unobservable | UntestableReason::ConstantLine
                    )
            })
        })
        .collect();

    let mut verdicts = Vec::with_capacity(faults.len());
    let mut inconsistencies = Vec::new();
    for (fi_idx, &fault) in faults.iter().enumerate() {
        let atpg_testable = match podem.generate(netlist, fault) {
            PodemOutcome::Test(_) => Some(true),
            PodemOutcome::Untestable => Some(false),
            PodemOutcome::Aborted => None,
        };
        let v = ToolVerdicts {
            atpg_testable,
            fi_detected: fi_report.first_detection()[fi_idx].is_some(),
            formally_safe: formally_safe[fi_idx],
        };
        if v.fi_detected && v.atpg_testable == Some(false) {
            inconsistencies.push(Inconsistency {
                fault,
                verdicts: v,
                rule: "FI-detected fault must be ATPG-testable",
            });
        }
        if v.fi_detected && v.formally_safe {
            inconsistencies.push(Inconsistency {
                fault,
                verdicts: v,
                rule: "FI-detected fault cannot be formally safe",
            });
        }
        verdicts.push((fault, v));
    }
    CrossCheck {
        verdicts,
        inconsistencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_faults::universe;
    use rescue_netlist::generate;

    fn exhaustive(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn healthy_tools_are_consistent() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let check = cross_check(&c, &faults, &exhaustive(5));
        assert!(
            check.inconsistencies().is_empty(),
            "{:?}",
            check.inconsistencies()
        );
        let (dd, ud, uu, ab) = check.agreement_matrix();
        assert_eq!(dd, faults.len(), "exhaustive stimulus detects everything");
        assert_eq!(ud + uu + ab, 0);
    }

    #[test]
    fn weak_stimulus_shows_in_matrix_not_inconsistencies() {
        let net = generate::random_logic(8, 60, 3, 31);
        let faults = universe::stuck_at_universe(&net);
        // Just 2 patterns: FI misses many testable faults — that is not
        // an inconsistency, merely low coverage.
        let check = cross_check(&net, &faults, &exhaustive(8)[..2]);
        assert!(check.inconsistencies().is_empty());
        let (_, undet_testable, _, _) = check.agreement_matrix();
        assert!(undet_testable > 0);
    }

    #[test]
    fn redundant_design_agrees_on_untestable() {
        let mut b = rescue_netlist::NetlistBuilder::new("red");
        let a = b.input("a");
        let x = b.input("b");
        let g = b.and(a, x);
        let y = b.or(a, g);
        b.output("y", y);
        let n = b.finish();
        let faults = universe::stuck_at_universe(&n);
        let check = cross_check(&n, &faults, &exhaustive(2));
        assert!(check.inconsistencies().is_empty());
        let (_, _, both_untestable, _) = check.agreement_matrix();
        assert!(both_untestable > 0, "the redundant fault shows up");
    }
}
