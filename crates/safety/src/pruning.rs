//! Formal fault-list optimization before fault injection.
//!
//! "Use of formal methods for verification and optimization of fault
//! lists" \[19\]: two cheap static analyses prove faults safe without a
//! single simulation:
//!
//! * **cone-of-influence** — a fault outside the fan-in cone of every
//!   safety-relevant output cannot violate the safety goal;
//! * **constant propagation** — a line proven constant `v` makes the
//!   stuck-at-`v` fault unactivatable.

use rescue_faults::{Fault, FaultKind, FaultSite};
use rescue_netlist::{cone, GateKind, Netlist};
use rescue_sim::logic::eval_gate;
use rescue_sim::Logic;
use std::collections::HashSet;

/// Result of the pruning pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruningReport {
    /// Faults that still need FI simulation.
    pub remaining: Vec<Fault>,
    /// Faults proven safe by cone analysis.
    pub pruned_coi: Vec<Fault>,
    /// Faults proven unactivatable by constant propagation.
    pub pruned_constant: Vec<Fault>,
}

impl PruningReport {
    /// Fraction of the original list removed.
    pub fn reduction(&self) -> f64 {
        let total = self.remaining.len() + self.pruned_coi.len() + self.pruned_constant.len();
        if total == 0 {
            return 0.0;
        }
        (self.pruned_coi.len() + self.pruned_constant.len()) as f64 / total as f64
    }
}

/// Prunes `faults` against the safety-relevant `outputs` (names).
///
/// # Panics
///
/// Panics on unknown output names.
///
/// # Examples
///
/// ```
/// use rescue_faults::universe;
/// use rescue_netlist::generate;
/// use rescue_safety::pruning::prune;
///
/// let net = generate::random_logic(8, 120, 4, 5);
/// let faults = universe::stuck_at_universe(&net);
/// // Pretend only the first output is safety relevant:
/// let outs = vec![net.primary_outputs()[0].0.clone()];
/// let report = prune(&net, &faults, &outs);
/// assert!(report.reduction() > 0.0, "dead logic exists in random nets");
/// ```
pub fn prune(netlist: &Netlist, faults: &[Fault], outputs: &[String]) -> PruningReport {
    let roots: Vec<_> = outputs
        .iter()
        .map(|name| {
            netlist
                .primary_outputs()
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| *d)
                .unwrap_or_else(|| panic!("unknown output `{name}`"))
        })
        .collect();
    let relevant: HashSet<usize> = cone::fanin_cone(netlist, &roots)
        .into_iter()
        .map(|g| g.index())
        .collect();
    let constants = constant_values(netlist);

    let mut remaining = Vec::new();
    let mut pruned_coi = Vec::new();
    let mut pruned_constant = Vec::new();
    for &f in faults {
        if !relevant.contains(&f.site().gate().index()) {
            pruned_coi.push(f);
            continue;
        }
        let line = match f.site() {
            FaultSite::Output(g) => g,
            FaultSite::Pin { gate, pin } => netlist.gate(gate).inputs()[pin],
        };
        if let Some(c) = constants[line.index()].to_bool() {
            let stuck = matches!(f.kind(), FaultKind::StuckAt1);
            if c == stuck {
                pruned_constant.push(f);
                continue;
            }
        }
        remaining.push(f);
    }
    PruningReport {
        remaining,
        pruned_coi,
        pruned_constant,
    }
}

fn constant_values(netlist: &Netlist) -> Vec<Logic> {
    let order = netlist.levelize().order().to_vec();
    let mut values = vec![Logic::X; netlist.len()];
    let mut buf = Vec::with_capacity(4);
    for &id in &order {
        let g = netlist.gate(id);
        match g.kind() {
            GateKind::Input | GateKind::Dff => values[id.index()] = Logic::X,
            kind => {
                buf.clear();
                buf.extend(g.inputs().iter().map(|&p| values[p.index()]));
                values[id.index()] = eval_gate(kind, &buf);
            }
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_faults::{simulate::FaultSimulator, universe};
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn pruned_faults_really_are_safe() {
        // Ground truth via exhaustive simulation on the relevant output.
        let net = generate::random_logic(6, 60, 3, 9);
        let faults = universe::stuck_at_universe(&net);
        let safety_out = vec![net.primary_outputs()[0].0.clone()];
        let report = prune(&net, &faults, &safety_out);
        let sim = FaultSimulator::new(&net);
        let patterns: Vec<Vec<bool>> = (0..64u32)
            .map(|p| (0..6).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let words = rescue_sim::parallel::pack_patterns(&patterns);
        let golden = sim.golden(&words);
        let safety_driver = net.primary_outputs()[0].1;
        for f in report.pruned_coi.iter().chain(&report.pruned_constant) {
            let faulty = sim.with_stuck(&words, *f);
            assert_eq!(
                golden[safety_driver.index()],
                faulty[safety_driver.index()],
                "pruned fault {f} corrupts the safety output"
            );
        }
    }

    #[test]
    fn constant_pruning_works() {
        let mut b = NetlistBuilder::new("k");
        let a = b.input("a");
        let k = b.const0();
        let g = b.or(a, k);
        b.output("y", g);
        let n = b.finish();
        let faults = vec![
            Fault::stuck_at(FaultSite::Pin { gate: g, pin: 1 }, false), // sa0 on const-0 pin
            Fault::stuck_at(FaultSite::Pin { gate: g, pin: 1 }, true),
        ];
        let r = prune(&n, &faults, &["y".into()]);
        assert_eq!(r.pruned_constant.len(), 1);
        assert_eq!(r.remaining.len(), 1);
    }

    #[test]
    fn full_relevance_prunes_nothing_by_coi() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let outs: Vec<String> = c.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let r = prune(&c, &faults, &outs);
        assert!(r.pruned_coi.is_empty());
        assert_eq!(r.reduction(), 0.0);
    }
}
