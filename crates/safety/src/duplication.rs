//! Duplication-with-comparison safety mechanism.
//!
//! The classic lockstep pattern at netlist granularity: instantiate the
//! functional block twice, compare all outputs, and raise an `alarm`
//! checker output on any mismatch. Used by the classification examples
//! and the AutoSoC experiments (paper Section IV.B's LockStep CPU).

use rescue_netlist::{GateId, GateKind, Netlist, NetlistBuilder};

/// A protected design: the netlist plus the split between functional and
/// checker outputs.
#[derive(Debug, Clone)]
pub struct ProtectedDesign {
    /// The combined netlist.
    pub netlist: Netlist,
    /// Names of the mission outputs.
    pub functional_outputs: Vec<String>,
    /// Names of the safety-mechanism outputs (alarms).
    pub checker_outputs: Vec<String>,
}

/// Duplicates a combinational block and compares every output pair.
///
/// # Panics
///
/// Panics if `inner` is sequential.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_safety::duplication::duplicate_with_comparator;
///
/// let p = duplicate_with_comparator(&generate::c17());
/// assert_eq!(p.functional_outputs.len(), 2);
/// assert_eq!(p.checker_outputs, vec!["alarm".to_string()]);
/// ```
pub fn duplicate_with_comparator(inner: &Netlist) -> ProtectedDesign {
    assert!(!inner.is_sequential(), "duplication requires combinational");
    let mut b = NetlistBuilder::new(format!("dup_{}", inner.name()));
    let pis = b.inputs("i", inner.primary_inputs().len());
    let copy = |b: &mut NetlistBuilder| -> Vec<GateId> {
        let mut map = vec![GateId(0); inner.len()];
        for &id in inner.levelize().order() {
            let g = inner.gate(id);
            if g.kind() == GateKind::Input {
                let pos = inner
                    .primary_inputs()
                    .iter()
                    .position(|&p| p == id)
                    .expect("input registered");
                map[id.index()] = pis[pos];
                continue;
            }
            let ins: Vec<GateId> = g.inputs().iter().map(|&p| map[p.index()]).collect();
            map[id.index()] = match g.kind() {
                GateKind::Const0 => b.const0(),
                GateKind::Const1 => b.const1(),
                GateKind::Buf => b.buf(ins[0]),
                GateKind::Not => b.not(ins[0]),
                GateKind::And => b.and_n(&ins),
                GateKind::Nand => b.nand(ins[0], ins[1]),
                GateKind::Or => b.or_n(&ins),
                GateKind::Nor => b.nor(ins[0], ins[1]),
                GateKind::Xor => b.xor_n(&ins),
                GateKind::Xnor => b.xnor(ins[0], ins[1]),
                GateKind::Mux => b.mux(ins[0], ins[1], ins[2]),
                GateKind::Input | GateKind::Dff => unreachable!(),
            };
        }
        inner
            .primary_outputs()
            .iter()
            .map(|(_, g)| map[g.index()])
            .collect()
    };
    let outs_a = copy(&mut b);
    let outs_b = copy(&mut b);
    let mut functional = Vec::new();
    let mut mismatches = Vec::new();
    for (i, (name, _)) in inner.primary_outputs().iter().enumerate() {
        b.output(name.clone(), outs_a[i]);
        functional.push(name.clone());
        mismatches.push(b.xor(outs_a[i], outs_b[i]));
    }
    let alarm = if mismatches.len() == 1 {
        b.buf(mismatches[0])
    } else {
        b.or_n(&mismatches)
    };
    b.output("alarm", alarm);
    ProtectedDesign {
        netlist: b.finish(),
        functional_outputs: functional,
        checker_outputs: vec!["alarm".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;
    use rescue_sim::comb::eval_bool;

    #[test]
    fn functional_behaviour_preserved() {
        let inner = generate::adder(3);
        let p = duplicate_with_comparator(&inner);
        for x in 0u32..8 {
            for y in 0u32..8 {
                let mut ins = vec![false; 7];
                for b in 0..3 {
                    ins[b] = x >> b & 1 == 1;
                    ins[3 + b] = y >> b & 1 == 1;
                }
                let vi = eval_bool(&inner, &ins).unwrap();
                let vp = eval_bool(&p.netlist, &ins).unwrap();
                for (name, g) in inner.primary_outputs() {
                    let gp = p.netlist.find(name).expect("same output names");
                    // find() may return the driver gate id; compare values
                    let pv = p
                        .netlist
                        .primary_outputs()
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, d)| vp[d.index()])
                        .expect("output exists");
                    assert_eq!(pv, vi[g.index()]);
                    let _ = gp;
                }
                // No fault -> alarm silent.
                let alarm = p
                    .netlist
                    .primary_outputs()
                    .iter()
                    .find(|(n, _)| n == "alarm")
                    .map(|(_, d)| vp[d.index()])
                    .expect("alarm exists");
                assert!(!alarm);
            }
        }
    }

    #[test]
    fn size_roughly_doubles() {
        let inner = generate::c17();
        let p = duplicate_with_comparator(&inner);
        assert!(p.netlist.len() >= 2 * (inner.len() - 5));
    }
}
