//! Failure-mode, effects and criticality analysis (FMECA) tables.
//!
//! Supports the early-flow activity of paper Section III.D: "techniques
//! for supporting architects and reliability experts in performing
//! FMECA". Rows carry the classic severity/occurrence/detection scores
//! and are ranked by risk priority number (RPN).

use std::fmt;

/// Severity, occurrence and detection are 1–10 ordinal scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Score(u8);

impl Score {
    /// Creates a score, clamping into `1..=10`.
    pub fn new(v: u8) -> Self {
        Score(v.clamp(1, 10))
    }

    /// The numeric value.
    pub fn value(self) -> u8 {
        self.0
    }
}

/// One FMECA row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmecaRow {
    /// Component or block.
    pub component: String,
    /// The failure mode (e.g. "stuck-at on carry chain").
    pub failure_mode: String,
    /// The system-level effect.
    pub effect: String,
    /// Severity score.
    pub severity: Score,
    /// Occurrence score.
    pub occurrence: Score,
    /// Detection score (10 = undetectable).
    pub detection: Score,
}

impl FmecaRow {
    /// Risk priority number: `S * O * D` in `1..=1000`.
    pub fn rpn(&self) -> u32 {
        self.severity.value() as u32
            * self.occurrence.value() as u32
            * self.detection.value() as u32
    }
}

impl fmt::Display for FmecaRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | S{} O{} D{} | RPN {}",
            self.component,
            self.failure_mode,
            self.effect,
            self.severity.value(),
            self.occurrence.value(),
            self.detection.value(),
            self.rpn()
        )
    }
}

/// An FMECA table with ranking and threshold queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FmecaTable {
    rows: Vec<FmecaRow>,
}

impl FmecaTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a row.
    pub fn push(&mut self, row: FmecaRow) {
        self.rows.push(row);
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[FmecaRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows sorted by descending RPN (criticality ranking).
    pub fn ranked(&self) -> Vec<&FmecaRow> {
        let mut v: Vec<&FmecaRow> = self.rows.iter().collect();
        v.sort_by_key(|r| std::cmp::Reverse(r.rpn()));
        v
    }

    /// Rows whose RPN exceeds `threshold` (the action list).
    pub fn action_items(&self, threshold: u32) -> Vec<&FmecaRow> {
        self.ranked()
            .into_iter()
            .filter(|r| r.rpn() > threshold)
            .collect()
    }

    /// Derives occurrence/detection scores from measured quantities:
    /// an occurrence probability and a detection coverage in `[0, 1]`.
    pub fn derived_row(
        component: impl Into<String>,
        failure_mode: impl Into<String>,
        effect: impl Into<String>,
        severity: Score,
        occurrence_probability: f64,
        detection_coverage: f64,
    ) -> FmecaRow {
        // log-scale mapping: 1e-9 -> 1 … 1e-1+ -> 10
        let occ = if occurrence_probability <= 0.0 {
            1
        } else {
            let lg = occurrence_probability.log10(); // ~ -9..-1
            ((lg + 10.0).clamp(1.0, 10.0)) as u8
        };
        // coverage 1.0 -> D=1 (always caught), 0.0 -> D=10
        let det = (10.0 - 9.0 * detection_coverage.clamp(0.0, 1.0)).round() as u8;
        FmecaRow {
            component: component.into(),
            failure_mode: failure_mode.into(),
            effect: effect.into(),
            severity,
            occurrence: Score::new(occ),
            detection: Score::new(det),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(s: u8, o: u8, d: u8) -> FmecaRow {
        FmecaRow {
            component: "c".into(),
            failure_mode: "m".into(),
            effect: "e".into(),
            severity: Score::new(s),
            occurrence: Score::new(o),
            detection: Score::new(d),
        }
    }

    #[test]
    fn rpn_and_ranking() {
        let mut t = FmecaTable::new();
        t.push(row(10, 5, 2)); // 100
        t.push(row(3, 3, 3)); // 27
        t.push(row(9, 9, 9)); // 729
        let ranked = t.ranked();
        assert_eq!(ranked[0].rpn(), 729);
        assert_eq!(ranked[2].rpn(), 27);
        assert_eq!(t.action_items(100).len(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn scores_clamped() {
        assert_eq!(Score::new(0).value(), 1);
        assert_eq!(Score::new(200).value(), 10);
    }

    #[test]
    fn derived_scores() {
        let r = FmecaTable::derived_row("cpu", "seu", "sdc", Score::new(9), 1e-6, 0.99);
        assert!(r.occurrence.value() <= 5);
        assert_eq!(r.detection.value(), 1);
        let r2 = FmecaTable::derived_row("cpu", "seu", "sdc", Score::new(9), 0.5, 0.0);
        assert!(r2.occurrence.value() >= 9);
        assert_eq!(r2.detection.value(), 10);
        assert!(r2.rpn() > r.rpn());
        // zero probability floor
        let r3 = FmecaTable::derived_row("x", "y", "z", Score::new(1), 0.0, 0.5);
        assert_eq!(r3.occurrence.value(), 1);
    }

    #[test]
    fn display_contains_rpn() {
        assert!(row(2, 2, 2).to_string().contains("RPN 8"));
    }
}
