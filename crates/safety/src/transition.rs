//! FuSa classification for transition-delay faults.
//!
//! "How to extend FuSa verification in terms of its fault models … are
//! also active areas of research in the RESCUE project" (paper Section
//! III.D). This module extends the ISO 26262 classification from the
//! stuck-at model to transition-delay faults: a slow-to-rise/fall fault
//! violates the safety goal when a *pattern pair* in the mission
//! stimulus launches the failing transition into a functional output
//! with no simultaneous checker alarm.

use crate::classify::FaultClass;
use rescue_campaign::{Campaign, CampaignStats};
use rescue_faults::engine::{CampaignPlan, FaultScratch, ObserverGroups};
use rescue_faults::{simulate::FaultSimulator, Fault, FaultKind, FaultSite};
use rescue_netlist::Netlist;
use rescue_sim::parallel::pack_patterns;

/// Classification of transition faults against consecutive-pair stimuli.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionClassification {
    faults: Vec<Fault>,
    classes: Vec<FaultClass>,
}

impl TransitionClassification {
    /// The classified faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The class of each fault.
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Count of one class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.classes.iter().filter(|&&c| c == class).count()
    }

    /// Fraction of one class.
    pub fn fraction(&self, class: FaultClass) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        self.count(class) as f64 / self.classes.len() as f64
    }
}

/// A transition classification plus its campaign observability record.
#[derive(Debug, Clone)]
pub struct TransitionRun {
    /// The (deterministic) classification verdicts.
    pub report: TransitionClassification,
    /// Throughput, worker timing and lane-occupancy figures.
    pub stats: CampaignStats,
}

/// Classifies transition-delay `faults` over consecutive pattern pairs
/// of `patterns` (launch `i`, capture `i+1`), against `functional` and
/// `checkers` output groups. Serial convenience wrapper over
/// [`classify_transitions_with_stats`].
///
/// The capture-cycle behaviour of a launched slow-to-rise fault is its
/// stuck-at-0 equivalent (and dual for slow-to-fall), so each pair
/// reduces to a conditional stuck-at classification — the standard
/// launch-on-shift reduction.
///
/// # Panics
///
/// Panics on unknown output names, non-transition fault kinds, pin
/// fault sites or width mismatches.
pub fn classify_transitions(
    netlist: &Netlist,
    faults: &[Fault],
    functional: &[String],
    checkers: &[String],
    patterns: &[Vec<bool>],
) -> TransitionClassification {
    classify_transitions_with_stats(
        netlist,
        faults,
        functional,
        checkers,
        patterns,
        &Campaign::serial(),
    )
    .report
}

/// [`classify_transitions`] on the shared [`Campaign`] driver: pattern
/// pairs are simulated once, then faults are sharded over scoped
/// workers, each applying the launch-on-shift reduction through the
/// incremental cone engine. Verdicts are identical for every worker
/// count.
///
/// # Panics
///
/// Panics on unknown output names, non-transition fault kinds, pin
/// fault sites or width mismatches.
pub fn classify_transitions_with_stats(
    netlist: &Netlist,
    faults: &[Fault],
    functional: &[String],
    checkers: &[String],
    patterns: &[Vec<bool>],
    campaign: &Campaign,
) -> TransitionRun {
    let find_driver = |name: &str| {
        netlist
            .primary_outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.index() as u32)
            .unwrap_or_else(|| panic!("unknown output `{name}`"))
    };
    let func: Vec<u32> = functional.iter().map(|n| find_driver(n)).collect();
    let chk: Vec<u32> = checkers.iter().map(|n| find_driver(n)).collect();
    let sim = FaultSimulator::new(netlist);
    let c = sim.compiled();
    let observers = ObserverGroups::new(c.len(), &func, &chk);

    // Validate fault kinds and reduce each transition fault to its
    // launch condition plus stuck-at equivalent — on the caller thread,
    // so malformed inputs panic before any worker spawns.
    let specs: Vec<(usize, u64, u64, Fault)> = faults
        .iter()
        .map(|fault| {
            let site = match fault.site() {
                FaultSite::Output(g) => g,
                FaultSite::Pin { .. } => panic!("transition faults sit on outputs"),
            };
            let (from, to, stuck) = match fault.kind() {
                FaultKind::SlowToRise => (0u64, 1u64, false),
                FaultKind::SlowToFall => (1, 0, true),
                other => panic!("classify_transitions requires transition faults, got {other}"),
            };
            let eq = Fault::stuck_at(FaultSite::Output(site), stuck);
            (site.index(), from, to, eq)
        })
        .collect();
    let plan = CampaignPlan::build(c, &specs.iter().map(|s| s.3).collect::<Vec<_>>());
    // Launch/capture golden values per consecutive pair, shared read-only.
    let pairs: Vec<(Vec<u64>, Vec<u64>)> = patterns
        .windows(2)
        .map(|pair| {
            (
                sim.golden(&pack_patterns(&pair[..1])),
                sim.golden(&pack_patterns(&pair[1..])),
            )
        })
        .collect();

    let run = campaign.run_ranges(
        &specs,
        |_| FaultScratch::new(c.len()),
        |scratch, _, range| {
            let mut flags = vec![(false, false, false); range.len()];
            for (g_launch, g_capture) in &pairs {
                scratch.load_golden(g_capture);
                for (fi, &(site, from, to, eq)) in range.iter().enumerate() {
                    let (corrupts, undetected, alarms) = &mut flags[fi];
                    if *undetected && *alarms {
                        continue; // Residual is already locked in
                    }
                    if g_launch[site] & 1 != from || g_capture[site] & 1 != to {
                        continue; // transition not launched by this pair
                    }
                    let (func_mask, chk_mask) =
                        plan.detect_observed(c, g_capture, scratch, eq, &observers);
                    let func_hit = func_mask & 1 != 0;
                    let chk_hit = chk_mask & 1 != 0;
                    if func_hit {
                        *corrupts = true;
                        if !chk_hit {
                            *undetected = true;
                        }
                    }
                    if chk_hit {
                        *alarms = true;
                    }
                }
            }
            flags
                .iter()
                .map(
                    |&(corrupts, undetected, alarms)| match (corrupts, undetected, alarms) {
                        (true, true, _) => FaultClass::Residual,
                        (true, false, _) => FaultClass::Detected,
                        (false, _, true) => FaultClass::Latent,
                        (false, _, false) => FaultClass::Safe,
                    },
                )
                .collect()
        },
    );
    let mut stats = CampaignStats::from_run(faults.len(), &run);
    for _ in &pairs {
        stats.record_lanes(1, 64); // pairwise launch: one live lane per word
    }
    let report = TransitionClassification {
        faults: faults.to_vec(),
        classes: run.results,
    };
    stats.tally.masked = report.count(FaultClass::Safe);
    stats.tally.detected = report.count(FaultClass::Detected);
    stats.tally.latent = report.count(FaultClass::Latent);
    stats.tally.undetected = report.count(FaultClass::Residual);
    TransitionRun { report, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duplication::duplicate_with_comparator;
    use rescue_faults::universe;
    use rescue_netlist::generate;

    fn walking_patterns(n: usize) -> Vec<Vec<bool>> {
        // Pairs launching plenty of transitions: alternating all-0/all-1
        // plus walking ones.
        let mut v = vec![vec![false; n], vec![true; n]];
        for i in 0..n {
            let mut p = vec![false; n];
            p[i] = true;
            v.push(p);
            v.push(vec![false; n]);
        }
        v
    }

    #[test]
    fn unprotected_design_has_residual_transitions() {
        let net = generate::adder(3);
        let faults = universe::transition_universe(&net);
        let functional: Vec<String> = net
            .primary_outputs()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let r = classify_transitions(&net, &faults, &functional, &[], &walking_patterns(7));
        assert!(r.fraction(FaultClass::Residual) > 0.5, "{:?}", r.classes());
        assert_eq!(r.count(FaultClass::Detected), 0);
    }

    #[test]
    fn duplication_detects_transition_faults_too() {
        let inner = generate::adder(2);
        let p = duplicate_with_comparator(&inner);
        let faults = universe::transition_universe(&p.netlist);
        let r = classify_transitions(
            &p.netlist,
            &faults,
            &p.functional_outputs,
            &p.checker_outputs,
            &walking_patterns(p.netlist.primary_inputs().len()),
        );
        // Only shared-input transitions can be residual.
        use rescue_netlist::GateKind;
        for (f, c) in r.faults().iter().zip(r.classes()) {
            if *c == FaultClass::Residual {
                assert_eq!(
                    p.netlist.gate(f.site().gate()).kind(),
                    GateKind::Input,
                    "{f} residual outside the shared inputs"
                );
            }
        }
        assert!(r.count(FaultClass::Detected) > 0);
    }

    #[test]
    fn transition_verdicts_stable_across_worker_counts() {
        let inner = generate::adder(2);
        let p = duplicate_with_comparator(&inner);
        let faults = universe::transition_universe(&p.netlist);
        let pats = walking_patterns(p.netlist.primary_inputs().len());
        let serial = classify_transitions(
            &p.netlist,
            &faults,
            &p.functional_outputs,
            &p.checker_outputs,
            &pats,
        );
        for workers in [2usize, 5] {
            let run = classify_transitions_with_stats(
                &p.netlist,
                &faults,
                &p.functional_outputs,
                &p.checker_outputs,
                &pats,
                &Campaign::new(0, workers),
            );
            assert_eq!(run.report, serial, "workers = {workers}");
            assert_eq!(run.stats.injections, faults.len());
        }
    }

    #[test]
    fn unlaunched_faults_are_safe() {
        let net = generate::adder(3);
        let faults = universe::transition_universe(&net);
        // A constant stimulus launches no transitions at all.
        let r = classify_transitions(
            &net,
            &faults,
            &net.primary_outputs()
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
            &[],
            &[vec![false; 7], vec![false; 7]],
        );
        assert_eq!(r.count(FaultClass::Safe), faults.len());
    }
}
