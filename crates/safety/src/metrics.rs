//! ISO 26262 hardware architectural metrics: SPFM, LFM, PMHF.

use crate::classify::{ClassificationReport, FaultClass};
use rescue_radiation::Fit;
use std::fmt;

/// ASIL targets for the architectural metrics (ISO 26262-5 Table 4/5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsilTarget {
    /// ASIL B: SPFM ≥ 90 %, LFM ≥ 60 %, PMHF < 100 FIT.
    B,
    /// ASIL C: SPFM ≥ 97 %, LFM ≥ 80 %, PMHF < 100 FIT.
    C,
    /// ASIL D: SPFM ≥ 99 %, LFM ≥ 90 %, PMHF < 10 FIT.
    D,
}

impl AsilTarget {
    /// Required single-point-fault metric.
    pub fn spfm_target(self) -> f64 {
        match self {
            AsilTarget::B => 0.90,
            AsilTarget::C => 0.97,
            AsilTarget::D => 0.99,
        }
    }

    /// Required latent-fault metric.
    pub fn lfm_target(self) -> f64 {
        match self {
            AsilTarget::B => 0.60,
            AsilTarget::C => 0.80,
            AsilTarget::D => 0.90,
        }
    }

    /// Probabilistic metric for random hardware failures budget.
    pub fn pmhf_target(self) -> Fit {
        match self {
            AsilTarget::B | AsilTarget::C => Fit::new(100.0),
            AsilTarget::D => Fit::new(10.0),
        }
    }
}

/// Computed architectural metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafetyMetrics {
    /// Single-point-fault metric in `[0, 1]`.
    pub spfm: f64,
    /// Latent-fault metric in `[0, 1]`.
    pub lfm: f64,
    /// Probabilistic metric for random hardware failures.
    pub pmhf: Fit,
}

impl SafetyMetrics {
    /// Computes the metrics from a fault classification, assuming a
    /// uniform raw failure rate `total_rate` spread over the fault
    /// population (each fault carries `total_rate / n`).
    ///
    /// * `SPFM = 1 - λ_residual / λ_safety_related`
    /// * `LFM  = 1 - λ_latent / (λ_safety_related - λ_residual)`
    /// * `PMHF = λ_residual (+ a latent second-order term, neglected)`
    ///
    /// Safety-related faults here are all non-safe faults.
    pub fn from_classification(report: &ClassificationReport, total_rate: Fit) -> Self {
        let n = report.classes().len();
        if n == 0 {
            return SafetyMetrics {
                spfm: 1.0,
                lfm: 1.0,
                pmhf: Fit::new(0.0),
            };
        }
        let per_fault = total_rate.value() / n as f64;
        let residual = report.count(FaultClass::Residual) as f64 * per_fault;
        let latent = report.count(FaultClass::Latent) as f64 * per_fault;
        let detected = report.count(FaultClass::Detected) as f64 * per_fault;
        let safety_related = residual + latent + detected;
        let spfm = if safety_related > 0.0 {
            1.0 - residual / safety_related
        } else {
            1.0
        };
        let after_res = safety_related - residual;
        let lfm = if after_res > 0.0 {
            1.0 - latent / after_res
        } else {
            1.0
        };
        SafetyMetrics {
            spfm,
            lfm,
            pmhf: Fit::new(residual),
        }
    }

    /// Does this design meet the given ASIL?
    pub fn meets(&self, target: AsilTarget) -> bool {
        self.spfm >= target.spfm_target()
            && self.lfm >= target.lfm_target()
            && self.pmhf.value() <= target.pmhf_target().value()
    }
}

impl fmt::Display for SafetyMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPFM {:.2}% LFM {:.2}% PMHF {}",
            self.spfm * 100.0,
            self.lfm * 100.0,
            self.pmhf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::duplication::duplicate_with_comparator;
    use rescue_faults::universe;
    use rescue_netlist::generate;

    fn exhaustive(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn protected_beats_unprotected() {
        let inner = generate::adder(2);
        let functional: Vec<String> = inner
            .primary_outputs()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let rate = Fit::new(1000.0);

        let faults = universe::stuck_at_universe(&inner);
        let raw = classify(&inner, &faults, &functional, &[], &exhaustive(5));
        let m_raw = SafetyMetrics::from_classification(&raw, rate);

        let p = duplicate_with_comparator(&inner);
        let pf = universe::stuck_at_universe(&p.netlist);
        let prot = classify(
            &p.netlist,
            &pf,
            &p.functional_outputs,
            &p.checker_outputs,
            &exhaustive(5),
        );
        let m_prot = SafetyMetrics::from_classification(&prot, rate);

        assert!(m_prot.spfm > m_raw.spfm);
        assert!(m_prot.pmhf.value() < m_raw.pmhf.value());
        // Only the shared primary inputs remain residual.
        assert!(m_prot.spfm > 0.9, "{m_prot}");
    }

    #[test]
    fn asil_targets_ordered() {
        assert!(AsilTarget::D.spfm_target() > AsilTarget::B.spfm_target());
        assert!(AsilTarget::D.lfm_target() > AsilTarget::C.lfm_target());
        assert!(AsilTarget::D.pmhf_target().value() < AsilTarget::B.pmhf_target().value());
    }

    #[test]
    fn perfect_design_meets_d() {
        let m = SafetyMetrics {
            spfm: 1.0,
            lfm: 1.0,
            pmhf: Fit::new(1.0),
        };
        assert!(m.meets(AsilTarget::D));
        let bad = SafetyMetrics {
            spfm: 0.95,
            lfm: 1.0,
            pmhf: Fit::new(1.0),
        };
        assert!(!bad.meets(AsilTarget::D));
        assert!(bad.meets(AsilTarget::B));
    }

    #[test]
    fn display_format() {
        let m = SafetyMetrics {
            spfm: 0.991,
            lfm: 0.93,
            pmhf: Fit::new(3.5),
        };
        let s = m.to_string();
        assert!(s.contains("SPFM"));
        assert!(s.contains("3.500 FIT"));
    }
}
