//! ISO 26262 functional-safety analysis for RESCUE-rs.
//!
//! Implements paper Section III.D ("functional safety needs to become a
//! first-class citizen throughout the full design flow"):
//!
//! * [`mod@classify`] — fault classification against functional outputs and
//!   safety-mechanism (checker) outputs: safe / detected / residual /
//!   latent.
//! * [`metrics`] — SPFM, LFM and PMHF computation with ASIL targets.
//! * [`fmeca`] — failure-mode, effects and criticality analysis tables.
//! * [`pruning`] — formal fault-list optimization (cone-of-influence and
//!   constant propagation) before expensive FI campaigns (\[19\]).
//! * [`slicing`] — dynamic-slicing FI acceleration: skip faults outside
//!   the dynamically active logic per test (\[49\], \[51\]).
//! * [`confidence`] — the ATPG/FI/formal three-way cross-check used to
//!   "improve the confidence in fault analysis tools" (\[20\], \[48\],
//!   \[50\]).
//! * [`transition`] — the fault-model extension the paper lists as
//!   active research: ISO 26262 classification for transition-delay
//!   faults via launch/capture pattern pairs.
//!
//! # Examples
//!
//! Classify the faults of a duplicated-and-compared block:
//!
//! ```
//! use rescue_safety::classify::{classify, FaultClass};
//! use rescue_safety::duplication::duplicate_with_comparator;
//! use rescue_faults::universe;
//! use rescue_netlist::generate;
//!
//! let block = generate::adder(2);
//! let protected = duplicate_with_comparator(&block);
//! let faults = universe::stuck_at_universe(&protected.netlist);
//! let patterns: Vec<Vec<bool>> = (0..32u32)
//!     .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
//!     .collect();
//! let report = classify(
//!     &protected.netlist,
//!     &faults,
//!     &protected.functional_outputs,
//!     &protected.checker_outputs,
//!     &patterns,
//! );
//! // Duplication with comparison detects (almost) everything dangerous.
//! assert!(report.fraction(FaultClass::Residual) < 0.1);
//! ```

pub mod classify;
pub mod confidence;
pub mod duplication;
pub mod fmeca;
pub mod metrics;
pub mod pruning;
pub mod slicing;
pub mod transition;

pub use classify::{classify, ClassificationReport, FaultClass};
pub use metrics::{AsilTarget, SafetyMetrics};
