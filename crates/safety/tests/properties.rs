//! Property-based tests for the functional-safety analyses.

use proptest::prelude::*;
use rescue_faults::{simulate::FaultSimulator, universe};
use rescue_netlist::generate;
use rescue_safety::classify::{classify, FaultClass};
use rescue_safety::metrics::SafetyMetrics;
use rescue_safety::pruning::prune;
use rescue_safety::slicing::{dynamic_slice, sliced_campaign};

fn patterns(n_in: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1);
    (0..count)
        .map(|_| {
            (0..n_in)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Classification classes partition the fault list, and metrics stay
    /// within their definitional bounds.
    #[test]
    fn classification_partitions(seed in 1u64..200) {
        let net = generate::random_logic(6, 50, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let outs: Vec<String> = net.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let pats = patterns(6, 48, seed);
        let r = classify(&net, &faults, &outs, &[], &pats);
        let total = r.count(FaultClass::Safe)
            + r.count(FaultClass::Detected)
            + r.count(FaultClass::Residual)
            + r.count(FaultClass::Latent);
        prop_assert_eq!(total, faults.len());
        let m = SafetyMetrics::from_classification(&r, rescue_radiation::Fit::new(100.0));
        prop_assert!((0.0..=1.0).contains(&m.spfm));
        prop_assert!((0.0..=1.0).contains(&m.lfm));
        prop_assert!(m.pmhf.value() <= 100.0);
    }

    /// Without checkers there can be no Detected or Latent faults.
    #[test]
    fn no_checker_no_detection(seed in 1u64..200) {
        let net = generate::random_logic(6, 40, 2, seed);
        let faults = universe::stuck_at_universe(&net);
        let outs: Vec<String> = net.primary_outputs().iter().map(|(n, _)| n.clone()).collect();
        let r = classify(&net, &faults, &outs, &[], &patterns(6, 32, seed));
        prop_assert_eq!(r.count(FaultClass::Detected), 0);
        prop_assert_eq!(r.count(FaultClass::Latent), 0);
    }

    /// Pruned faults never corrupt a safety output under any stimulus
    /// (checked exhaustively for small input counts).
    #[test]
    fn pruning_is_sound(seed in 1u64..100) {
        let net = generate::random_logic(6, 50, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let safety_out = vec![net.primary_outputs()[0].0.clone()];
        let report = prune(&net, &faults, &safety_out);
        let sim = FaultSimulator::new(&net);
        let exhaustive: Vec<Vec<bool>> = (0..64u32)
            .map(|p| (0..6).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let words = rescue_sim::parallel::pack_patterns(&exhaustive);
        let golden = sim.golden(&words);
        let driver = net.primary_outputs()[0].1;
        for f in report.pruned_coi.iter().chain(&report.pruned_constant) {
            let faulty = sim.with_stuck(&words, *f);
            prop_assert_eq!(
                golden[driver.index()], faulty[driver.index()],
                "pruned fault {} is not safe", f
            );
        }
    }

    /// Slicing equals naive campaigns and every slice contains all the
    /// primary outputs' drivers.
    #[test]
    fn slicing_equivalence(seed in 1u64..60) {
        let net = generate::random_logic(6, 40, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let pats = patterns(6, 32, seed);
        let sliced = sliced_campaign(&net, &faults, &pats);
        let naive = FaultSimulator::new(&net).campaign(&net, &faults, &pats);
        prop_assert_eq!(sliced.report.first_detection(), naive.first_detection());
        for p in &pats {
            let slice = dynamic_slice(&net, p);
            for (_, out) in net.primary_outputs() {
                prop_assert!(slice.contains(out));
            }
        }
    }
}
