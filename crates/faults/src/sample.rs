//! Statistical fault-injection sampling theory.
//!
//! Exhaustive fault injection is "ultimate in terms of accuracy but very
//! cumbersome" (paper Section III.B); the statistical alternative injects
//! a random sample sized so the measured failure probability carries a
//! bounded error at a given confidence. The classic formula (Leveugle et
//! al., DATE 2009) for sampling without replacement from a population of
//! `N` faults is
//!
//! ```text
//! n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))
//! ```
//!
//! with error margin `e`, confidence z-score `t` and estimated failure
//! probability `p` (worst case `p = 0.5`).

use crate::error::FaultError;

/// Supported confidence levels and their two-sided normal z-scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// 90 % confidence (z = 1.645).
    C90,
    /// 95 % confidence (z = 1.960).
    C95,
    /// 99 % confidence (z = 2.576).
    C99,
    /// 99.8 % confidence (z = 3.090).
    C998,
}

impl Confidence {
    /// The z-score of this confidence level.
    pub fn z_score(self) -> f64 {
        match self {
            Confidence::C90 => 1.645,
            Confidence::C95 => 1.960,
            Confidence::C99 => 2.576,
            Confidence::C998 => 3.090,
        }
    }

    /// Confidence as a fraction (e.g. `0.95`).
    pub fn level(self) -> f64 {
        match self {
            Confidence::C90 => 0.90,
            Confidence::C95 => 0.95,
            Confidence::C99 => 0.99,
            Confidence::C998 => 0.998,
        }
    }
}

/// Computes the required sample size for a fault population of
/// `population` faults, an `error_margin` (absolute, e.g. `0.01`), a
/// `confidence` level, and an a-priori failure probability estimate `p`
/// (use `0.5` when unknown — it maximizes the sample).
///
/// # Errors
///
/// Returns [`FaultError::BadSamplingParameter`] when `error_margin` or `p`
/// lies outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use rescue_faults::sample::{sample_size, Confidence};
///
/// // One million faults, 1% margin, 95% confidence:
/// let n = sample_size(1_000_000, 0.01, Confidence::C95, 0.5)?;
/// assert!(n < 10_000, "sample is tiny compared to the population: {n}");
/// # Ok::<(), rescue_faults::FaultError>(())
/// ```
pub fn sample_size(
    population: usize,
    error_margin: f64,
    confidence: Confidence,
    p: f64,
) -> Result<usize, FaultError> {
    if !(error_margin > 0.0 && error_margin < 1.0) {
        return Err(FaultError::BadSamplingParameter {
            parameter: "error_margin",
            value: error_margin,
        });
    }
    if !(p > 0.0 && p < 1.0) {
        return Err(FaultError::BadSamplingParameter {
            parameter: "p",
            value: p,
        });
    }
    if population == 0 {
        return Ok(0);
    }
    let nf = population as f64;
    let t = confidence.z_score();
    let n = nf / (1.0 + error_margin * error_margin * (nf - 1.0) / (t * t * p * (1.0 - p)));
    Ok(n.ceil() as usize)
}

/// The achieved error margin when injecting `sample` faults out of
/// `population` at the given confidence and probability estimate.
///
/// Inverse of [`sample_size`]; returns `None` when `sample` is 0 or
/// larger than the population.
pub fn achieved_margin(
    population: usize,
    sample: usize,
    confidence: Confidence,
    p: f64,
) -> Option<f64> {
    if sample == 0 || sample > population || population == 0 {
        return None;
    }
    let nf = population as f64;
    let n = sample as f64;
    let t = confidence.z_score();
    // e = t * sqrt(p(1-p)/n * (N-n)/(N-1))
    let fpc = if population > 1 {
        (nf - n) / (nf - 1.0)
    } else {
        0.0
    };
    Some(t * (p * (1.0 - p) / n * fpc).sqrt())
}

/// Cost model for Experiment E3: relative simulation cost of exhaustive
/// versus sampled injection (`1.0` = exhaustive).
pub fn cost_ratio(population: usize, sample: usize) -> f64 {
    if population == 0 {
        return 0.0;
    }
    sample as f64 / population as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_known_values() {
        // Classic: N=1e6, e=1%, 95% -> ~9 508 (textbook value 9 513 ± rounding).
        let n = sample_size(1_000_000, 0.01, Confidence::C95, 0.5).unwrap();
        assert!((9_400..9_700).contains(&n), "{n}");
        // Tighter margin -> larger sample.
        let n2 = sample_size(1_000_000, 0.001, Confidence::C95, 0.5).unwrap();
        assert!(n2 > 10 * n);
    }

    #[test]
    fn sample_never_exceeds_population() {
        for pop in [1usize, 10, 100, 1000] {
            let n = sample_size(pop, 0.01, Confidence::C99, 0.5).unwrap();
            assert!(n <= pop, "{n} > {pop}");
        }
    }

    #[test]
    fn higher_confidence_needs_more_samples() {
        let n90 = sample_size(100_000, 0.01, Confidence::C90, 0.5).unwrap();
        let n95 = sample_size(100_000, 0.01, Confidence::C95, 0.5).unwrap();
        let n99 = sample_size(100_000, 0.01, Confidence::C99, 0.5).unwrap();
        assert!(n90 < n95 && n95 < n99);
    }

    #[test]
    fn margin_round_trip() {
        let pop = 500_000;
        let n = sample_size(pop, 0.02, Confidence::C95, 0.5).unwrap();
        let e = achieved_margin(pop, n, Confidence::C95, 0.5).unwrap();
        assert!(e <= 0.02 + 1e-9, "achieved {e}");
        assert!(e > 0.015, "not absurdly conservative: {e}");
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(sample_size(100, 0.0, Confidence::C95, 0.5).is_err());
        assert!(sample_size(100, 1.5, Confidence::C95, 0.5).is_err());
        assert!(sample_size(100, 0.1, Confidence::C95, 0.0).is_err());
        assert_eq!(sample_size(0, 0.1, Confidence::C95, 0.5).unwrap(), 0);
        assert!(achieved_margin(100, 0, Confidence::C95, 0.5).is_none());
        assert!(achieved_margin(100, 200, Confidence::C95, 0.5).is_none());
    }

    #[test]
    fn cost_ratio_sane() {
        assert_eq!(cost_ratio(1000, 100), 0.1);
        assert_eq!(cost_ratio(0, 0), 0.0);
    }

    #[test]
    fn z_scores_ordered() {
        assert!(Confidence::C90.z_score() < Confidence::C998.z_score());
        assert!(Confidence::C95.level() > Confidence::C90.level());
    }
}
