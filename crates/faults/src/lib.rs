//! Fault models and fault simulation for RESCUE-rs.
//!
//! Implements the permanent-fault side of the RESCUE toolflow:
//!
//! * [`model`] — stuck-at, transition-delay and bridging fault models over
//!   gate pins and outputs.
//! * [`universe`] — exhaustive fault-list generation.
//! * [`content`] — canonical byte-stable content hashing of campaigns
//!   (netlist, universe, options, patterns), the keys durable campaigns
//!   are cached under.
//! * [`collapse`] — structural equivalence collapsing.
//! * [`simulate`] — serial and 64-way parallel-pattern fault simulation
//!   with fault dropping, for both combinational and sequential designs.
//! * [`engine`] — the incremental single-fault-propagation core: memoized
//!   fanout cones, event-horizon early exit, touched-list undo.
//! * [`trace`] — critical-path tracing: per-net observability words by
//!   backward sensitization over fanout-free regions, with the exact
//!   event-driven walk kept as the reconvergent-stem fallback.
//! * [`mod@reference`] — the full-resimulation oracle the fast engine is
//!   property-tested against.
//! * [`sample`] — statistical fault-injection sampling theory: how many
//!   faults must be injected for a given error margin and confidence
//!   (the "random fault injection" methodology of paper Section III.B).
//! * [`dictionary`] — fault dictionaries and syndrome-based diagnosis.
//!
//! # Examples
//!
//! Compute stuck-at coverage of random patterns on `c17`:
//!
//! ```
//! use rescue_faults::{simulate::FaultSimulator, universe};
//! use rescue_netlist::generate;
//!
//! let c = generate::c17();
//! let faults = universe::stuck_at_universe(&c);
//! let sim = FaultSimulator::new(&c);
//! let patterns: Vec<Vec<bool>> = (0..32u32)
//!     .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
//!     .collect();
//! let report = sim.campaign(&c, &faults, &patterns);
//! assert!(report.coverage() > 0.9, "c17 is fully testable");
//! ```

pub mod collapse;
pub mod content;
pub mod dictionary;
pub mod engine;
pub mod error;
pub mod model;
pub mod reference;
pub mod sample;
pub mod simulate;
pub mod trace;
pub mod universe;

pub use error::FaultError;
pub use model::{Fault, FaultId, FaultKind, FaultSite};
pub use simulate::{CampaignReport, CampaignRun, FaultSimulator};
