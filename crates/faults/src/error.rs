//! Error type for fault-list and campaign operations.

use std::error::Error;
use std::fmt;

/// Errors produced by fault-list generation and campaigns.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A pattern has the wrong input width.
    PatternWidthMismatch {
        /// Width the netlist expects.
        expected: usize,
        /// Width supplied.
        found: usize,
    },
    /// A sampling parameter is out of range.
    BadSamplingParameter {
        /// Which parameter (e.g. `"error_margin"`).
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault site was queried against a [`crate::engine::CampaignPlan`]
    /// that never memoized its cone (the fault was not in the list the
    /// plan was built from).
    UnplannedSite {
        /// Gate index of the offending fault site.
        gate: usize,
    },
    /// A campaign plan's cone CSR outgrew its `u32` offset arena. The
    /// plan fails loudly instead of silently truncating offsets.
    PlanTooLarge {
        /// Total cone entries the plan would need.
        entries: usize,
        /// The maximum entries the `u32` offsets can address.
        limit: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::PatternWidthMismatch { expected, found } => {
                write!(f, "pattern width {found} does not match {expected} inputs")
            }
            FaultError::BadSamplingParameter { parameter, value } => {
                write!(f, "sampling parameter `{parameter}` out of range: {value}")
            }
            FaultError::UnplannedSite { gate } => {
                write!(
                    f,
                    "fault site at gate {gate} has no memoized cone in this campaign plan"
                )
            }
            FaultError::PlanTooLarge { entries, limit } => {
                write!(
                    f,
                    "campaign plan needs {entries} cone entries, exceeding the u32 offset limit of {limit}"
                )
            }
        }
    }
}

impl Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_trait() {
        let e = FaultError::BadSamplingParameter {
            parameter: "error_margin",
            value: 2.0,
        };
        assert!(e.to_string().contains("error_margin"));
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FaultError>();
    }
}
