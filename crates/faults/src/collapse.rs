//! Structural fault collapsing (equivalence rules).
//!
//! Classic gate-local equivalences shrink the stuck-at universe by
//! 40–60 % before simulation — directly reducing campaign cost, which is
//! the motivation the paper gives for smarter fault-list handling
//! (Sections III.A and III.D).
//!
//! Rules implemented (all textbook):
//!
//! * AND: any input `sa0` ≡ output `sa0`; NAND: input `sa0` ≡ output `sa1`.
//! * OR: any input `sa1` ≡ output `sa1`; NOR: input `sa1` ≡ output `sa0`.
//! * BUF: input faults ≡ output faults (we model via driver's output).
//! * NOT: driver output `sa0` ≡ inverter output `sa1` and vice versa when
//!   the inverter is the only load (single-fanout wire equivalence).

use crate::model::{Fault, FaultKind, FaultSite};
use rescue_netlist::{GateId, GateKind, Netlist};
use rescue_telemetry::span;

/// Result of collapsing: representative faults plus a map from every
/// original fault to its representative.
///
/// The map is a dense slot arena instead of a `HashMap<Fault, Fault>`:
/// every possible fault of the design gets a fixed `u32` slot (output
/// slots first, then one slot per gate-input pin, times the four fault
/// kinds), and `rep[slot]` holds the representative's slot or `u32::MAX`
/// for uncollapsed faults. At a million gates this turns the dominant
/// setup cost — millions of SipHash probes — into two array reads per
/// lookup, and the arena is contiguous for the cache.
#[derive(Debug, Clone)]
pub struct CollapsedUniverse {
    representatives: Vec<Fault>,
    /// `rep[slot(fault)]` = representative's slot, `u32::MAX` when the
    /// fault is its own representative (or was never collapsed).
    rep: Vec<u32>,
    /// Pin-slot CSR: `pin_base[g]` is the first pin slot of gate `g`.
    pin_base: Vec<u32>,
    /// Owning gate of each pin slot (inverse of `pin_base`), for O(1)
    /// slot→fault decoding.
    pin_owner: Vec<u32>,
    /// Gate count of the design the universe was collapsed against.
    n: usize,
    original_len: usize,
}

#[inline]
fn kind_code(kind: FaultKind) -> usize {
    match kind {
        FaultKind::StuckAt0 => 0,
        FaultKind::StuckAt1 => 1,
        FaultKind::SlowToRise => 2,
        FaultKind::SlowToFall => 3,
    }
}

#[inline]
fn kind_decode(code: usize) -> FaultKind {
    match code {
        0 => FaultKind::StuckAt0,
        1 => FaultKind::StuckAt1,
        2 => FaultKind::SlowToRise,
        _ => FaultKind::SlowToFall,
    }
}

/// Slot of an *output* fault (reps produced by the rules are always
/// output faults, so this is the only encoder workers need).
#[inline]
fn output_slot(gate: usize, kind: FaultKind) -> u32 {
    (4 * gate + kind_code(kind)) as u32
}

impl CollapsedUniverse {
    /// The representative (collapsed) fault list.
    pub fn representatives(&self) -> &[Fault] {
        &self.representatives
    }

    /// The representative of `fault` (itself if it was not collapsed).
    pub fn representative(&self, fault: Fault) -> Fault {
        match self.slot_of(fault) {
            Some(slot) => match self.rep[slot] {
                u32::MAX => fault,
                r => self.fault_of(r),
            },
            None => fault,
        }
    }

    /// Size of the original universe.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Collapse ratio `collapsed / original` (lower is better).
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 1.0;
        }
        self.representatives.len() as f64 / self.original_len as f64
    }

    /// Dense slot of `fault`, or `None` for faults outside the design
    /// (wrong gate index or pin arity) — those are never collapsed.
    #[inline]
    fn slot_of(&self, fault: Fault) -> Option<usize> {
        let k = kind_code(fault.kind());
        match fault.site() {
            FaultSite::Output(g) => {
                let gi = g.index();
                (gi < self.n).then_some(4 * gi + k)
            }
            FaultSite::Pin { gate, pin } => {
                let gi = gate.index();
                if gi >= self.n {
                    return None;
                }
                let base = self.pin_base[gi] as usize;
                let arity = self.pin_base[gi + 1] as usize - base;
                (pin < arity).then_some(4 * (self.n + base + pin) + k)
            }
        }
    }

    /// Inverse of [`CollapsedUniverse::slot_of`].
    #[inline]
    fn fault_of(&self, slot: u32) -> Fault {
        let s = slot as usize;
        let kind = kind_decode(s & 3);
        let x = s >> 2;
        if x < self.n {
            Fault::new(FaultSite::Output(GateId(x)), kind)
        } else {
            let pidx = x - self.n;
            let gate = self.pin_owner[pidx] as usize;
            let pin = pidx - self.pin_base[gate] as usize;
            Fault::new(
                FaultSite::Pin {
                    gate: GateId(gate),
                    pin,
                },
                kind,
            )
        }
    }
}

/// Serial fallback below this many faults: thread setup costs more than
/// the rule pass itself on small universes.
const PARALLEL_COLLAPSE_MIN: usize = 1 << 14;

/// Controlling-value input faults fold into the output fault.
#[inline]
fn controlling_fold(gate: GateKind, v: FaultKind) -> Option<FaultKind> {
    match (gate, v) {
        (GateKind::And, FaultKind::StuckAt0) => Some(FaultKind::StuckAt0),
        (GateKind::Nand, FaultKind::StuckAt0) => Some(FaultKind::StuckAt1),
        (GateKind::Or, FaultKind::StuckAt1) => Some(FaultKind::StuckAt1),
        (GateKind::Nor, FaultKind::StuckAt1) => Some(FaultKind::StuckAt0),
        _ => None,
    }
}

/// How a driver-output stuck value folds *through* its single load onto
/// the load's output: controlling values on AND/NAND/OR/NOR, any stuck
/// value through BUF, inverted through NOT.
#[inline]
fn through_fold(gate: GateKind, v: FaultKind) -> Option<FaultKind> {
    controlling_fold(gate, v).or(match (gate, v) {
        (GateKind::Buf, FaultKind::StuckAt0 | FaultKind::StuckAt1) => Some(v),
        (GateKind::Not, FaultKind::StuckAt0) => Some(FaultKind::StuckAt1),
        (GateKind::Not, FaultKind::StuckAt1) => Some(FaultKind::StuckAt0),
        _ => None,
    })
}

/// Dense structural metadata the equivalence rules consult, built in one
/// O(V+E) pass (no per-gate `Vec` fanout lists).
struct WireMeta<'a> {
    /// Pin-slot CSR (length `n + 1`).
    pin_base: &'a [u32],
    /// Number of load *pins* each gate output drives (DFF D-pins count,
    /// matching the per-pin-edge semantics of `Netlist::fanout`).
    fan_count: &'a [u32],
    /// The consuming gate — only meaningful where `fan_count == 1`.
    single_load: &'a [u32],
    /// Wire equivalences are only exact when the driver's value is seen
    /// nowhere but on that wire: a PO driver is observed directly, so its
    /// output fault is NOT equivalent to a fault past the wire.
    is_po_driver: &'a [bool],
}

/// Applies the gate-local rules to one fault, returning
/// `(slot, representative slot)` when it collapses. Pure per-fault, so
/// fault chunks shard across workers with no coordination.
fn collapse_pair(netlist: &Netlist, m: &WireMeta<'_>, fault: Fault) -> Option<(u32, u32)> {
    let n = m.pin_base.len() - 1;
    let kind = fault.kind();
    match fault.site() {
        FaultSite::Pin { gate, pin } => {
            let g = netlist.gate(gate);
            let gi = gate.index();
            let slot = (4 * (n + m.pin_base[gi] as usize + pin) + kind_code(kind)) as u32;
            if let Some(folded) = controlling_fold(g.kind(), kind) {
                return Some((slot, output_slot(gi, folded)));
            }
            // Single-fanout wire: a pin fault on the only load of a driver
            // is equivalent to the driver's output fault.
            let d = g.inputs()[pin].index();
            if m.fan_count[d] == 1 && !m.is_po_driver[d] {
                return Some((slot, output_slot(d, kind)));
            }
            None
        }
        FaultSite::Output(d) => {
            // Through-gate wire equivalence: when `d` drives exactly one
            // pin of one load (and no PO), a stuck value on `d` is
            // indistinguishable from the same stuck value on that pin —
            // and it folds on through to the load's output fault. The
            // chain-resolution pass below composes further.
            let di = d.index();
            if m.fan_count[di] != 1 || m.is_po_driver[di] {
                return None;
            }
            let h = m.single_load[di] as usize;
            through_fold(netlist.gate(GateId(h)).kind(), kind)
                .map(|folded| (output_slot(di, kind), output_slot(h, folded)))
        }
    }
}

/// Collapses a stuck-at universe using gate-local equivalence rules.
///
/// # Examples
///
/// ```
/// use rescue_faults::{collapse, universe};
/// use rescue_netlist::generate;
///
/// let c17 = generate::c17();
/// let all = universe::stuck_at_universe(&c17);
/// let collapsed = collapse::collapse(&c17, &all);
/// assert!(collapsed.ratio() < 0.8, "NAND-heavy c17 collapses well");
/// ```
pub fn collapse(netlist: &Netlist, faults: &[Fault]) -> CollapsedUniverse {
    collapse_with(netlist, faults, 1)
}

/// [`collapse`] with the rule pass sharded over `workers` OS threads.
///
/// The rules are gate-local, so fault chunks are independent; each worker
/// emits `(slot, representative)` pairs which are scattered serially in
/// chunk order — identical to serial insertion order — before the chain
/// fixpoint runs. The result is bit-identical to `workers = 1` for any
/// worker count. Small universes fall back to the serial path.
pub fn collapse_with(netlist: &Netlist, faults: &[Fault], workers: usize) -> CollapsedUniverse {
    let _span = span!("plan.collapse", faults = faults.len());
    let n = netlist.len();
    let mut pin_base = vec![0u32; n + 1];
    for (id, g) in netlist.iter() {
        pin_base[id.index() + 1] = g.inputs().len() as u32;
    }
    for i in 0..n {
        pin_base[i + 1] += pin_base[i];
    }
    let total_pins = pin_base[n] as usize;
    let mut pin_owner = vec![0u32; total_pins];
    let mut fan_count = vec![0u32; n];
    let mut single_load = vec![u32::MAX; n];
    for (id, g) in netlist.iter() {
        let base = pin_base[id.index()] as usize;
        for (pin, d) in g.inputs().iter().enumerate() {
            pin_owner[base + pin] = id.index() as u32;
            fan_count[d.index()] += 1;
            single_load[d.index()] = id.index() as u32;
        }
    }
    let mut is_po_driver = vec![false; n];
    for &(_, g) in netlist.primary_outputs() {
        is_po_driver[g.index()] = true;
    }
    let meta = WireMeta {
        pin_base: &pin_base,
        fan_count: &fan_count,
        single_load: &single_load,
        is_po_driver: &is_po_driver,
    };

    let w = workers.clamp(1, faults.len().max(1));
    let pair_chunks: Vec<Vec<(u32, u32)>> = if w == 1 || faults.len() < PARALLEL_COLLAPSE_MIN {
        vec![faults
            .iter()
            .filter_map(|&f| collapse_pair(netlist, &meta, f))
            .collect()]
    } else {
        let chunk_len = faults.len().div_ceil(w).max(1);
        std::thread::scope(|s| {
            let handles: Vec<_> = faults
                .chunks(chunk_len)
                .map(|chunk| {
                    let meta = &meta;
                    s.spawn(move || {
                        chunk
                            .iter()
                            .filter_map(|&f| collapse_pair(netlist, meta, f))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };

    // Scatter in chunk order == fault order, so duplicate faults resolve
    // exactly as serial insertion did (last write wins).
    let mut rep = vec![u32::MAX; 4 * (n + total_pins)];
    for chunk in &pair_chunks {
        for &(slot, r) in chunk {
            rep[slot as usize] = r;
        }
    }
    // Resolve chains (pin -> output -> ...) — one level is enough here but
    // iterate to a fixpoint for safety. Writing the resolved slot back
    // path-compresses later chases.
    for i in 0..rep.len() {
        let mut r = rep[i];
        if r == u32::MAX {
            continue;
        }
        loop {
            let next = rep[r as usize];
            if next == u32::MAX || next == r {
                break;
            }
            r = next;
        }
        rep[i] = r;
    }

    let mut universe = CollapsedUniverse {
        representatives: Vec::new(),
        rep,
        pin_base,
        pin_owner,
        n,
        original_len: faults.len(),
    };
    let mut representatives: Vec<Fault> = faults
        .iter()
        .copied()
        .filter(|&f| {
            universe
                .slot_of(f)
                .is_none_or(|s| universe.rep[s] == u32::MAX)
        })
        .collect();
    representatives.sort();
    representatives.dedup();
    universe.representatives = representatives;
    universe
}

/// Dominance collapsing on top of equivalence collapsing.
///
/// A fault `f` *dominates* `g` when every test for `g` also detects `f`;
/// `f` can then be dropped from a test-generation fault list (textbook
/// rules: an AND gate's output `sa1` dominates each input `sa1`, dual
/// for OR/NAND/NOR). The result is a smaller target list with the same
/// test-set guarantee — reported coverage over it is a lower bound.
///
/// # Examples
///
/// ```
/// use rescue_faults::{collapse, universe};
/// use rescue_netlist::generate;
///
/// let c17 = generate::c17();
/// let all = universe::stuck_at_universe(&c17);
/// let equiv = collapse::collapse(&c17, &all);
/// let dom = collapse::dominance_collapse(&c17, equiv.representatives());
/// assert!(dom.len() < equiv.representatives().len());
/// ```
pub fn dominance_collapse(netlist: &Netlist, faults: &[Fault]) -> Vec<Fault> {
    use std::collections::HashSet;
    let present: HashSet<Fault> = faults.iter().copied().collect();
    let mut dropped: HashSet<Fault> = HashSet::new();
    for (id, g) in netlist.iter() {
        // The dominating output fault may be dropped when at least one
        // dominated input-pin fault remains in the list.
        let (out_kind, in_kind) = match g.kind() {
            GateKind::And => (FaultKind::StuckAt1, FaultKind::StuckAt1),
            GateKind::Nand => (FaultKind::StuckAt0, FaultKind::StuckAt1),
            GateKind::Or => (FaultKind::StuckAt0, FaultKind::StuckAt0),
            GateKind::Nor => (FaultKind::StuckAt1, FaultKind::StuckAt0),
            _ => continue,
        };
        let out_fault = Fault::new(FaultSite::Output(id), out_kind);
        if !present.contains(&out_fault) {
            continue;
        }
        let has_dominated_input = (0..g.inputs().len()).any(|pin| {
            let f = Fault::new(FaultSite::Pin { gate: id, pin }, in_kind);
            present.contains(&f) && !dropped.contains(&f)
        });
        if has_dominated_input {
            dropped.insert(out_fault);
        }
    }
    faults
        .iter()
        .copied()
        .filter(|f| !dropped.contains(f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn dominance_preserves_test_guarantee() {
        // Any pattern set with 100% coverage of the dominance-collapsed
        // list also has 100% coverage of the faults it dropped.
        use crate::simulate::FaultSimulator;
        let net = generate::c17();
        let all = universe::stuck_at_universe(&net);
        let equiv = collapse(&net, &all);
        let dom = dominance_collapse(&net, equiv.representatives());
        assert!(dom.len() < equiv.representatives().len());
        let dropped: Vec<Fault> = equiv
            .representatives()
            .iter()
            .copied()
            .filter(|f| !dom.contains(f))
            .collect();
        assert!(!dropped.is_empty());
        // Exhaustive patterns detect everything; check the implication
        // per-pattern-prefix: find a minimal set covering `dom`, verify
        // it covers `dropped` too.
        let sim = FaultSimulator::new(&net);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let dom_report = sim.campaign(&net, &dom, &patterns);
        // Keep only patterns that were first-detectors for dom faults.
        let used: std::collections::BTreeSet<usize> = dom_report
            .first_detection()
            .iter()
            .flatten()
            .copied()
            .collect();
        let subset: Vec<Vec<bool>> = used.iter().map(|&i| patterns[i].clone()).collect();
        assert_eq!(sim.campaign(&net, &dom, &subset).coverage(), 1.0);
        assert_eq!(
            sim.campaign(&net, &dropped, &subset).coverage(),
            1.0,
            "a test set complete for the collapsed list missed a dropped fault"
        );
    }

    #[test]
    fn and_gate_collapse() {
        let mut b = NetlistBuilder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(x, y);
        b.output("z", g);
        let n = b.finish();
        let all = universe::stuck_at_universe(&n);
        let c = collapse(&n, &all);
        // in0/sa0 and in1/sa0 fold into out/sa0.
        let pin0_sa0 = Fault::stuck_at(FaultSite::Pin { gate: g, pin: 0 }, false);
        assert_eq!(
            c.representative(pin0_sa0),
            Fault::stuck_at(FaultSite::Output(g), false)
        );
        assert!(c.representatives().len() < all.len());
    }

    #[test]
    fn collapse_preserves_detectability() {
        // Every collapsed-away fault must be detected by exactly the same
        // patterns as its representative.
        use crate::simulate::FaultSimulator;
        use rescue_sim::parallel::pack_patterns;
        let c17 = generate::c17();
        let all = universe::stuck_at_universe(&c17);
        let coll = collapse(&c17, &all);
        let sim = FaultSimulator::new(&c17);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let words = pack_patterns(&patterns[..32]);
        let golden = sim.golden(&words);
        for &f in &all {
            let rep = coll.representative(f);
            if rep == f {
                continue;
            }
            let m1 = sim.detection_mask(&c17, &words, &golden, f);
            let m2 = sim.detection_mask(&c17, &words, &golden, rep);
            assert_eq!(m1, m2, "fault {f} vs representative {rep}");
        }
    }

    #[test]
    fn ratio_bounds() {
        let c17 = generate::c17();
        let all = universe::stuck_at_universe(&c17);
        let c = collapse(&c17, &all);
        assert!(c.ratio() > 0.0 && c.ratio() <= 1.0);
        assert_eq!(c.original_len(), all.len());
    }

    #[test]
    fn empty_universe() {
        let c17 = generate::c17();
        let c = collapse(&c17, &[]);
        assert_eq!(c.ratio(), 1.0);
        assert!(c.representatives().is_empty());
    }
}
