//! Structural fault collapsing (equivalence rules).
//!
//! Classic gate-local equivalences shrink the stuck-at universe by
//! 40–60 % before simulation — directly reducing campaign cost, which is
//! the motivation the paper gives for smarter fault-list handling
//! (Sections III.A and III.D).
//!
//! Rules implemented (all textbook):
//!
//! * AND: any input `sa0` ≡ output `sa0`; NAND: input `sa0` ≡ output `sa1`.
//! * OR: any input `sa1` ≡ output `sa1`; NOR: input `sa1` ≡ output `sa0`.
//! * BUF: input faults ≡ output faults (we model via driver's output).
//! * NOT: driver output `sa0` ≡ inverter output `sa1` and vice versa when
//!   the inverter is the only load (single-fanout wire equivalence).

use crate::model::{Fault, FaultKind, FaultSite};
use rescue_netlist::{GateKind, Netlist};
use std::collections::HashMap;

/// Result of collapsing: representative faults plus a map from every
/// original fault to its representative.
#[derive(Debug, Clone)]
pub struct CollapsedUniverse {
    representatives: Vec<Fault>,
    class_of: HashMap<Fault, Fault>,
    original_len: usize,
}

impl CollapsedUniverse {
    /// The representative (collapsed) fault list.
    pub fn representatives(&self) -> &[Fault] {
        &self.representatives
    }

    /// The representative of `fault` (itself if it was not collapsed).
    pub fn representative(&self, fault: Fault) -> Fault {
        self.class_of.get(&fault).copied().unwrap_or(fault)
    }

    /// Size of the original universe.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Collapse ratio `collapsed / original` (lower is better).
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 1.0;
        }
        self.representatives.len() as f64 / self.original_len as f64
    }
}

/// Collapses a stuck-at universe using gate-local equivalence rules.
///
/// # Examples
///
/// ```
/// use rescue_faults::{collapse, universe};
/// use rescue_netlist::generate;
///
/// let c17 = generate::c17();
/// let all = universe::stuck_at_universe(&c17);
/// let collapsed = collapse::collapse(&c17, &all);
/// assert!(collapsed.ratio() < 0.8, "NAND-heavy c17 collapses well");
/// ```
pub fn collapse(netlist: &Netlist, faults: &[Fault]) -> CollapsedUniverse {
    let mut class_of: HashMap<Fault, Fault> = HashMap::new();
    let fanout = netlist.fanout();
    // Wire equivalences are only exact when the driver's value is seen
    // nowhere but on that wire: a PO driver is observed directly, so its
    // output fault is NOT equivalent to a fault past the wire.
    let mut is_po_driver = vec![false; netlist.len()];
    for &(_, g) in netlist.primary_outputs() {
        is_po_driver[g.index()] = true;
    }

    for &fault in faults {
        let kind = fault.kind();
        if let FaultSite::Pin { gate, pin } = fault.site() {
            let g = netlist.gate(gate);
            let driver = g.inputs()[pin];
            let equiv = match (g.kind(), kind) {
                // Controlling-value input faults fold into the output.
                (GateKind::And, FaultKind::StuckAt0) => {
                    Some(Fault::new(FaultSite::Output(gate), FaultKind::StuckAt0))
                }
                (GateKind::Nand, FaultKind::StuckAt0) => {
                    Some(Fault::new(FaultSite::Output(gate), FaultKind::StuckAt1))
                }
                (GateKind::Or, FaultKind::StuckAt1) => {
                    Some(Fault::new(FaultSite::Output(gate), FaultKind::StuckAt1))
                }
                (GateKind::Nor, FaultKind::StuckAt1) => {
                    Some(Fault::new(FaultSite::Output(gate), FaultKind::StuckAt0))
                }
                _ => None,
            };
            if let Some(rep) = equiv {
                class_of.insert(fault, rep);
                continue;
            }
            // Single-fanout wire: a pin fault on the only load of a driver
            // is equivalent to the driver's output fault.
            if fanout[driver.index()].len() == 1 && !is_po_driver[driver.index()] {
                class_of.insert(fault, Fault::new(FaultSite::Output(driver), kind));
            }
        } else if let FaultSite::Output(d) = fault.site() {
            // Through-gate wire equivalence: when `d` drives exactly one
            // pin of one load (and no PO), a stuck value on `d` is
            // indistinguishable from the same stuck value on that pin —
            // and for a controlling value on AND/NAND/OR/NOR (or any
            // value on BUF/NOT) it folds on through to the load's output
            // fault. The chain-resolution pass below composes further.
            let loads = &fanout[d.index()];
            if loads.len() != 1 || is_po_driver[d.index()] {
                continue;
            }
            let h = loads[0];
            let rep = match (netlist.gate(h).kind(), kind) {
                (GateKind::And, FaultKind::StuckAt0) => {
                    Some(Fault::new(FaultSite::Output(h), FaultKind::StuckAt0))
                }
                (GateKind::Nand, FaultKind::StuckAt0) => {
                    Some(Fault::new(FaultSite::Output(h), FaultKind::StuckAt1))
                }
                (GateKind::Or, FaultKind::StuckAt1) => {
                    Some(Fault::new(FaultSite::Output(h), FaultKind::StuckAt1))
                }
                (GateKind::Nor, FaultKind::StuckAt1) => {
                    Some(Fault::new(FaultSite::Output(h), FaultKind::StuckAt0))
                }
                (GateKind::Buf, v @ (FaultKind::StuckAt0 | FaultKind::StuckAt1)) => {
                    Some(Fault::new(FaultSite::Output(h), v))
                }
                (GateKind::Not, FaultKind::StuckAt0) => {
                    Some(Fault::new(FaultSite::Output(h), FaultKind::StuckAt1))
                }
                (GateKind::Not, FaultKind::StuckAt1) => {
                    Some(Fault::new(FaultSite::Output(h), FaultKind::StuckAt0))
                }
                _ => None,
            };
            if let Some(rep) = rep {
                class_of.insert(fault, rep);
            }
        }
    }
    // Resolve chains (pin -> output -> ...) — one level is enough here but
    // iterate to a fixpoint for safety.
    let keys: Vec<Fault> = class_of.keys().copied().collect();
    for k in keys {
        let mut rep = class_of[&k];
        while let Some(&next) = class_of.get(&rep) {
            if next == rep {
                break;
            }
            rep = next;
        }
        class_of.insert(k, rep);
    }
    let mut representatives: Vec<Fault> = faults
        .iter()
        .copied()
        .filter(|f| !class_of.contains_key(f))
        .collect();
    representatives.sort();
    representatives.dedup();
    CollapsedUniverse {
        representatives,
        class_of,
        original_len: faults.len(),
    }
}

/// Dominance collapsing on top of equivalence collapsing.
///
/// A fault `f` *dominates* `g` when every test for `g` also detects `f`;
/// `f` can then be dropped from a test-generation fault list (textbook
/// rules: an AND gate's output `sa1` dominates each input `sa1`, dual
/// for OR/NAND/NOR). The result is a smaller target list with the same
/// test-set guarantee — reported coverage over it is a lower bound.
///
/// # Examples
///
/// ```
/// use rescue_faults::{collapse, universe};
/// use rescue_netlist::generate;
///
/// let c17 = generate::c17();
/// let all = universe::stuck_at_universe(&c17);
/// let equiv = collapse::collapse(&c17, &all);
/// let dom = collapse::dominance_collapse(&c17, equiv.representatives());
/// assert!(dom.len() < equiv.representatives().len());
/// ```
pub fn dominance_collapse(netlist: &Netlist, faults: &[Fault]) -> Vec<Fault> {
    use std::collections::HashSet;
    let present: HashSet<Fault> = faults.iter().copied().collect();
    let mut dropped: HashSet<Fault> = HashSet::new();
    for (id, g) in netlist.iter() {
        // The dominating output fault may be dropped when at least one
        // dominated input-pin fault remains in the list.
        let (out_kind, in_kind) = match g.kind() {
            GateKind::And => (FaultKind::StuckAt1, FaultKind::StuckAt1),
            GateKind::Nand => (FaultKind::StuckAt0, FaultKind::StuckAt1),
            GateKind::Or => (FaultKind::StuckAt0, FaultKind::StuckAt0),
            GateKind::Nor => (FaultKind::StuckAt1, FaultKind::StuckAt0),
            _ => continue,
        };
        let out_fault = Fault::new(FaultSite::Output(id), out_kind);
        if !present.contains(&out_fault) {
            continue;
        }
        let has_dominated_input = (0..g.inputs().len()).any(|pin| {
            let f = Fault::new(FaultSite::Pin { gate: id, pin }, in_kind);
            present.contains(&f) && !dropped.contains(&f)
        });
        if has_dominated_input {
            dropped.insert(out_fault);
        }
    }
    faults
        .iter()
        .copied()
        .filter(|f| !dropped.contains(f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn dominance_preserves_test_guarantee() {
        // Any pattern set with 100% coverage of the dominance-collapsed
        // list also has 100% coverage of the faults it dropped.
        use crate::simulate::FaultSimulator;
        let net = generate::c17();
        let all = universe::stuck_at_universe(&net);
        let equiv = collapse(&net, &all);
        let dom = dominance_collapse(&net, equiv.representatives());
        assert!(dom.len() < equiv.representatives().len());
        let dropped: Vec<Fault> = equiv
            .representatives()
            .iter()
            .copied()
            .filter(|f| !dom.contains(f))
            .collect();
        assert!(!dropped.is_empty());
        // Exhaustive patterns detect everything; check the implication
        // per-pattern-prefix: find a minimal set covering `dom`, verify
        // it covers `dropped` too.
        let sim = FaultSimulator::new(&net);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let dom_report = sim.campaign(&net, &dom, &patterns);
        // Keep only patterns that were first-detectors for dom faults.
        let used: std::collections::BTreeSet<usize> = dom_report
            .first_detection()
            .iter()
            .flatten()
            .copied()
            .collect();
        let subset: Vec<Vec<bool>> = used.iter().map(|&i| patterns[i].clone()).collect();
        assert_eq!(sim.campaign(&net, &dom, &subset).coverage(), 1.0);
        assert_eq!(
            sim.campaign(&net, &dropped, &subset).coverage(),
            1.0,
            "a test set complete for the collapsed list missed a dropped fault"
        );
    }

    #[test]
    fn and_gate_collapse() {
        let mut b = NetlistBuilder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(x, y);
        b.output("z", g);
        let n = b.finish();
        let all = universe::stuck_at_universe(&n);
        let c = collapse(&n, &all);
        // in0/sa0 and in1/sa0 fold into out/sa0.
        let pin0_sa0 = Fault::stuck_at(FaultSite::Pin { gate: g, pin: 0 }, false);
        assert_eq!(
            c.representative(pin0_sa0),
            Fault::stuck_at(FaultSite::Output(g), false)
        );
        assert!(c.representatives().len() < all.len());
    }

    #[test]
    fn collapse_preserves_detectability() {
        // Every collapsed-away fault must be detected by exactly the same
        // patterns as its representative.
        use crate::simulate::FaultSimulator;
        use rescue_sim::parallel::pack_patterns;
        let c17 = generate::c17();
        let all = universe::stuck_at_universe(&c17);
        let coll = collapse(&c17, &all);
        let sim = FaultSimulator::new(&c17);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let words = pack_patterns(&patterns[..32]);
        let golden = sim.golden(&words);
        for &f in &all {
            let rep = coll.representative(f);
            if rep == f {
                continue;
            }
            let m1 = sim.detection_mask(&c17, &words, &golden, f);
            let m2 = sim.detection_mask(&c17, &words, &golden, rep);
            assert_eq!(m1, m2, "fault {f} vs representative {rep}");
        }
    }

    #[test]
    fn ratio_bounds() {
        let c17 = generate::c17();
        let all = universe::stuck_at_universe(&c17);
        let c = collapse(&c17, &all);
        assert!(c.ratio() > 0.0 && c.ratio() <= 1.0);
        assert_eq!(c.original_len(), all.len());
    }

    #[test]
    fn empty_universe() {
        let c17 = generate::c17();
        let c = collapse(&c17, &[]);
        assert_eq!(c.ratio(), 1.0);
        assert!(c.representatives().is_empty());
    }
}
