//! Permanent fault models: stuck-at, transition-delay, bridging.

use rescue_netlist::GateId;
use std::fmt;

/// Dense index of a fault within a fault list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultId(pub usize);

impl FaultId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Where a fault sits: a gate output net or an individual input pin.
///
/// Pin faults matter because a fan-out stem and its branches can carry
/// different fault effects; collapsing (see [`crate::collapse`]) removes
/// the redundant ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The output net of a gate.
    Output(GateId),
    /// Input pin `pin` of `gate` (0-based).
    Pin {
        /// Gate owning the pin.
        gate: GateId,
        /// Pin position within the gate's input list.
        pin: usize,
    },
}

impl FaultSite {
    /// The gate this site belongs to.
    pub fn gate(self) -> GateId {
        match self {
            FaultSite::Output(g) => g,
            FaultSite::Pin { gate, .. } => gate,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Output(g) => write!(f, "{g}.out"),
            FaultSite::Pin { gate, pin } => write!(f, "{gate}.in{pin}"),
        }
    }
}

/// The fault behaviour at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Signal permanently reads 0.
    StuckAt0,
    /// Signal permanently reads 1.
    StuckAt1,
    /// Rising transitions arrive one cycle late (slow-to-rise).
    SlowToRise,
    /// Falling transitions arrive one cycle late (slow-to-fall).
    SlowToFall,
}

impl FaultKind {
    /// For stuck-at kinds, the stuck value; `None` for delay kinds.
    pub fn stuck_value(self) -> Option<bool> {
        match self {
            FaultKind::StuckAt0 => Some(false),
            FaultKind::StuckAt1 => Some(true),
            _ => None,
        }
    }

    /// Short mnemonic (`sa0`, `sa1`, `str`, `stf`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FaultKind::StuckAt0 => "sa0",
            FaultKind::StuckAt1 => "sa1",
            FaultKind::SlowToRise => "str",
            FaultKind::SlowToFall => "stf",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single permanent fault: a site plus a behaviour.
///
/// # Examples
///
/// ```
/// use rescue_faults::{Fault, FaultKind, FaultSite};
/// use rescue_netlist::GateId;
///
/// let f = Fault::stuck_at(FaultSite::Output(GateId(3)), true);
/// assert_eq!(f.kind(), FaultKind::StuckAt1);
/// assert_eq!(f.to_string(), "g3.out/sa1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    site: FaultSite,
    kind: FaultKind,
}

impl Fault {
    /// Creates a fault of arbitrary kind.
    pub fn new(site: FaultSite, kind: FaultKind) -> Self {
        Fault { site, kind }
    }

    /// Creates a stuck-at fault with the given stuck `value`.
    pub fn stuck_at(site: FaultSite, value: bool) -> Self {
        Fault {
            site,
            kind: if value {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
        }
    }

    /// The fault site.
    pub fn site(self) -> FaultSite {
        self.site
    }

    /// The fault behaviour.
    pub fn kind(self) -> FaultKind {
        self.kind
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.site, self.kind)
    }
}

/// A resistive bridge between two nets, modelled as wired-AND or wired-OR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BridgingFault {
    /// First bridged net (gate output).
    pub a: GateId,
    /// Second bridged net (gate output).
    pub b: GateId,
    /// Wired-AND (`true`) or wired-OR (`false`) resolution.
    pub wired_and: bool,
}

impl fmt::Display for BridgingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bridge({},{})/{}",
            self.a,
            self.b,
            if self.wired_and { "AND" } else { "OR" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let f = Fault::new(
            FaultSite::Pin {
                gate: GateId(2),
                pin: 1,
            },
            FaultKind::StuckAt0,
        );
        assert_eq!(f.to_string(), "g2.in1/sa0");
        assert_eq!(FaultId(4).to_string(), "f4");
        let b = BridgingFault {
            a: GateId(1),
            b: GateId(2),
            wired_and: true,
        };
        assert!(b.to_string().contains("AND"));
    }

    #[test]
    fn stuck_value() {
        assert_eq!(FaultKind::StuckAt0.stuck_value(), Some(false));
        assert_eq!(FaultKind::StuckAt1.stuck_value(), Some(true));
        assert_eq!(FaultKind::SlowToRise.stuck_value(), None);
    }

    #[test]
    fn site_gate() {
        assert_eq!(FaultSite::Output(GateId(7)).gate(), GateId(7));
        assert_eq!(
            FaultSite::Pin {
                gate: GateId(7),
                pin: 0
            }
            .gate(),
            GateId(7)
        );
    }
}
