//! Fault dictionaries and syndrome-based diagnosis.
//!
//! A fault dictionary records, for every fault, *which patterns detect it
//! and on which outputs* (the syndrome). Diagnosis then ranks candidate
//! faults by how well their stored syndrome matches the behaviour
//! observed on a failing device — the same flow the RESCUE RSN-diagnosis
//! work applies to scan networks (paper Section III.E).

use crate::model::Fault;
use crate::simulate::FaultSimulator;
use rescue_netlist::Netlist;
use rescue_sim::parallel::pack_patterns;
use std::collections::BTreeMap;

/// Per-fault syndrome: for each detecting pattern, the set of failing
/// outputs encoded as a bitmask (output position `i` = bit `i`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Syndrome {
    entries: BTreeMap<usize, u64>,
}

impl Syndrome {
    /// Creates an empty syndrome.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `pattern` fails with the given output `mask`.
    pub fn record(&mut self, pattern: usize, mask: u64) {
        if mask != 0 {
            self.entries.insert(pattern, mask);
        }
    }

    /// Number of detecting patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pattern detects the fault.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(pattern, failing-output mask)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.entries.iter().map(|(&p, &m)| (p, m))
    }

    /// Similarity to an observed syndrome: Jaccard index over the
    /// `(pattern, mask)` pairs.
    pub fn similarity(&self, observed: &Syndrome) -> f64 {
        if self.entries.is_empty() && observed.entries.is_empty() {
            return 1.0;
        }
        let mut inter = 0usize;
        for (p, m) in &self.entries {
            if observed.entries.get(p) == Some(m) {
                inter += 1;
            }
        }
        let union = self.entries.len() + observed.entries.len() - inter;
        inter as f64 / union as f64
    }
}

/// Full-response fault dictionary.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    faults: Vec<Fault>,
    syndromes: Vec<Syndrome>,
    patterns: usize,
}

impl FaultDictionary {
    /// Builds a dictionary by simulating every fault against every
    /// pattern (no dropping — full responses are needed for diagnosis).
    ///
    /// # Panics
    ///
    /// Panics if any pattern width differs from the primary-input count
    /// or the design has more than 64 primary outputs.
    pub fn build(netlist: &Netlist, faults: &[Fault], patterns: &[Vec<bool>]) -> Self {
        assert!(
            netlist.primary_outputs().len() <= 64,
            "syndrome masks support up to 64 outputs"
        );
        let sim = FaultSimulator::new(netlist);
        let mut syndromes = vec![Syndrome::new(); faults.len()];
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let words = pack_patterns(chunk);
            let golden = sim.golden(&words);
            for (fi, &fault) in faults.iter().enumerate() {
                let faulty = sim.with_stuck(&words, fault);
                for (p_in_chunk, _) in chunk.iter().enumerate() {
                    let mut mask = 0u64;
                    for (oi, (_, g)) in netlist.primary_outputs().iter().enumerate() {
                        let gbit = golden[g.index()] >> p_in_chunk & 1;
                        let fbit = faulty[g.index()] >> p_in_chunk & 1;
                        if gbit != fbit {
                            mask |= 1 << oi;
                        }
                    }
                    syndromes[fi].record(chunk_idx * 64 + p_in_chunk, mask);
                }
            }
        }
        FaultDictionary {
            faults: faults.to_vec(),
            syndromes,
            patterns: patterns.len(),
        }
    }

    /// The dictionary's fault list.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The stored syndrome of fault `i`.
    pub fn syndrome(&self, i: usize) -> &Syndrome {
        &self.syndromes[i]
    }

    /// Number of patterns in the dictionary.
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Ranks candidate faults by similarity to an observed syndrome
    /// (best first). Ties broken by fault order.
    pub fn diagnose(&self, observed: &Syndrome) -> Vec<(Fault, f64)> {
        let mut ranked: Vec<(Fault, f64)> = self
            .faults
            .iter()
            .zip(&self.syndromes)
            .map(|(&f, s)| (f, s.similarity(observed)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
    }

    /// Diagnostic resolution: the number of faults whose syndromes are
    /// identical to at least one other fault's (indistinguishable sets).
    pub fn indistinguishable_count(&self) -> usize {
        let mut count = 0;
        for (i, s) in self.syndromes.iter().enumerate() {
            if self
                .syndromes
                .iter()
                .enumerate()
                .any(|(j, t)| j != i && s == t)
            {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::generate;

    fn exhaustive(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn dictionary_diagnoses_exact_fault() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let dict = FaultDictionary::build(&c, &faults, &exhaustive(5));
        // Simulate fault 7 as the "device under diagnosis".
        let observed = dict.syndrome(7).clone();
        let ranked = dict.diagnose(&observed);
        assert_eq!(ranked[0].1, 1.0);
        // The top-ranked fault is either fault 7 itself or an equivalent.
        let perfect: Vec<Fault> = ranked
            .iter()
            .take_while(|(_, s)| *s == 1.0)
            .map(|(f, _)| *f)
            .collect();
        assert!(perfect.contains(&faults[7]));
    }

    #[test]
    fn equivalent_faults_are_indistinguishable() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let dict = FaultDictionary::build(&c, &faults, &exhaustive(5));
        // Collapsed-equivalent faults share syndromes, so the count is > 0.
        assert!(dict.indistinguishable_count() > 0);
        assert!(dict.indistinguishable_count() < faults.len());
    }

    #[test]
    fn syndrome_similarity_edges() {
        let mut a = Syndrome::new();
        let mut b = Syndrome::new();
        assert_eq!(a.similarity(&b), 1.0);
        a.record(0, 0b1);
        assert_eq!(a.similarity(&b), 0.0);
        b.record(0, 0b1);
        assert_eq!(a.similarity(&b), 1.0);
        b.record(1, 0b10);
        assert!(a.similarity(&b) < 1.0);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        // mask 0 is ignored
        a.record(5, 0);
        assert_eq!(a.len(), 1);
    }
}
