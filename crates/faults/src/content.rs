//! Canonical content hashing of campaigns (the durable-campaign keys).
//!
//! A durable campaign is cached under
//! `hash(netlist, fault universe, engine options, pattern block)`; for
//! the cache to be worth anything the encoding behind that hash must be
//! *byte-stable*: the same compiled netlist, fault list, options and
//! patterns must hash identically across runs, processes and machines.
//! This module defines that encoding — fixed-width little-endian fields
//! through [`CanonicalHasher`], every list length-prefixed, every enum
//! mapped through an explicit (enum-order-independent) code table — and
//! the golden-hash tests at the bottom pin the format: if any of them
//! fails, the encoding changed and every existing store is invalidated,
//! so bump the domain-tag versions instead of silently re-keying.

use crate::model::{Fault, FaultKind, FaultSite};
use crate::simulate::PackedOptions;
use rescue_campaign::store::{CanonicalHasher, ContentHash};
use rescue_netlist::{GateKind, Netlist};
use rescue_sim::compiled::CompiledNetlist;

/// Stable wire code for a [`GateKind`] — decoupled from the enum's
/// declaration order so reordering variants can never silently re-key
/// every store.
fn kind_code(kind: GateKind) -> u8 {
    match kind {
        GateKind::Input => 0,
        GateKind::Const0 => 1,
        GateKind::Const1 => 2,
        GateKind::Buf => 3,
        GateKind::Not => 4,
        GateKind::And => 5,
        GateKind::Nand => 6,
        GateKind::Or => 7,
        GateKind::Nor => 8,
        GateKind::Xor => 9,
        GateKind::Xnor => 10,
        GateKind::Mux => 11,
        GateKind::Dff => 12,
    }
}

/// Stable wire code for a [`FaultKind`].
fn fault_kind_code(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::StuckAt0 => 0,
        FaultKind::StuckAt1 => 1,
        FaultKind::SlowToRise => 2,
        FaultKind::SlowToFall => 3,
    }
}

/// Content hash of a compiled netlist: gate kinds, pin lists and the
/// interface arrays (primary inputs, PO drivers, flip-flops). Levelized
/// order and fanout are derived data, so they are deliberately excluded
/// — two structurally identical netlists hash identically no matter how
/// they were built.
pub fn hash_netlist(c: &CompiledNetlist) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.netlist.v1");
    h.write_usize(c.len());
    for g in 0..c.len() {
        h.write_u8(kind_code(c.kind(g)));
        let pins = c.pins_of(g);
        h.write_usize(pins.len());
        for &p in pins {
            h.write_u32(p);
        }
    }
    for list in [c.primary_inputs(), c.po_drivers(), c.dffs(), c.dff_d()] {
        h.write_usize(list.len());
        for &g in list {
            h.write_u32(g);
        }
    }
    h.finish()
}

/// [`hash_netlist`] computed from the *source* [`Netlist`], without
/// compiling it — byte-identical to hashing the compiled arena, because
/// the hash covers exactly the fields compilation copies verbatim (gate
/// kinds and pin lists in id order, then the PI / PO-driver / DFF / DFF-D
/// interface arrays). This is what lets the artifact cache decide whether
/// a stored [`CompiledNetlist`] is reusable before paying for compilation.
pub fn hash_netlist_source(netlist: &Netlist) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.netlist.v1");
    h.write_usize(netlist.len());
    for (_, g) in netlist.iter() {
        h.write_u8(kind_code(g.kind()));
        h.write_usize(g.inputs().len());
        for &p in g.inputs() {
            h.write_u32(p.index() as u32);
        }
    }
    h.write_usize(netlist.primary_inputs().len());
    for g in netlist.primary_inputs() {
        h.write_u32(g.index() as u32);
    }
    h.write_usize(netlist.primary_outputs().len());
    for (_, g) in netlist.primary_outputs() {
        h.write_u32(g.index() as u32);
    }
    h.write_usize(netlist.dffs().len());
    for g in netlist.dffs() {
        h.write_u32(g.index() as u32);
    }
    h.write_usize(netlist.dffs().len());
    for &d in netlist.dffs() {
        h.write_u32(netlist.gate(d).inputs()[0].index() as u32);
    }
    h.finish()
}

/// Artifact-cache key of a compiled netlist arena, derived from the
/// source netlist alone (see [`hash_netlist_source`]).
pub fn compiled_key(netlist: &Netlist) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.compiled.v1");
    h.write_u128(hash_netlist_source(netlist).0);
    h.finish()
}

/// Artifact-cache key of a built campaign or trace plan: the compiled
/// netlist, the exact walk list (order-sensitive — the cone CSR is
/// indexed by walk position) and which plan family (`tracing`) it is.
/// Worker count is deliberately absent: parallel builds are bit-identical
/// to serial ones, so any worker count may reuse the artifact.
pub fn plan_key(c: &CompiledNetlist, walk: &[Fault], tracing: bool) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.plan.v1");
    h.write_u128(hash_netlist(c).0);
    h.write_u128(hash_faults(walk).0);
    h.write_bool(tracing);
    h.finish()
}

/// Content hash of a fault universe (order-sensitive: the verdict vector
/// is indexed by fault position).
pub fn hash_faults(faults: &[Fault]) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.faults.v1");
    h.write_usize(faults.len());
    for f in faults {
        match f.site() {
            FaultSite::Output(g) => {
                h.write_u8(0);
                h.write_usize(g.index());
                h.write_usize(0);
            }
            FaultSite::Pin { gate, pin } => {
                h.write_u8(1);
                h.write_usize(gate.index());
                h.write_usize(pin);
            }
        }
        h.write_u8(fault_kind_code(f.kind()));
    }
    h.finish()
}

/// Content hash of a pattern block. Bits are packed eight to a byte
/// (LSB-first) per pattern, so hashing costs one FNV step per eight
/// pattern bits.
pub fn hash_patterns(patterns: &[Vec<bool>]) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.patterns.v1");
    h.write_usize(patterns.len());
    let mut packed = Vec::new();
    for p in patterns {
        h.write_usize(p.len());
        packed.clear();
        packed.resize(p.len().div_ceil(8), 0u8);
        for (i, &bit) in p.iter().enumerate() {
            if bit {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        h.write_bytes(&packed);
    }
    h.finish()
}

/// Content hash of the engine configuration: lane width, collapse
/// on/off, tracing on/off. All three are keyed even though verdicts are
/// engine-invariant, because the *unit partition* is not: a collapsed
/// campaign units over walk-list representatives, and per-unit stats
/// deltas (e.g. drop counts) depend on the lane width.
///
/// `drop_scope` is deliberately *excluded*: on the durable path the
/// shared detected bitmap is publish-only (units partition walk
/// positions, so no in-process consult can fire), which makes persisted
/// unit verdicts bit-identical under either scope — keying it would
/// only split stores that answer each other's units verbatim.
pub fn hash_options(opts: &PackedOptions) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.options.v1");
    h.write_usize(opts.lane_width);
    h.write_bool(opts.collapsed.is_some());
    h.write_bool(opts.tracing);
    h.finish()
}

/// The durable-campaign key: netlist, fault universe, options and
/// pattern block combined. Deliberately excludes worker count, schedule
/// and seed — they change wall-clock, never verdicts, so a resumed run
/// under a different thread count still hits the same units.
pub fn campaign_hash(
    c: &CompiledNetlist,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    opts: &PackedOptions,
) -> ContentHash {
    let mut h = CanonicalHasher::new("rescue.campaign.v1");
    h.write_u128(hash_netlist(c).0);
    h.write_u128(hash_faults(faults).0);
    h.write_u128(hash_options(opts).0);
    h.write_u128(hash_patterns(patterns).0);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::generate;

    fn c17_compiled() -> CompiledNetlist {
        CompiledNetlist::new(&generate::c17())
    }

    fn sample_patterns() -> Vec<Vec<bool>> {
        (0..9u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn hashes_are_run_to_run_stable() {
        let c = c17_compiled();
        let faults = universe::stuck_at_universe(&generate::c17());
        assert_eq!(hash_netlist(&c), hash_netlist(&c17_compiled()));
        assert_eq!(hash_faults(&faults), hash_faults(&faults.clone()));
        assert_eq!(
            hash_patterns(&sample_patterns()),
            hash_patterns(&sample_patterns())
        );
    }

    #[test]
    fn every_ingredient_moves_the_campaign_hash() {
        let net = generate::c17();
        let c = CompiledNetlist::new(&net);
        let faults = universe::stuck_at_universe(&net);
        let patterns = sample_patterns();
        let opts = PackedOptions::default();
        let base = campaign_hash(&c, &faults, &patterns, &opts);
        // Different netlist.
        let other = CompiledNetlist::new(&generate::adder(4));
        assert_ne!(base, campaign_hash(&other, &faults, &patterns, &opts));
        // Different universe (drop one fault).
        assert_ne!(
            base,
            campaign_hash(&c, &faults[..faults.len() - 1], &patterns, &opts)
        );
        // Different patterns (flip one bit).
        let mut flipped = patterns.clone();
        flipped[0][0] = !flipped[0][0];
        assert_ne!(base, campaign_hash(&c, &faults, &flipped, &opts));
        // Different options.
        assert_ne!(
            base,
            campaign_hash(&c, &faults, &patterns, &PackedOptions::wide(4))
        );
        assert_ne!(
            base,
            campaign_hash(&c, &faults, &patterns, &PackedOptions::default().traced())
        );
        // drop_scope does NOT key: durable unit verdicts are identical
        // under either scope, so the stores are interchangeable.
        assert_eq!(
            base,
            campaign_hash(
                &c,
                &faults,
                &patterns,
                &PackedOptions::default().global_drop()
            )
        );
    }

    #[test]
    fn source_hash_matches_compiled_hash() {
        // The artifact cache keys compiled arenas by the *source* netlist
        // hash; the two computations must agree on every design shape
        // (combinational, arithmetic, sequential, generated).
        for net in [
            generate::c17(),
            generate::adder(4),
            generate::control_fsm(),
            generate::random_logic(8, 300, 4, 9),
        ] {
            let c = CompiledNetlist::new(&net);
            assert_eq!(
                hash_netlist_source(&net),
                hash_netlist(&c),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn plan_key_ingredients() {
        let net = generate::c17();
        let c = CompiledNetlist::new(&net);
        let faults = universe::stuck_at_universe(&net);
        let base = plan_key(&c, &faults, false);
        assert_eq!(base, plan_key(&c, &faults, false), "key must be stable");
        assert_ne!(base, plan_key(&c, &faults, true), "tracing flag keys");
        assert_ne!(
            base,
            plan_key(&c, &faults[..faults.len() - 1], false),
            "walk list keys"
        );
        let other = CompiledNetlist::new(&generate::adder(4));
        assert_ne!(base, plan_key(&other, &faults, false), "netlist keys");
        assert_ne!(
            base,
            compiled_key(&net),
            "plan and compiled artifacts live in different key domains"
        );
    }

    #[test]
    fn pattern_lengths_disambiguate() {
        // [1-bit, 2-bit] vs [2-bit, 1-bit] pattern splits must differ
        // even though the concatenated bit streams agree.
        let a = vec![vec![true], vec![false, true]];
        let b = vec![vec![true, false], vec![true]];
        assert_ne!(hash_patterns(&a), hash_patterns(&b));
    }

    /// Golden hashes pinning the canonical encoding. These values are
    /// the on-disk format contract: a change here invalidates every
    /// existing store directory, so it must be deliberate (bump the
    /// `rescue.*.v1` domain tags) — never an accident of refactoring.
    #[test]
    fn golden_hashes_pin_the_encoding() {
        let net = generate::c17();
        let c = CompiledNetlist::new(&net);
        let faults = universe::stuck_at_universe(&net);
        let patterns = sample_patterns();
        assert_eq!(
            hash_netlist(&c).to_string(),
            "b4086e2106f40c06ab4383434080df49",
            "netlist encoding changed"
        );
        assert_eq!(
            hash_faults(&faults).to_string(),
            "d890d7fd8feced80e097b517525722c3",
            "fault encoding changed"
        );
        assert_eq!(
            hash_patterns(&patterns).to_string(),
            "426705cf1a7b318ec5d59e706448fa7d",
            "pattern encoding changed"
        );
        assert_eq!(
            hash_options(&PackedOptions::wide(4).traced()).to_string(),
            "045702a38a93d327109cc8cb50de54ff",
            "options encoding changed"
        );
        assert_eq!(
            campaign_hash(&c, &faults, &patterns, &PackedOptions::default()).to_string(),
            "f861a5b0b8810bee20b4d7d6ff7b9915",
            "campaign key derivation changed"
        );
    }
}
