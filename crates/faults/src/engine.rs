//! Incremental single-fault propagation over the compiled arena.
//!
//! The hot path of every stuck-at campaign is "given the chunk's golden
//! words, which patterns see this fault at an output?". The classic
//! answer re-simulates the whole netlist per fault; this engine instead:
//!
//! 1. **memoizes the combinational fanout cone** of each fault site in a
//!    [`CampaignPlan`] (sa0/sa1 at the same site share one cone, stored
//!    as a flat CSR sorted by topological position, root excluded);
//! 2. **injects** the fault at its root over a scratch value array that
//!    equals the chunk's golden words everywhere;
//! 3. **resimulates only the cone**, in levelized order, tracking the
//!    largest topological position any fault effect can still reach
//!    (the *event horizon*) and breaking out as soon as the walk passes
//!    it — the event-driven early exit;
//! 4. **undoes** its writes through a touched list, so the scratch array
//!    is golden again without an `O(gates)` copy or a fresh allocation.
//!
//! Verdicts are bit-identical to full resimulation: gates outside the
//! combinational fanout cone cannot change (DFF outputs hold 0 in packed
//! word evaluation, so effects never cross a sequential edge within a
//! chunk), and cone gates are evaluated with the same kernels in the
//! same order.
//!
//! # PPSFP: one walk per site, event-driven
//!
//! [`CampaignPlan::detect`] pays one cone walk per *fault* per 64-pattern
//! word, and that walk evaluates every cone gate below the horizon even
//! when almost none of them changed. [`CampaignPlan::detect_packed`] is
//! the parallel-pattern single-fault propagation (PPSFP, Waicukauski et
//! al. 1985) production path, built on three exact reductions:
//!
//! * **Observability factoring** — bit lanes of word evaluation never
//!   interact, so one walk with the root *flipped on all 64 lanes*
//!   computes, per lane, whether a root flip reaches a primary output
//!   (the observability word `O`). Every stuck-at fault at the site is
//!   then `O & excitation`, where the excitation word (lanes on which
//!   the fault actually flips the root) is one gate evaluation at most.
//!   sa0, sa1 and all pin faults of a site share a single walk.
//! * **Event-driven walk** — the walk stamps the fanout of each changed
//!   gate and skips unstamped cone members in O(1) instead of
//!   re-evaluating them (on large cones almost all evaluations are
//!   skipped: typical walks change ~a dozen gates in a 500-gate cone).
//! * **Static observability pruning** — a site whose cone contains no
//!   primary output can never be detected; its faults are answered with
//!   `0` without any walk ([`CampaignPlan::observable`]). The same
//!   reverse-topological PO-reachability sweep also restricts every
//!   walk order to PO-reachable cone members
//!   ([`CampaignPlan::obs_cone_of`]): gates that cannot reach an output
//!   cannot feed one either, so the walk never visits them.
//!
//! Equivalence with [`CampaignPlan::detect`] (the scalar oracle) is
//! enforced by property tests in `tests/ppsfp_equivalence.rs`.

use crate::error::FaultError;
use crate::model::{Fault, FaultSite};
use rescue_netlist::GateKind;
use rescue_sim::codec::{put_bits, put_u32s, take_bits, take_u32s};
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::wide::SimWord;
use rescue_telemetry::{metrics, span};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Memoized per-site fanout cones for one campaign's fault list.
///
/// Built once per campaign ([`CampaignPlan::build`]) and shared read-only
/// by all workers; the per-fault state lives in [`FaultScratch`].
///
/// `PartialEq` compares every CSR byte-for-byte — the equivalence
/// proptests use it to pin parallel and cache-reloaded builds to the
/// serial construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPlan {
    /// Per gate: index into `cone_offsets`, `u32::MAX` when the gate is
    /// not a fault-site root in this plan.
    cone_index: Vec<u32>,
    cone_offsets: Vec<u32>,
    /// Concatenated cones, each sorted by topological position and
    /// excluding its root.
    cone_gates: Vec<u32>,
    /// Per gate: whether the gate's combinational fanout cone (or the
    /// gate itself) contains a primary output — computed for every gate
    /// in one reverse-topological sweep at build time.
    observable: Vec<bool>,
    /// Concatenated PO-reachable restrictions of the cones: the members
    /// `m` with `observable[m]`, same order and indexing as
    /// `cone_offsets`. Only these gates can influence a primary output,
    /// so the packed observability walk evaluates nothing else.
    obs_cone_offsets: Vec<u32>,
    obs_cone_gates: Vec<u32>,
}

/// PO-reachability for every gate in one reverse-topological sweep: a
/// gate is reachable when it drives a primary output or any non-DFF
/// fanout is reachable. Sources (Input/Dff outputs) sit outside
/// eval_order and close the pass — their fanouts are combinational gates
/// the sweep already settled.
///
/// This is the same O(gates + edges) sweep [`CampaignPlan::build`] runs;
/// exposed standalone so campaign front-ends can prefilter a fault list
/// (e.g. collapsed-universe representatives) *before* paying for cone
/// construction.
pub fn po_reachable(compiled: &CompiledNetlist) -> Vec<bool> {
    let n = compiled.len();
    let mut reachable = vec![false; n];
    for (g, r) in reachable.iter_mut().enumerate() {
        *r = compiled.is_po(g);
    }
    for &g in compiled.eval_order().iter().rev() {
        let gi = g as usize;
        if !reachable[gi] {
            reachable[gi] = compiled
                .fanout_of(gi)
                .iter()
                .any(|&s| compiled.kind(s as usize) != GateKind::Dff && reachable[s as usize]);
        }
    }
    for g in 0..n {
        if !reachable[g] && matches!(compiled.kind(g), GateKind::Input | GateKind::Dff) {
            reachable[g] = compiled
                .fanout_of(g)
                .iter()
                .any(|&s| compiled.kind(s as usize) != GateKind::Dff && reachable[s as usize]);
        }
    }
    reachable
}

/// Designs below this size take the serial [`po_reachable`] path even
/// when workers are available — thread startup would dominate.
const PARALLEL_SWEEP_MIN: usize = 1 << 15;

/// [`po_reachable`] sharded across `workers` threads.
///
/// Gates are bucketed by logic level (counting sort); workers then sweep
/// levels in descending order with a barrier between rounds. A gate's
/// verdict depends only on combinational fanouts, which always sit at
/// strictly higher levels, so every read within a round observes values
/// settled by earlier rounds. Reachability is the unique fixpoint of the
/// per-gate formula, hence the result is identical to the serial sweep
/// for any worker count.
pub fn po_reachable_with(compiled: &CompiledNetlist, workers: usize) -> Vec<bool> {
    let n = compiled.len();
    let w = workers.max(1);
    if w == 1 || n < PARALLEL_SWEEP_MIN {
        return po_reachable(compiled);
    }
    let depth = compiled.depth() as usize;
    let mut offsets = vec![0u32; depth + 2];
    for g in 0..n {
        offsets[compiled.level(g) as usize + 1] += 1;
    }
    for l in 0..=depth {
        offsets[l + 1] += offsets[l];
    }
    let mut level_gates = vec![0u32; n];
    let mut cursor: Vec<u32> = offsets[..=depth].to_vec();
    for g in 0..n {
        let l = compiled.level(g) as usize;
        level_gates[cursor[l] as usize] = g as u32;
        cursor[l] += 1;
    }
    let reachable: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let barrier = Barrier::new(w);
    std::thread::scope(|s| {
        for wi in 0..w {
            let (reachable, barrier) = (&reachable, &barrier);
            let (level_gates, offsets) = (&level_gates, &offsets);
            s.spawn(move || {
                for lvl in (0..=depth).rev() {
                    let lo = offsets[lvl] as usize;
                    let hi = offsets[lvl + 1] as usize;
                    let len = hi - lo;
                    let chunk = len.div_ceil(w).max(1);
                    let start = lo + (wi * chunk).min(len);
                    let end = lo + ((wi + 1) * chunk).min(len);
                    for &g in &level_gates[start..end] {
                        let gi = g as usize;
                        // Same formula as the serial sweep. Relaxed
                        // suffices: the barrier orders rounds, and
                        // within a round only higher-level (already
                        // settled) entries are read.
                        let r = compiled.is_po(gi)
                            || compiled.fanout_of(gi).iter().any(|&s| {
                                compiled.kind(s as usize) != GateKind::Dff
                                    && reachable[s as usize].load(Ordering::Relaxed)
                            });
                        if r {
                            reachable[gi].store(true, Ordering::Relaxed);
                        }
                    }
                    barrier.wait();
                }
            });
        }
    });
    reachable.into_iter().map(AtomicBool::into_inner).collect()
}

/// Maximum cone entries a plan's `u32` offset arena can address.
pub const MAX_PLAN_ENTRIES: usize = u32::MAX as usize;

/// Checks that `entries` cone-CSR entries fit the `u32` offset arena,
/// so million-gate plans fail loudly instead of truncating offsets.
///
/// # Errors
///
/// Returns [`FaultError::PlanTooLarge`] when `entries` exceeds
/// [`MAX_PLAN_ENTRIES`].
pub fn ensure_plan_capacity(entries: usize) -> Result<(), FaultError> {
    if entries > MAX_PLAN_ENTRIES {
        Err(FaultError::PlanTooLarge {
            entries,
            limit: MAX_PLAN_ENTRIES,
        })
    } else {
        Ok(())
    }
}

/// Version byte of the [`CampaignPlan::to_bytes`] wire format.
const PLAN_WIRE_VERSION: u8 = 1;

/// Per-worker DFS buffers for cone construction.
struct ConeScratch {
    seen: Vec<bool>,
    stack: Vec<u32>,
    members: Vec<u32>,
}

/// One worker's contiguous share of the cone CSRs: entries concatenated
/// in root order with *relative* end offsets, stitched into absolute
/// offsets by the (deterministic) reassembly pass.
struct ConeChunk {
    gates: Vec<u32>,
    ends: Vec<u64>,
    obs_gates: Vec<u32>,
    obs_ends: Vec<u64>,
    /// Cone sizes in root order, for the `fault.cone_size` histogram.
    sizes: Vec<u64>,
}

/// Collects the (sorted, root-excluded) cone members of `root` into
/// `keyed` as packed `(topo_pos << 32) | gate` keys. `restricted`
/// confines the DFS to PO-reachable fanout edges and yields an empty
/// cone for unobservable roots, exactly like the serial
/// `build_observable` loop.
fn cone_members_sorted(
    compiled: &CompiledNetlist,
    observable: &[bool],
    restricted: bool,
    root: usize,
    scratch: &mut ConeScratch,
    keyed: &mut Vec<u64>,
) {
    keyed.clear();
    if restricted && !observable[root] {
        return;
    }
    let ConeScratch {
        seen,
        stack,
        members,
    } = scratch;
    // DFS over combinational fanout edges; DFF consumers hold state, so
    // fault effects stop at the D-pin within a chunk.
    seen[root] = true;
    stack.push(root as u32);
    while let Some(g) = stack.pop() {
        for &s in compiled.fanout_of(g as usize) {
            let si = s as usize;
            if seen[si] || compiled.kind(si) == GateKind::Dff || (restricted && !observable[si]) {
                continue;
            }
            seen[si] = true;
            stack.push(s);
            members.push(s);
        }
    }
    // Kahn order enqueues a gate only after all combinational
    // predecessors, so every cone member sits after the root; sorting by
    // position yields a valid evaluation order. Packed (position, gate)
    // keys cost one topo_pos load per element instead of one per
    // comparison.
    keyed.extend(
        members
            .iter()
            .map(|&g| ((compiled.topo_pos(g as usize) as u64) << 32) | g as u64),
    );
    keyed.sort_unstable();
    seen[root] = false;
    for &m in members.iter() {
        seen[m as usize] = false;
    }
    members.clear();
}

/// Builds the cone CSR share for a contiguous slice of plan roots.
fn build_cone_chunk(
    compiled: &CompiledNetlist,
    observable: &[bool],
    restricted: bool,
    roots: &[u32],
) -> ConeChunk {
    let mut scratch = ConeScratch {
        seen: vec![false; compiled.len()],
        stack: Vec::new(),
        members: Vec::new(),
    };
    let mut keyed: Vec<u64> = Vec::new();
    let mut chunk = ConeChunk {
        gates: Vec::new(),
        ends: Vec::with_capacity(roots.len()),
        obs_gates: Vec::new(),
        obs_ends: Vec::with_capacity(roots.len()),
        sizes: Vec::with_capacity(roots.len()),
    };
    for &root in roots {
        cone_members_sorted(
            compiled,
            observable,
            restricted,
            root as usize,
            &mut scratch,
            &mut keyed,
        );
        chunk.sizes.push(keyed.len() as u64);
        chunk.gates.extend(keyed.iter().map(|&k| k as u32));
        chunk.ends.push(chunk.gates.len() as u64);
        if restricted {
            // Both CSRs alias the restriction (see `build_observable`).
            chunk.obs_gates.extend(keyed.iter().map(|&k| k as u32));
        } else {
            // PO-reachable restriction: unobservable gates feed only
            // unobservable gates (an edge into an observable gate would
            // make its source observable), so dropping them from the
            // walk order changes no observable gate's value.
            chunk.obs_gates.extend(
                keyed
                    .iter()
                    .map(|&k| k as u32)
                    .filter(|&g| observable[g as usize]),
            );
        }
        chunk.obs_ends.push(chunk.obs_gates.len() as u64);
    }
    chunk
}

/// Shared core of the serial and parallel plan builds.
///
/// A serial dedup pass fixes the root order (first appearance in the
/// fault list) and with it every CSR offset; workers then fill in cone
/// contents for contiguous root shards, and chunks concatenate back in
/// root order — so the result is byte-identical to the `workers == 1`
/// build for any worker count.
fn build_plan_impl(
    compiled: &CompiledNetlist,
    faults: &[Fault],
    workers: usize,
    restricted: bool,
) -> Result<CampaignPlan, FaultError> {
    let w = workers.max(1);
    let _span = span!("plan.build", faults = faults.len());
    let t0 = Instant::now();
    let n = compiled.len();
    let observable = po_reachable_with(compiled, w);
    let mut cone_index = vec![u32::MAX; n];
    let mut roots: Vec<u32> = Vec::new();
    for fault in faults {
        let root = fault.site().gate().index();
        if cone_index[root] != u32::MAX {
            continue; // sa0/sa1 (and pin faults) at one gate share a cone
        }
        cone_index[root] = roots.len() as u32;
        roots.push(root as u32);
    }
    let shards = w.min(roots.len()).max(1);
    let chunk_len = roots.len().div_ceil(shards).max(1);
    let chunks: Vec<ConeChunk> = if shards == 1 {
        vec![build_cone_chunk(compiled, &observable, restricted, &roots)]
    } else {
        let observable = &observable;
        std::thread::scope(|s| {
            let handles: Vec<_> = roots
                .chunks(chunk_len)
                .map(|slice| {
                    s.spawn(move || build_cone_chunk(compiled, observable, restricted, slice))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("plan build worker panicked"))
                .collect()
        })
    };
    let total: usize = chunks.iter().map(|c| c.gates.len()).sum();
    let obs_total: usize = chunks.iter().map(|c| c.obs_gates.len()).sum();
    ensure_plan_capacity(total)?;
    ensure_plan_capacity(obs_total)?;
    let mut plan = CampaignPlan {
        cone_index,
        cone_offsets: Vec::with_capacity(roots.len() + 1),
        cone_gates: Vec::with_capacity(total),
        observable,
        obs_cone_offsets: Vec::with_capacity(roots.len() + 1),
        obs_cone_gates: Vec::with_capacity(obs_total),
    };
    plan.cone_offsets.push(0);
    plan.obs_cone_offsets.push(0);
    // Cone sizes feed the `fault.cone_size` histogram: build is cold
    // (once per campaign), so recording per cone here costs nothing on
    // the per-fault hot path.
    let cone_hist = rescue_telemetry::enabled()
        .then(|| metrics::histogram("fault.cone_size", &metrics::pow2_bounds(16)));
    for chunk in &chunks {
        let base = plan.cone_gates.len() as u64;
        for &end in &chunk.ends {
            plan.cone_offsets.push((base + end) as u32);
        }
        plan.cone_gates.extend_from_slice(&chunk.gates);
        let obs_base = plan.obs_cone_gates.len() as u64;
        for &end in &chunk.obs_ends {
            plan.obs_cone_offsets.push((obs_base + end) as u32);
        }
        plan.obs_cone_gates.extend_from_slice(&chunk.obs_gates);
        if let Some(hist) = &cone_hist {
            for &sz in &chunk.sizes {
                hist.record(sz);
            }
        }
    }
    if rescue_telemetry::enabled() {
        metrics::histogram("plan.build_ms", &metrics::pow2_bounds(16))
            .record(t0.elapsed().as_millis() as u64);
    }
    Ok(plan)
}

impl CampaignPlan {
    /// Computes (and deduplicates) the combinational fanout cone of every
    /// fault site in `faults`.
    pub fn build(compiled: &CompiledNetlist, faults: &[Fault]) -> Self {
        Self::build_with(compiled, faults, 1)
    }

    /// [`CampaignPlan::build`] sharded across `workers` threads.
    ///
    /// Bit-identical to the serial build for any worker count: a serial
    /// dedup pass fixes the root order, workers build cones for
    /// contiguous root shards, and shards concatenate back in order.
    ///
    /// # Panics
    ///
    /// Panics when the plan exceeds its `u32` offset capacity (use
    /// [`CampaignPlan::try_build_with`] for the typed error).
    pub fn build_with(compiled: &CompiledNetlist, faults: &[Fault], workers: usize) -> Self {
        Self::try_build_with(compiled, faults, workers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`CampaignPlan::build_with`].
    ///
    /// # Errors
    ///
    /// [`FaultError::PlanTooLarge`] when the cone CSR outgrows its `u32`
    /// offset arena.
    pub fn try_build_with(
        compiled: &CompiledNetlist,
        faults: &[Fault],
        workers: usize,
    ) -> Result<Self, FaultError> {
        build_plan_impl(compiled, faults, workers, false)
    }

    /// [`CampaignPlan::build`] restricted to the PO-reachable region:
    /// cones are discovered by DFS over *observable* fanout edges only,
    /// so a site buried in a large structurally-dead region costs
    /// nothing, and the full-cone CSR is never materialized (on a 50k
    /// gate design with few outputs the full cones run to tens of
    /// millions of entries while the observable restriction is a few
    /// tens of thousands — the difference dominates campaign setup).
    ///
    /// Exact for the packed paths: the restricted DFS reaches exactly
    /// the observable members of the full cone (every vertex on a path
    /// from the root to an observable gate is itself observable), which
    /// is precisely the set [`CampaignPlan::obs_cone_of`] walks. Both
    /// cone CSRs alias the restriction, so the scalar
    /// [`CampaignPlan::detect`] stays exact too — unobservable gates
    /// feed only unobservable gates, and the mask is sampled at primary
    /// outputs — but [`CampaignPlan::cone_of`] then reports the
    /// restriction, not the full cone.
    ///
    /// Unobservable roots are planned with an empty cone (their faults
    /// answer `0` through the [`CampaignPlan::observable`] prefilter,
    /// identical to [`CampaignPlan::build`]).
    pub fn build_observable(compiled: &CompiledNetlist, faults: &[Fault]) -> Self {
        Self::build_observable_with(compiled, faults, 1)
    }

    /// [`CampaignPlan::build_observable`] sharded across `workers`
    /// threads; bit-identical to the serial build for any worker count.
    ///
    /// # Panics
    ///
    /// Panics when the plan exceeds its `u32` offset capacity (use
    /// [`CampaignPlan::try_build_observable_with`] for the typed error).
    pub fn build_observable_with(
        compiled: &CompiledNetlist,
        faults: &[Fault],
        workers: usize,
    ) -> Self {
        Self::try_build_observable_with(compiled, faults, workers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`CampaignPlan::build_observable_with`].
    ///
    /// # Errors
    ///
    /// [`FaultError::PlanTooLarge`] when the cone CSR outgrows its `u32`
    /// offset arena.
    pub fn try_build_observable_with(
        compiled: &CompiledNetlist,
        faults: &[Fault],
        workers: usize,
    ) -> Result<Self, FaultError> {
        build_plan_impl(compiled, faults, workers, true)
    }

    /// Serializes the plan for the compiled-artifact cache
    /// (little-endian, versioned; see `rescue_sim::codec`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(
            32 + 4 * (self.cone_index.len() + self.cone_gates.len() + self.obs_cone_gates.len()),
        );
        buf.push(PLAN_WIRE_VERSION);
        put_u32s(&mut buf, &self.cone_index);
        put_u32s(&mut buf, &self.cone_offsets);
        put_u32s(&mut buf, &self.cone_gates);
        put_u32s(&mut buf, &self.obs_cone_offsets);
        put_u32s(&mut buf, &self.obs_cone_gates);
        put_bits(&mut buf, &self.observable);
        buf
    }

    /// Deserializes [`CampaignPlan::to_bytes`] output. Returns `None` on
    /// version mismatch or malformed input — a corrupt cache entry must
    /// fall back to rebuilding, never panic.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        if *bytes.get(off)? != PLAN_WIRE_VERSION {
            return None;
        }
        off += 1;
        let cone_index = take_u32s(bytes, &mut off)?;
        let cone_offsets = take_u32s(bytes, &mut off)?;
        let cone_gates = take_u32s(bytes, &mut off)?;
        let obs_cone_offsets = take_u32s(bytes, &mut off)?;
        let obs_cone_gates = take_u32s(bytes, &mut off)?;
        let observable = take_bits(bytes, &mut off)?;
        let shape_ok = off == bytes.len()
            && observable.len() == cone_index.len()
            && !cone_offsets.is_empty()
            && cone_offsets.len() == obs_cone_offsets.len()
            && *cone_offsets.last()? as usize == cone_gates.len()
            && *obs_cone_offsets.last()? as usize == obs_cone_gates.len();
        if !shape_ok {
            return None;
        }
        Some(CampaignPlan {
            cone_index,
            cone_offsets,
            cone_gates,
            observable,
            obs_cone_offsets,
            obs_cone_gates,
        })
    }

    /// The memoized cone (topo-sorted, root excluded) for the site rooted
    /// at gate `root`, or `None` when `root` was not in the fault list.
    pub fn cone_of(&self, root: usize) -> Option<&[u32]> {
        let idx = self.cone_index[root];
        if idx == u32::MAX {
            return None;
        }
        let lo = self.cone_offsets[idx as usize] as usize;
        let hi = self.cone_offsets[idx as usize + 1] as usize;
        Some(&self.cone_gates[lo..hi])
    }

    /// The PO-reachable restriction of [`CampaignPlan::cone_of`]: the
    /// cone members whose own fanout cone contains a primary output, in
    /// the same topological order. Unobservable gates feed only
    /// unobservable gates, so resimulating just this subsequence yields
    /// the same values on every member it contains as the full cone walk
    /// — it is the exact gate set the packed observability walk visits.
    pub fn obs_cone_of(&self, root: usize) -> Option<&[u32]> {
        let idx = self.cone_index[root];
        if idx == u32::MAX {
            return None;
        }
        let lo = self.obs_cone_offsets[idx as usize] as usize;
        let hi = self.obs_cone_offsets[idx as usize + 1] as usize;
        Some(&self.obs_cone_gates[lo..hi])
    }

    /// Detection mask of `fault` over the chunk whose golden values are
    /// `golden`, by incremental cone resimulation. `scratch.val` must
    /// equal `golden` on entry and is restored before returning.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds and on roots absent from the plan.
    pub fn detect<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        golden: &[Wd],
        scratch: &mut WideScratch<Wd>,
        fault: Fault,
    ) -> Wd {
        let stuck = fault
            .kind()
            .stuck_value()
            .expect("stuck-at campaign requires stuck-at faults");
        let word = Wd::splat(stuck);
        let root = fault.site().gate().index();

        // Inject at the root. Pin faults re-evaluate the root gate with
        // one input substituted; the reference engine never forces pins
        // of source kinds (Input has no pins to evaluate, Dff outputs 0
        // regardless), so those stay at their golden value.
        let fault_value = match fault.site() {
            FaultSite::Output(_) => word,
            FaultSite::Pin { pin, .. } => match compiled.kind(root) {
                GateKind::Input | GateKind::Dff => golden[root],
                _ => compiled.eval_word_pin_forced(root, &scratch.val, pin, word),
            },
        };
        scratch.counters.faults_evaluated += 1;
        if fault_value == golden[root] {
            return Wd::ZERO; // not excited on any pattern of this chunk
        }
        scratch.counters.excitations += 1;

        let mut mask = Wd::ZERO;
        scratch.val[root] = fault_value;
        scratch.touched.push(root as u32);
        if compiled.is_po(root) {
            mask |= fault_value ^ golden[root];
        }
        // Event horizon: the largest topo position a fault effect can
        // still reach. Cone gates beyond it see only golden inputs.
        let mut horizon = 0u32;
        for &s in compiled.fanout_of(root) {
            horizon = horizon.max(compiled.topo_pos(s as usize));
        }
        let cone = self
            .cone_of(root)
            .expect("fault root missing from campaign plan");
        for &g in cone {
            let gi = g as usize;
            if compiled.topo_pos(gi) > horizon {
                // Event frontier died: everything further is golden.
                scratch.counters.horizon_exits += 1;
                break;
            }
            let v = compiled.eval_word(gi, &scratch.val);
            if v == golden[gi] {
                continue;
            }
            scratch.val[gi] = v;
            scratch.touched.push(g);
            if compiled.is_po(gi) {
                mask |= v ^ golden[gi];
            }
            for &s in compiled.fanout_of(gi) {
                horizon = horizon.max(compiled.topo_pos(s as usize));
            }
        }
        scratch.undo(golden);
        mask
    }

    /// Whether `root`'s combinational fanout cone (or `root` itself)
    /// contains a primary output. Faults at unobservable sites can never
    /// be detected, so the packed path answers them without a walk.
    ///
    /// # Panics
    ///
    /// Panics when `root` was not a fault-site root of this plan.
    #[inline]
    pub fn observable(&self, root: usize) -> bool {
        assert!(self.planned(root), "fault root missing from campaign plan");
        self.observable[root]
    }

    /// Whether gate `root` is a fault-site root this plan memoized a
    /// cone for. The packed detection paths report an unplanned root as
    /// [`FaultError::UnplannedSite`] instead of panicking.
    #[inline]
    pub fn planned(&self, root: usize) -> bool {
        self.cone_index[root] != u32::MAX
    }

    /// The PO-reachability verdict of *any* gate (computed for the whole
    /// design at build time, so unlike [`CampaignPlan::observable`] it
    /// does not require `g` to be a plan root).
    #[inline]
    pub fn po_reachable_gate(&self, g: usize) -> bool {
        self.observable[g]
    }

    /// Excitation word of `fault`: the patterns (bit `p`) on which the
    /// fault flips its root gate's output away from golden. At most one
    /// gate evaluation (pin faults); output faults are a compare.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds.
    #[inline]
    pub fn excitation_word<Wd: SimWord>(
        compiled: &CompiledNetlist,
        golden: &[Wd],
        fault: Fault,
    ) -> Wd {
        let stuck = fault
            .kind()
            .stuck_value()
            .expect("stuck-at campaign requires stuck-at faults");
        let word = Wd::splat(stuck);
        let root = fault.site().gate().index();
        let fault_value = match fault.site() {
            FaultSite::Output(_) => word,
            FaultSite::Pin { pin, .. } => match compiled.kind(root) {
                GateKind::Input | GateKind::Dff => golden[root],
                _ => compiled.eval_word_pin_forced(root, golden, pin, word),
            },
        };
        fault_value ^ golden[root]
    }

    /// Observability word of `root` over the chunk whose golden values
    /// are `golden`: bit `p` is set iff flipping `root`'s value on
    /// pattern `p` changes at least one primary output on pattern `p`.
    ///
    /// One event-driven walk over the **PO-reachable restriction** of
    /// the cone with the root flipped on **all 64 lanes**: because word
    /// evaluation is bitwise, lane `p` of every downstream gate equals a
    /// per-pattern resimulation with the root flipped on pattern `p`
    /// alone — so a single walk yields all 64 per-pattern
    /// observabilities at once. Unobservable cone members cannot touch a
    /// primary output and are never visited; among the rest, the walk
    /// stamps the observable fanouts of changed gates and skips
    /// unstamped members in O(1). Once every lane has reached an output
    /// (`mask == !0`) the walk stops early — the mask can only grow.
    /// `scratch.val` must equal `golden` on entry and is restored before
    /// returning.
    ///
    /// The result is cached in the scratch per `(chunk, root)`, so all
    /// faults of one site share one walk within a chunk.
    ///
    /// # Errors
    ///
    /// [`FaultError::UnplannedSite`] when `root` was not a fault-site
    /// root of this plan (no memoized cone to walk).
    pub fn observability_packed<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        golden: &[Wd],
        scratch: &mut WideScratch<Wd>,
        root: usize,
    ) -> Result<Wd, FaultError> {
        if scratch.obs_root == root as u32 {
            scratch.counters.obs_cache_hits += 1;
            return Ok(scratch.obs_word);
        }
        let cone = self
            .obs_cone_of(root)
            .ok_or(FaultError::UnplannedSite { gate: root })?;
        let id = scratch.next_walk_id();
        let mut mask = if compiled.is_po(root) {
            Wd::ONES
        } else {
            Wd::ZERO
        };
        scratch.val[root] = !golden[root];
        scratch.touched.push(root as u32);
        let mut horizon = 0u32;
        for &s in compiled.fanout_of(root) {
            if self.observable[s as usize] {
                scratch.stamp[s as usize] = id;
                horizon = horizon.max(compiled.topo_pos(s as usize));
            }
        }
        for &g in cone {
            let gi = g as usize;
            if mask == Wd::ONES || compiled.topo_pos(gi) > horizon {
                // Every lane already detected, or the event frontier
                // died: nothing further can change the mask.
                scratch.counters.horizon_exits += 1;
                break;
            }
            if scratch.stamp[gi] != id {
                // No fanin of this cone member changed: its value is
                // golden without evaluating it.
                scratch.counters.stamp_skips += 1;
                continue;
            }
            let v = compiled.eval_word(gi, &scratch.val);
            if v == golden[gi] {
                continue;
            }
            scratch.val[gi] = v;
            scratch.touched.push(g);
            if compiled.is_po(gi) {
                mask |= v ^ golden[gi];
            }
            for &s in compiled.fanout_of(gi) {
                if self.observable[s as usize] {
                    scratch.stamp[s as usize] = id;
                    horizon = horizon.max(compiled.topo_pos(s as usize));
                }
            }
        }
        scratch.undo(golden);
        scratch.counters.obs_walks += 1;
        scratch.obs_root = root as u32;
        scratch.obs_word = mask;
        Ok(mask)
    }

    /// PPSFP detection mask of `fault` over the chunk whose golden
    /// values are `golden`: bit-identical to [`CampaignPlan::detect`]
    /// but sharing one observability walk across every fault of the
    /// site, skipping unexcited faults and statically unobservable
    /// sites without walking at all.
    ///
    /// Exactness: bit lanes of word evaluation are independent, so on
    /// every lane a stuck-at fault either leaves the root at golden (no
    /// output can change — the detection bit is 0) or flips it (the
    /// exact situation the all-lanes-flip observability walk computed).
    /// Hence `mask = observability & excitation`.
    ///
    /// `scratch.val` must equal `golden` on entry (use
    /// [`WideScratch::load_golden`] once per chunk) and is golden again
    /// on return.
    ///
    /// # Errors
    ///
    /// [`FaultError::UnplannedSite`] when the fault's root has no
    /// memoized cone in this plan.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds.
    pub fn detect_packed<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        golden: &[Wd],
        scratch: &mut WideScratch<Wd>,
        fault: Fault,
    ) -> Result<Wd, FaultError> {
        scratch.counters.faults_evaluated += 1;
        let root = fault.site().gate().index();
        if !self.planned(root) {
            return Err(FaultError::UnplannedSite { gate: root });
        }
        if !self.observable[root] {
            return Ok(Wd::ZERO);
        }
        let excitation = Self::excitation_word(compiled, golden, fault);
        if excitation.is_zero() {
            return Ok(Wd::ZERO); // not excited on any pattern of this chunk
        }
        scratch.counters.excitations += 1;
        Ok(self.observability_packed(compiled, golden, scratch, root)? & excitation)
    }
}

/// Two observer sets over the gate array, e.g. functional outputs vs
/// checker outputs in an ISO 26262 classification campaign.
///
/// Stored as a per-gate 2-bit membership map so the cone walk tests
/// membership in O(1) without hashing.
#[derive(Debug, Clone)]
pub struct ObserverGroups {
    member: Vec<u8>,
}

impl ObserverGroups {
    /// Builds the membership map for a design of `len` gates: `group_a`
    /// and `group_b` are observed gate indices (a gate may sit in both).
    pub fn new(len: usize, group_a: &[u32], group_b: &[u32]) -> Self {
        let mut member = vec![0u8; len];
        for &g in group_a {
            member[g as usize] |= 1;
        }
        for &g in group_b {
            member[g as usize] |= 2;
        }
        ObserverGroups { member }
    }

    #[inline]
    fn of(&self, g: usize) -> u8 {
        self.member[g]
    }
}

impl CampaignPlan {
    /// Like [`CampaignPlan::detect`], but observes two arbitrary gate
    /// sets instead of the primary outputs: returns
    /// `(group_a_mask, group_b_mask)` — the patterns on which the fault
    /// effect differs from golden at any gate of the respective group.
    ///
    /// Verdicts are bit-identical to diffing a full faulty resimulation
    /// against golden at the observer gates (the classification oracle):
    /// gates outside the combinational fanout cone keep their golden
    /// value, so only cone members (and the root) can contribute.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds and on roots absent from the plan.
    pub fn detect_observed<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        golden: &[Wd],
        scratch: &mut WideScratch<Wd>,
        fault: Fault,
        observers: &ObserverGroups,
    ) -> (Wd, Wd) {
        let stuck = fault
            .kind()
            .stuck_value()
            .expect("stuck-at campaign requires stuck-at faults");
        let word = Wd::splat(stuck);
        let root = fault.site().gate().index();
        let fault_value = match fault.site() {
            FaultSite::Output(_) => word,
            FaultSite::Pin { pin, .. } => match compiled.kind(root) {
                GateKind::Input | GateKind::Dff => golden[root],
                _ => compiled.eval_word_pin_forced(root, &scratch.val, pin, word),
            },
        };
        scratch.counters.faults_evaluated += 1;
        if fault_value == golden[root] {
            return (Wd::ZERO, Wd::ZERO);
        }
        scratch.counters.excitations += 1;

        let mut mask_a = Wd::ZERO;
        let mut mask_b = Wd::ZERO;
        let mut observe = |m: u8, diff: Wd| {
            if m & 1 != 0 {
                mask_a |= diff;
            }
            if m & 2 != 0 {
                mask_b |= diff;
            }
        };
        scratch.val[root] = fault_value;
        scratch.touched.push(root as u32);
        observe(observers.of(root), fault_value ^ golden[root]);
        let mut horizon = 0u32;
        for &s in compiled.fanout_of(root) {
            horizon = horizon.max(compiled.topo_pos(s as usize));
        }
        let cone = self
            .cone_of(root)
            .expect("fault root missing from campaign plan");
        for &g in cone {
            let gi = g as usize;
            if compiled.topo_pos(gi) > horizon {
                scratch.counters.horizon_exits += 1;
                break;
            }
            let v = compiled.eval_word(gi, &scratch.val);
            if v == golden[gi] {
                continue;
            }
            scratch.val[gi] = v;
            scratch.touched.push(g);
            observe(observers.of(gi), v ^ golden[gi]);
            for &s in compiled.fanout_of(gi) {
                horizon = horizon.max(compiled.topo_pos(s as usize));
            }
        }
        scratch.undo(golden);
        (mask_a, mask_b)
    }
}

/// Per-worker engine telemetry, accumulated as plain (non-atomic) field
/// increments on the per-fault hot path and flushed to the global
/// metrics registry at shard granularity via
/// [`ScratchCounters::flush_to_metrics`]. The fields are maintained
/// unconditionally — an untaken branch costs more than the add — so the
/// enabled/disabled telemetry paths stay identical inside the cone walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchCounters {
    /// Faults pushed through [`CampaignPlan::detect`] /
    /// [`CampaignPlan::detect_observed`] (including unexcited ones).
    pub faults_evaluated: u64,
    /// Faults whose injected value differed from golden at the root.
    pub excitations: u64,
    /// Cone walks cut short because the event frontier died.
    pub horizon_exits: u64,
    /// Scratch cells restored through the touched-list undo log (the
    /// summed undo-list depth; divide by `excitations` for the mean).
    pub undo_writes: u64,
    /// Deepest single undo list seen.
    pub undo_depth_max: u64,
    /// Packed observability walks performed (one per live site per
    /// chunk on the PPSFP path).
    pub obs_walks: u64,
    /// Observability words served from the per-chunk site cache instead
    /// of walking (sa0/sa1/pin faults sharing their site's walk).
    pub obs_cache_hits: u64,
    /// Cone members skipped without evaluation because no fanin changed
    /// (the event-driven stamp check).
    pub stamp_skips: u64,
    /// Faults dropped from their campaign at the first detecting word.
    pub dropped: u64,
    /// Nets whose observability word was produced by critical-path
    /// tracing (per-edge sensitization, no event-driven walk) — one per
    /// net memoized per chunk on the tracing path.
    pub traced_nets: u64,
    /// Reconvergent-stem observability walks the tracing path fell back
    /// to (each shared by every fault in the stem's fanout-free region).
    pub stem_fallbacks: u64,
}

impl ScratchCounters {
    /// Adds the accumulated figures to the global `fault.*` metrics and
    /// zeroes the local counters. Call once per shard/chunk — never per
    /// fault — so the registry mutex stays off the hot path.
    pub fn flush_to_metrics(&mut self) {
        if rescue_telemetry::enabled() {
            metrics::counter("fault.faults_evaluated").add(self.faults_evaluated);
            metrics::counter("fault.excitations").add(self.excitations);
            metrics::counter("fault.horizon_exits").add(self.horizon_exits);
            metrics::counter("fault.undo_writes").add(self.undo_writes);
            metrics::counter("fault.obs_walks").add(self.obs_walks);
            metrics::counter("fault.obs_cache_hits").add(self.obs_cache_hits);
            metrics::counter("fault.stamp_skips").add(self.stamp_skips);
            metrics::counter("fault.dropped").add(self.dropped);
            metrics::counter("fault.traced_nets").add(self.traced_nets);
            metrics::counter("fault.stem_fallbacks").add(self.stem_fallbacks);
            metrics::histogram("fault.undo_depth_max", &metrics::pow2_bounds(16))
                .record(self.undo_depth_max);
        }
        *self = ScratchCounters::default();
    }
}

/// Reusable per-worker scratch: a value array mirroring the chunk
/// golden, the touched-list undo log, the event stamps of the packed
/// walk and the per-chunk observability cache. No allocation per fault.
/// Generic over the packed lane width; [`FaultScratch`] is the 64-lane
/// `u64` instantiation every scalar-width campaign uses.
#[derive(Debug, Clone)]
pub struct WideScratch<Wd: SimWord> {
    val: Vec<Wd>,
    touched: Vec<u32>,
    /// Event stamps: `stamp[g] == walk_id` marks a fanin of `g` changed
    /// during the current packed walk.
    stamp: Vec<u32>,
    walk_id: u32,
    /// One-entry observability cache: the last walked root of the
    /// current chunk (`u32::MAX` = empty, reset by
    /// [`WideScratch::load_golden`]) and its observability word.
    obs_root: u32,
    obs_word: Wd,
    /// Golden-chunk tag of the value array (`u32::MAX` = untagged):
    /// [`WideScratch::load_chunk`] skips the full-design reload when the
    /// requested chunk is already resident. Crate-visible so
    /// [`crate::trace::TraceScratch`] can share the tag.
    pub(crate) loaded_chunk: u32,
    /// Engine telemetry accumulated by this worker (see
    /// [`ScratchCounters`]).
    pub counters: ScratchCounters,
}

/// The 64-lane `u64` [`WideScratch`].
pub type FaultScratch = WideScratch<u64>;

impl<Wd: SimWord> WideScratch<Wd> {
    /// Scratch for a design of `len` gates.
    pub fn new(len: usize) -> Self {
        WideScratch {
            val: vec![Wd::ZERO; len],
            touched: Vec::new(),
            stamp: vec![0; len],
            walk_id: 0,
            obs_root: u32::MAX,
            obs_word: Wd::ZERO,
            loaded_chunk: u32::MAX,
            counters: ScratchCounters::default(),
        }
    }

    /// Loads a chunk's golden values (call once per chunk, not per fault).
    pub fn load_golden(&mut self, golden: &[Wd]) {
        self.val.copy_from_slice(golden);
        self.touched.clear();
        self.obs_root = u32::MAX;
        // Manual loads carry no chunk identity; only load_chunk tags.
        self.loaded_chunk = u32::MAX;
    }

    /// [`WideScratch::load_golden`] keyed by golden-chunk index: when
    /// `chunk` is the chunk already resident, the full-design reload —
    /// the dominant per-(fault-range, chunk) cost on warm campaigns —
    /// collapses to one tag compare, and the per-chunk observability
    /// cache stays warm too. Sound because every detect call restores
    /// `val == golden` through the touched-list undo before returning,
    /// so a matching tag proves the value array is still the chunk's
    /// golden image. `chunk` must not be `u32::MAX` (the untagged
    /// sentinel).
    pub fn load_chunk(&mut self, chunk: u32, golden: &[Wd]) {
        debug_assert_ne!(chunk, u32::MAX, "u32::MAX is the untagged sentinel");
        if self.loaded_chunk == chunk {
            return;
        }
        self.load_golden(golden);
        self.loaded_chunk = chunk;
    }

    /// A fresh stamp value, clearing the stamp array on the (once per
    /// 2^32 walks) wrap so stale stamps can never alias.
    fn next_walk_id(&mut self) -> u32 {
        if self.walk_id == u32::MAX {
            self.walk_id = 0;
            self.stamp.fill(0);
        }
        self.walk_id += 1;
        self.walk_id
    }

    fn undo(&mut self, golden: &[Wd]) {
        let depth = self.touched.len() as u64;
        self.counters.undo_writes += depth;
        self.counters.undo_depth_max = self.counters.undo_depth_max.max(depth);
        for &t in &self.touched {
            self.val[t as usize] = golden[t as usize];
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::cone::comb_fanout_cone;
    use rescue_netlist::generate;

    #[test]
    fn plan_capacity_boundary() {
        assert_eq!(ensure_plan_capacity(0), Ok(()));
        assert_eq!(ensure_plan_capacity(MAX_PLAN_ENTRIES), Ok(()));
        let err = ensure_plan_capacity(MAX_PLAN_ENTRIES + 1).unwrap_err();
        assert_eq!(
            err,
            FaultError::PlanTooLarge {
                entries: MAX_PLAN_ENTRIES + 1,
                limit: MAX_PLAN_ENTRIES,
            }
        );
        assert!(err.to_string().contains("u32 offset limit"));
    }

    #[test]
    fn plan_cones_match_netlist_comb_fanout_cones() {
        let net = generate::random_logic(8, 120, 4, 77);
        let compiled = CompiledNetlist::new(&net);
        let faults: Vec<Fault> = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        for fault in &faults {
            let root = fault.site().gate();
            let mut got: Vec<usize> = plan
                .cone_of(root.index())
                .expect("root in plan")
                .iter()
                .map(|&g| g as usize)
                .collect();
            got.push(root.index());
            got.sort_unstable();
            let mut want: Vec<usize> = comb_fanout_cone(&net, &[root])
                .iter()
                .map(|g| g.index())
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "cone of {root}");
        }
    }

    #[test]
    fn cones_are_topologically_sorted_after_root() {
        let net = generate::random_logic(6, 80, 3, 9);
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        for fault in &faults {
            let root = fault.site().gate().index();
            let cone = plan.cone_of(root).unwrap();
            let mut prev = compiled.topo_pos(root);
            for &g in cone {
                let pos = compiled.topo_pos(g as usize);
                assert!(pos > prev, "cone must ascend strictly past the root");
                prev = pos;
            }
        }
    }

    #[test]
    fn detect_observed_matches_full_resim_diffs() {
        let net = generate::random_logic(7, 100, 4, 33);
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        let words: Vec<u64> = (0..7).map(|i| 0x5bd1_e995u64.wrapping_mul(i + 3)).collect();
        let mut golden = Vec::new();
        compiled.eval_words_into(&words, None, &mut golden).unwrap();
        // Split the outputs into two arbitrary observer groups.
        let pos = compiled.po_drivers();
        let (a, b): (Vec<u32>, Vec<u32>) =
            pos.iter()
                .enumerate()
                .fold((Vec::new(), Vec::new()), |(mut a, mut b), (i, &g)| {
                    if i % 2 == 0 {
                        a.push(g);
                    } else {
                        b.push(g);
                    }
                    (a, b)
                });
        let obs = ObserverGroups::new(compiled.len(), &a, &b);
        let slow = crate::reference::ReferenceFaultSimulator::new(&net);
        let mut scratch = FaultScratch::new(compiled.len());
        scratch.load_golden(&golden);
        for &fault in &faults {
            let (ma, mb) = plan.detect_observed(&compiled, &golden, &mut scratch, fault, &obs);
            let faulty = slow.with_stuck(&net, &words, fault);
            let want_a = a
                .iter()
                .fold(0u64, |m, &g| m | (golden[g as usize] ^ faulty[g as usize]));
            let want_b = b
                .iter()
                .fold(0u64, |m, &g| m | (golden[g as usize] ^ faulty[g as usize]));
            assert_eq!((ma, mb), (want_a, want_b), "{fault}");
            // Both groups together reproduce plain detection.
            assert_eq!(
                ma | mb,
                plan.detect(&compiled, &golden, &mut scratch, fault),
                "{fault}"
            );
        }
    }

    #[test]
    fn scratch_undo_restores_golden() {
        let net = generate::c17();
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        let words: Vec<u64> = (0..5).map(|i| 0xdead_beef_u64 << i).collect();
        let mut golden = Vec::new();
        compiled.eval_words_into(&words, None, &mut golden).unwrap();
        let mut scratch = FaultScratch::new(compiled.len());
        scratch.load_golden(&golden);
        for &fault in &faults {
            plan.detect(&compiled, &golden, &mut scratch, fault);
            assert_eq!(scratch.val, golden, "scratch must be golden after {fault}");
            assert!(scratch.touched.is_empty());
        }
    }
}
