//! Incremental single-fault propagation over the compiled arena.
//!
//! The hot path of every stuck-at campaign is "given the chunk's golden
//! words, which patterns see this fault at an output?". The classic
//! answer re-simulates the whole netlist per fault; this engine instead:
//!
//! 1. **memoizes the combinational fanout cone** of each fault site in a
//!    [`CampaignPlan`] (sa0/sa1 at the same site share one cone, stored
//!    as a flat CSR sorted by topological position, root excluded);
//! 2. **injects** the fault at its root over a scratch value array that
//!    equals the chunk's golden words everywhere;
//! 3. **resimulates only the cone**, in levelized order, tracking the
//!    largest topological position any fault effect can still reach
//!    (the *event horizon*) and breaking out as soon as the walk passes
//!    it — the event-driven early exit;
//! 4. **undoes** its writes through a touched list, so the scratch array
//!    is golden again without an `O(gates)` copy or a fresh allocation.
//!
//! Verdicts are bit-identical to full resimulation: gates outside the
//! combinational fanout cone cannot change (DFF outputs hold 0 in packed
//! word evaluation, so effects never cross a sequential edge within a
//! chunk), and cone gates are evaluated with the same kernels in the
//! same order.

use crate::model::{Fault, FaultSite};
use rescue_netlist::GateKind;
use rescue_sim::compiled::CompiledNetlist;
use rescue_telemetry::metrics;

/// Memoized per-site fanout cones for one campaign's fault list.
///
/// Built once per campaign ([`CampaignPlan::build`]) and shared read-only
/// by all workers; the per-fault state lives in [`FaultScratch`].
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Per gate: index into `cone_offsets`, `u32::MAX` when the gate is
    /// not a fault-site root in this plan.
    cone_index: Vec<u32>,
    cone_offsets: Vec<u32>,
    /// Concatenated cones, each sorted by topological position and
    /// excluding its root.
    cone_gates: Vec<u32>,
}

impl CampaignPlan {
    /// Computes (and deduplicates) the combinational fanout cone of every
    /// fault site in `faults`.
    pub fn build(compiled: &CompiledNetlist, faults: &[Fault]) -> Self {
        let n = compiled.len();
        let mut plan = CampaignPlan {
            cone_index: vec![u32::MAX; n],
            cone_offsets: vec![0],
            cone_gates: Vec::new(),
        };
        let mut seen = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut members: Vec<u32> = Vec::new();
        // Cone sizes feed the `fault.cone_size` histogram: build is cold
        // (once per campaign), so recording per cone here costs nothing
        // on the per-fault hot path.
        let cone_hist = rescue_telemetry::enabled()
            .then(|| metrics::histogram("fault.cone_size", &metrics::pow2_bounds(16)));
        for fault in faults {
            let root = fault.site().gate().index();
            if plan.cone_index[root] != u32::MAX {
                continue; // sa0/sa1 (and pin faults) at one gate share a cone
            }
            plan.cone_index[root] = plan.cone_offsets.len() as u32 - 1;
            // DFS over combinational fanout edges; DFF consumers hold
            // state, so fault effects stop at the D-pin within a chunk.
            seen[root] = true;
            stack.push(root as u32);
            while let Some(g) = stack.pop() {
                for &s in compiled.fanout_of(g as usize) {
                    if seen[s as usize] || compiled.kind(s as usize) == GateKind::Dff {
                        continue;
                    }
                    seen[s as usize] = true;
                    stack.push(s);
                    members.push(s);
                }
            }
            // Kahn order enqueues a gate only after all combinational
            // predecessors, so every cone member sits after the root;
            // sorting by position yields a valid evaluation order.
            members.sort_unstable_by_key(|&g| compiled.topo_pos(g as usize));
            seen[root] = false;
            for &m in &members {
                seen[m as usize] = false;
            }
            if let Some(hist) = &cone_hist {
                hist.record(members.len() as u64);
            }
            plan.cone_gates.append(&mut members);
            plan.cone_offsets.push(plan.cone_gates.len() as u32);
        }
        plan
    }

    /// The memoized cone (topo-sorted, root excluded) for the site rooted
    /// at gate `root`, or `None` when `root` was not in the fault list.
    pub fn cone_of(&self, root: usize) -> Option<&[u32]> {
        let idx = self.cone_index[root];
        if idx == u32::MAX {
            return None;
        }
        let lo = self.cone_offsets[idx as usize] as usize;
        let hi = self.cone_offsets[idx as usize + 1] as usize;
        Some(&self.cone_gates[lo..hi])
    }

    /// Detection mask of `fault` over the chunk whose golden values are
    /// `golden`, by incremental cone resimulation. `scratch.val` must
    /// equal `golden` on entry and is restored before returning.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds and on roots absent from the plan.
    pub fn detect(
        &self,
        compiled: &CompiledNetlist,
        golden: &[u64],
        scratch: &mut FaultScratch,
        fault: Fault,
    ) -> u64 {
        let stuck = fault
            .kind()
            .stuck_value()
            .expect("stuck-at campaign requires stuck-at faults");
        let word = if stuck { u64::MAX } else { 0 };
        let root = fault.site().gate().index();

        // Inject at the root. Pin faults re-evaluate the root gate with
        // one input substituted; the reference engine never forces pins
        // of source kinds (Input has no pins to evaluate, Dff outputs 0
        // regardless), so those stay at their golden value.
        let fault_value = match fault.site() {
            FaultSite::Output(_) => word,
            FaultSite::Pin { pin, .. } => match compiled.kind(root) {
                GateKind::Input | GateKind::Dff => golden[root],
                _ => compiled.eval_word_pin_forced(root, &scratch.val, pin, word),
            },
        };
        scratch.counters.faults_evaluated += 1;
        if fault_value == golden[root] {
            return 0; // not excited on any pattern of this chunk
        }
        scratch.counters.excitations += 1;

        let mut mask = 0u64;
        scratch.val[root] = fault_value;
        scratch.touched.push(root as u32);
        if compiled.is_po(root) {
            mask |= fault_value ^ golden[root];
        }
        // Event horizon: the largest topo position a fault effect can
        // still reach. Cone gates beyond it see only golden inputs.
        let mut horizon = 0u32;
        for &s in compiled.fanout_of(root) {
            horizon = horizon.max(compiled.topo_pos(s as usize));
        }
        let cone = self
            .cone_of(root)
            .expect("fault root missing from campaign plan");
        for &g in cone {
            let gi = g as usize;
            if compiled.topo_pos(gi) > horizon {
                // Event frontier died: everything further is golden.
                scratch.counters.horizon_exits += 1;
                break;
            }
            let v = compiled.eval_word(gi, &scratch.val);
            if v == golden[gi] {
                continue;
            }
            scratch.val[gi] = v;
            scratch.touched.push(g);
            if compiled.is_po(gi) {
                mask |= v ^ golden[gi];
            }
            for &s in compiled.fanout_of(gi) {
                horizon = horizon.max(compiled.topo_pos(s as usize));
            }
        }
        scratch.undo(golden);
        mask
    }
}

/// Two observer sets over the gate array, e.g. functional outputs vs
/// checker outputs in an ISO 26262 classification campaign.
///
/// Stored as a per-gate 2-bit membership map so the cone walk tests
/// membership in O(1) without hashing.
#[derive(Debug, Clone)]
pub struct ObserverGroups {
    member: Vec<u8>,
}

impl ObserverGroups {
    /// Builds the membership map for a design of `len` gates: `group_a`
    /// and `group_b` are observed gate indices (a gate may sit in both).
    pub fn new(len: usize, group_a: &[u32], group_b: &[u32]) -> Self {
        let mut member = vec![0u8; len];
        for &g in group_a {
            member[g as usize] |= 1;
        }
        for &g in group_b {
            member[g as usize] |= 2;
        }
        ObserverGroups { member }
    }

    #[inline]
    fn of(&self, g: usize) -> u8 {
        self.member[g]
    }
}

impl CampaignPlan {
    /// Like [`CampaignPlan::detect`], but observes two arbitrary gate
    /// sets instead of the primary outputs: returns
    /// `(group_a_mask, group_b_mask)` — the patterns on which the fault
    /// effect differs from golden at any gate of the respective group.
    ///
    /// Verdicts are bit-identical to diffing a full faulty resimulation
    /// against golden at the observer gates (the classification oracle):
    /// gates outside the combinational fanout cone keep their golden
    /// value, so only cone members (and the root) can contribute.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds and on roots absent from the plan.
    pub fn detect_observed(
        &self,
        compiled: &CompiledNetlist,
        golden: &[u64],
        scratch: &mut FaultScratch,
        fault: Fault,
        observers: &ObserverGroups,
    ) -> (u64, u64) {
        let stuck = fault
            .kind()
            .stuck_value()
            .expect("stuck-at campaign requires stuck-at faults");
        let word = if stuck { u64::MAX } else { 0 };
        let root = fault.site().gate().index();
        let fault_value = match fault.site() {
            FaultSite::Output(_) => word,
            FaultSite::Pin { pin, .. } => match compiled.kind(root) {
                GateKind::Input | GateKind::Dff => golden[root],
                _ => compiled.eval_word_pin_forced(root, &scratch.val, pin, word),
            },
        };
        scratch.counters.faults_evaluated += 1;
        if fault_value == golden[root] {
            return (0, 0);
        }
        scratch.counters.excitations += 1;

        let mut mask_a = 0u64;
        let mut mask_b = 0u64;
        let mut observe = |m: u8, diff: u64| {
            if m & 1 != 0 {
                mask_a |= diff;
            }
            if m & 2 != 0 {
                mask_b |= diff;
            }
        };
        scratch.val[root] = fault_value;
        scratch.touched.push(root as u32);
        observe(observers.of(root), fault_value ^ golden[root]);
        let mut horizon = 0u32;
        for &s in compiled.fanout_of(root) {
            horizon = horizon.max(compiled.topo_pos(s as usize));
        }
        let cone = self
            .cone_of(root)
            .expect("fault root missing from campaign plan");
        for &g in cone {
            let gi = g as usize;
            if compiled.topo_pos(gi) > horizon {
                scratch.counters.horizon_exits += 1;
                break;
            }
            let v = compiled.eval_word(gi, &scratch.val);
            if v == golden[gi] {
                continue;
            }
            scratch.val[gi] = v;
            scratch.touched.push(g);
            observe(observers.of(gi), v ^ golden[gi]);
            for &s in compiled.fanout_of(gi) {
                horizon = horizon.max(compiled.topo_pos(s as usize));
            }
        }
        scratch.undo(golden);
        (mask_a, mask_b)
    }
}

/// Per-worker engine telemetry, accumulated as plain (non-atomic) field
/// increments on the per-fault hot path and flushed to the global
/// metrics registry at shard granularity via
/// [`ScratchCounters::flush_to_metrics`]. The fields are maintained
/// unconditionally — an untaken branch costs more than the add — so the
/// enabled/disabled telemetry paths stay identical inside the cone walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchCounters {
    /// Faults pushed through [`CampaignPlan::detect`] /
    /// [`CampaignPlan::detect_observed`] (including unexcited ones).
    pub faults_evaluated: u64,
    /// Faults whose injected value differed from golden at the root.
    pub excitations: u64,
    /// Cone walks cut short because the event frontier died.
    pub horizon_exits: u64,
    /// Scratch cells restored through the touched-list undo log (the
    /// summed undo-list depth; divide by `excitations` for the mean).
    pub undo_writes: u64,
    /// Deepest single undo list seen.
    pub undo_depth_max: u64,
}

impl ScratchCounters {
    /// Adds the accumulated figures to the global `fault.*` metrics and
    /// zeroes the local counters. Call once per shard/chunk — never per
    /// fault — so the registry mutex stays off the hot path.
    pub fn flush_to_metrics(&mut self) {
        if rescue_telemetry::enabled() {
            metrics::counter("fault.faults_evaluated").add(self.faults_evaluated);
            metrics::counter("fault.excitations").add(self.excitations);
            metrics::counter("fault.horizon_exits").add(self.horizon_exits);
            metrics::counter("fault.undo_writes").add(self.undo_writes);
            metrics::histogram("fault.undo_depth_max", &metrics::pow2_bounds(16))
                .record(self.undo_depth_max);
        }
        *self = ScratchCounters::default();
    }
}

/// Reusable per-worker scratch: a value array mirroring the chunk golden
/// plus the touched-list undo log. No allocation per fault.
#[derive(Debug, Clone)]
pub struct FaultScratch {
    val: Vec<u64>,
    touched: Vec<u32>,
    /// Engine telemetry accumulated by this worker (see
    /// [`ScratchCounters`]).
    pub counters: ScratchCounters,
}

impl FaultScratch {
    /// Scratch for a design of `len` gates.
    pub fn new(len: usize) -> Self {
        FaultScratch {
            val: vec![0; len],
            touched: Vec::new(),
            counters: ScratchCounters::default(),
        }
    }

    /// Loads a chunk's golden values (call once per chunk, not per fault).
    pub fn load_golden(&mut self, golden: &[u64]) {
        self.val.copy_from_slice(golden);
        self.touched.clear();
    }

    fn undo(&mut self, golden: &[u64]) {
        let depth = self.touched.len() as u64;
        self.counters.undo_writes += depth;
        self.counters.undo_depth_max = self.counters.undo_depth_max.max(depth);
        for &t in &self.touched {
            self.val[t as usize] = golden[t as usize];
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::cone::comb_fanout_cone;
    use rescue_netlist::generate;

    #[test]
    fn plan_cones_match_netlist_comb_fanout_cones() {
        let net = generate::random_logic(8, 120, 4, 77);
        let compiled = CompiledNetlist::new(&net);
        let faults: Vec<Fault> = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        for fault in &faults {
            let root = fault.site().gate();
            let mut got: Vec<usize> = plan
                .cone_of(root.index())
                .expect("root in plan")
                .iter()
                .map(|&g| g as usize)
                .collect();
            got.push(root.index());
            got.sort_unstable();
            let mut want: Vec<usize> = comb_fanout_cone(&net, &[root])
                .iter()
                .map(|g| g.index())
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "cone of {root}");
        }
    }

    #[test]
    fn cones_are_topologically_sorted_after_root() {
        let net = generate::random_logic(6, 80, 3, 9);
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        for fault in &faults {
            let root = fault.site().gate().index();
            let cone = plan.cone_of(root).unwrap();
            let mut prev = compiled.topo_pos(root);
            for &g in cone {
                let pos = compiled.topo_pos(g as usize);
                assert!(pos > prev, "cone must ascend strictly past the root");
                prev = pos;
            }
        }
    }

    #[test]
    fn detect_observed_matches_full_resim_diffs() {
        let net = generate::random_logic(7, 100, 4, 33);
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        let words: Vec<u64> = (0..7).map(|i| 0x5bd1_e995u64.wrapping_mul(i + 3)).collect();
        let mut golden = Vec::new();
        compiled.eval_words_into(&words, None, &mut golden).unwrap();
        // Split the outputs into two arbitrary observer groups.
        let pos = compiled.po_drivers();
        let (a, b): (Vec<u32>, Vec<u32>) =
            pos.iter()
                .enumerate()
                .fold((Vec::new(), Vec::new()), |(mut a, mut b), (i, &g)| {
                    if i % 2 == 0 {
                        a.push(g);
                    } else {
                        b.push(g);
                    }
                    (a, b)
                });
        let obs = ObserverGroups::new(compiled.len(), &a, &b);
        let slow = crate::reference::ReferenceFaultSimulator::new(&net);
        let mut scratch = FaultScratch::new(compiled.len());
        scratch.load_golden(&golden);
        for &fault in &faults {
            let (ma, mb) = plan.detect_observed(&compiled, &golden, &mut scratch, fault, &obs);
            let faulty = slow.with_stuck(&net, &words, fault);
            let want_a = a
                .iter()
                .fold(0u64, |m, &g| m | (golden[g as usize] ^ faulty[g as usize]));
            let want_b = b
                .iter()
                .fold(0u64, |m, &g| m | (golden[g as usize] ^ faulty[g as usize]));
            assert_eq!((ma, mb), (want_a, want_b), "{fault}");
            // Both groups together reproduce plain detection.
            assert_eq!(
                ma | mb,
                plan.detect(&compiled, &golden, &mut scratch, fault),
                "{fault}"
            );
        }
    }

    #[test]
    fn scratch_undo_restores_golden() {
        let net = generate::c17();
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&compiled, &faults);
        let words: Vec<u64> = (0..5).map(|i| 0xdead_beef_u64 << i).collect();
        let mut golden = Vec::new();
        compiled.eval_words_into(&words, None, &mut golden).unwrap();
        let mut scratch = FaultScratch::new(compiled.len());
        scratch.load_golden(&golden);
        for &fault in &faults {
            plan.detect(&compiled, &golden, &mut scratch, fault);
            assert_eq!(scratch.val, golden, "scratch must be golden after {fault}");
            assert!(scratch.touched.is_empty());
        }
    }
}
