//! Critical-path tracing / cone-walk hybrid observability.
//!
//! [`CampaignPlan::observability_packed`] pays one event-driven cone walk
//! per *live site* per pattern word. Critical-path tracing (CPT) inverts
//! the direction: instead of pushing a flip forward from every site, it
//! pulls observability backward from the primary outputs, so every net of
//! a fanout-free region (FFR) gets its observability word from **one
//! AND** with a per-edge sensitization word — no walk at all.
//!
//! The per-edge sensitization is exact and costs one gate evaluation:
//! for a net `g` whose only combinational consumer is gate `c` via pin
//! `j`,
//!
//! ```text
//! sens(c, j) = eval(c, golden with pin j forced to !golden[g]) ^ golden[c]
//! obs[g]     = obs[c] & sens(c, j)
//! ```
//!
//! Lane `p` of `sens` is set iff flipping `g` on pattern `p` flips `c`;
//! because `g` has no other combinational path to an output, a flip of
//! `g` reaches an output exactly when it flips `c` *and* a flip of `c`
//! reaches an output. By induction over the reverse topological order
//! this makes `obs[g]` exact everywhere tracing applies:
//!
//! * **`Po`** — `g` directly drives a primary output: flipping `g` flips
//!   that output on every lane, `obs = ONES` (exact even with extra
//!   fanout).
//! * **`Dead`** — no combinational consumer and not an output: within a
//!   chunk the flip dies at the DFF `D`-pins (packed words evaluate DFF
//!   outputs to zero), `obs = ZERO`.
//! * **`Chain`** — exactly one combinational fanout edge: the AND above.
//! * **`Stem`** — two or more combinational fanout edges: the branches
//!   may *reconverge* downstream, where single-path tracing is no longer
//!   exact (two wrongs can re-cancel). Here the hybrid falls back to the
//!   existing exact event-driven walk
//!   ([`CampaignPlan::observability_packed`]) — once per stem per chunk,
//!   **shared by every fault in the FFR below it** — so the hybrid is
//!   bit-identical to the scalar oracle by construction.
//!
//! The stems a fault list can reach are identified once per plan by
//! [`TracePlan::build`]'s structural stem-region analysis on the CSR
//! netlist (an `O(gates)` memoized chain ascent), and their cones are
//! memoized alongside the fault cones so the fallback walk has a plan to
//! walk. Per chunk, observability words are memoized per net in
//! [`TraceScratch`] (epoch-tagged, no clearing cost), so all faults a
//! worker holds share each traced net and each stem walk.
//!
//! Equivalence with the scalar oracle is enforced by the property tests
//! in `tests/cpt_equivalence.rs`.

use crate::engine::{CampaignPlan, WideScratch};
use crate::error::FaultError;
use crate::model::{Fault, FaultSite};
use rescue_netlist::{GateId, GateKind};
use rescue_sim::codec::{put_u64s, take_len, take_u64s};
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::wide::SimWord;
use rescue_telemetry::span;

/// Structural observability class of one net, from the compiled
/// netlist's combinational fanout-degree metadata
/// ([`CompiledNetlist::comb_fanout_degree`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetClass {
    /// Drives a primary output directly: `obs = ONES`.
    Po,
    /// No combinational consumer and not an output: `obs = ZERO`.
    Dead,
    /// Exactly one combinational fanout edge, into `consumer`'s input
    /// pin `pin`: `obs = obs[consumer] & sens(consumer, pin)`.
    Chain {
        /// The single combinational consumer gate.
        consumer: u32,
        /// Which of the consumer's input pins this net drives.
        pin: u32,
    },
    /// Two or more combinational fanout edges (possible reconvergence):
    /// observability comes from the exact event-driven fallback walk.
    Stem,
}

/// A [`CampaignPlan`] extended with the per-net structural classes and
/// the reconvergent-stem closure of the fault list, built once per
/// campaign and shared read-only by all workers.
///
/// Classes are stored packed (one `u64` per net: 2-bit tag + chain
/// consumer/pin fields) so the million-gate class arena is one
/// contiguous 8-byte-per-net array instead of a 12-byte tagged enum —
/// decoding is two shifts on access, and the arena serializes verbatim
/// into the compiled-artifact cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePlan {
    class: Vec<u64>,
    plan: CampaignPlan,
    stems: usize,
    statically_traced: usize,
}

/// 2-bit class tags of the packed per-net encoding.
const TAG_PO: u64 = 0;
const TAG_DEAD: u64 = 1;
const TAG_CHAIN: u64 = 2;
const TAG_STEM: u64 = 3;

/// Version byte of the [`TracePlan::to_bytes`] wire format.
const TRACE_WIRE_VERSION: u8 = 1;

#[inline]
fn encode_class(c: NetClass) -> u64 {
    match c {
        NetClass::Po => TAG_PO,
        NetClass::Dead => TAG_DEAD,
        NetClass::Chain { consumer, pin } => {
            TAG_CHAIN | ((consumer as u64) << 2) | ((pin as u64) << 34)
        }
        NetClass::Stem => TAG_STEM,
    }
}

#[inline]
fn decode_class(w: u64) -> NetClass {
    match w & 3 {
        TAG_PO => NetClass::Po,
        TAG_DEAD => NetClass::Dead,
        TAG_CHAIN => NetClass::Chain {
            consumer: (w >> 2) as u32,
            pin: (w >> 34) as u32,
        },
        _ => NetClass::Stem,
    }
}

/// Structural class of one net — a pure function of the compiled CSR,
/// which is what makes classification embarrassingly parallel.
fn classify_gate(compiled: &CompiledNetlist, g: usize) -> u64 {
    if compiled.is_po(g) {
        return TAG_PO;
    }
    encode_class(match compiled.comb_fanout_degree(g) {
        0 => NetClass::Dead,
        1 => {
            let consumer = *compiled
                .fanout_of(g)
                .iter()
                .find(|&&s| compiled.kind(s as usize) != GateKind::Dff)
                .expect("degree 1 implies one combinational consumer");
            let pin = compiled
                .pins_of(consumer as usize)
                .iter()
                .position(|&p| p == g as u32)
                .expect("fanout edge has a matching pin") as u32;
            NetClass::Chain { consumer, pin }
        }
        _ => NetClass::Stem,
    })
}

/// Designs below this size classify serially even when workers are
/// available — thread startup would dominate.
const PARALLEL_CLASSIFY_MIN: usize = 1 << 15;

/// Classifies every net, sharded across `workers` contiguous id ranges.
/// Deterministic for any worker count: each net's class is a pure
/// per-gate function and shards concatenate in id order.
fn classify_all(compiled: &CompiledNetlist, workers: usize) -> Vec<u64> {
    let n = compiled.len();
    let w = workers.max(1);
    let _span = span!("plan.classify", gates = n);
    if w == 1 || n < PARALLEL_CLASSIFY_MIN {
        return (0..n).map(|g| classify_gate(compiled, g)).collect();
    }
    let chunk = n.div_ceil(w);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(n);
                s.spawn(move || {
                    (lo..hi)
                        .map(|g| classify_gate(compiled, g))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut class = Vec::with_capacity(n);
        for h in handles {
            class.extend(h.join().expect("classify worker panicked"));
        }
        class
    })
}

impl TracePlan {
    /// Classifies every net, finds the stems the chain ascents of
    /// `faults` terminate at, and builds the underlying [`CampaignPlan`]
    /// over the fault roots *plus* those stems (pseudo-roots, so the
    /// fallback walk has memoized cones even for stems that are not
    /// fault sites themselves).
    pub fn build(compiled: &CompiledNetlist, faults: &[Fault]) -> Self {
        Self::build_with(compiled, faults, 1)
    }

    /// [`TracePlan::build`] with classification, the PO-reachability
    /// sweep and cone construction sharded across `workers` threads.
    /// Bit-identical to the serial build for any worker count (the chain
    /// ascent stays serial — it is `O(gates)` with a shared memo whose
    /// stem order fixes the pseudo-root list).
    pub fn build_with(compiled: &CompiledNetlist, faults: &[Fault], workers: usize) -> Self {
        let n = compiled.len();
        let class = classify_all(compiled, workers);

        // Memoized chain ascent from every fault root: terminal class 1
        // (`Po`/`Dead`/unreachable — fully traced, never needs a walk)
        // or 2 (terminates at a reconvergent stem). Each net is resolved
        // once, so the sweep is O(gates) for any fault-list size.
        let reachable = crate::engine::po_reachable_with(compiled, workers);
        let mut term = vec![0u8; n];
        let mut needed: Vec<u32> = Vec::new();
        let mut path: Vec<u32> = Vec::new();
        let mut statically_traced = 0usize;
        for fault in faults {
            let root = fault.site().gate().index();
            let mut g = root;
            let t = loop {
                if term[g] != 0 {
                    break term[g];
                }
                if !reachable[g] {
                    break 1; // obs is ZERO without tracing or walking
                }
                match decode_class(class[g]) {
                    NetClass::Chain { consumer, .. } => {
                        path.push(g as u32);
                        g = consumer as usize;
                    }
                    NetClass::Stem => {
                        needed.push(g as u32);
                        break 2;
                    }
                    NetClass::Po | NetClass::Dead => break 1,
                }
            };
            term[g] = t;
            for p in path.drain(..) {
                term[p as usize] = t;
            }
            if t == 1 {
                statically_traced += 1;
            }
        }
        let stems = needed.len();
        // One shared plan over fault roots + stem pseudo-roots: building
        // both cone sets in one pass keeps the dedup (sa0/sa1/pins per
        // site, faults rooted at a needed stem) free. The hybrid never
        // walks anything but PO-reachable stem cones, so the plan is
        // built over the observable restriction — the full fanout cones
        // (which dominate plan construction on big circuits) are never
        // materialized.
        let mut roots: Vec<Fault> = faults.to_vec();
        roots.extend(
            needed
                .iter()
                .map(|&s| Fault::stuck_at(FaultSite::Output(GateId(s as usize)), false)),
        );
        let plan = CampaignPlan::build_observable_with(compiled, &roots, workers);
        TracePlan {
            class,
            plan,
            stems,
            statically_traced,
        }
    }

    /// Serializes the trace plan for the compiled-artifact cache.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + self.class.len() * 8);
        buf.push(TRACE_WIRE_VERSION);
        buf.extend_from_slice(&(self.stems as u64).to_le_bytes());
        buf.extend_from_slice(&(self.statically_traced as u64).to_le_bytes());
        put_u64s(&mut buf, &self.class);
        buf.extend_from_slice(&self.plan.to_bytes());
        buf
    }

    /// Deserializes [`TracePlan::to_bytes`] output; `None` on version
    /// mismatch or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        if *bytes.get(off)? != TRACE_WIRE_VERSION {
            return None;
        }
        off += 1;
        let stems = take_len(bytes, &mut off)?;
        let statically_traced = take_len(bytes, &mut off)?;
        let class = take_u64s(bytes, &mut off)?;
        let plan = CampaignPlan::from_bytes(bytes.get(off..)?)?;
        Some(TracePlan {
            class,
            plan,
            stems,
            statically_traced,
        })
    }

    /// The structural class of net `g`.
    #[inline]
    pub fn class_of(&self, g: usize) -> NetClass {
        decode_class(self.class[g])
    }

    /// The underlying [`CampaignPlan`] (fault cones + stem pseudo-root
    /// cones).
    pub fn plan(&self) -> &CampaignPlan {
        &self.plan
    }

    /// Reconvergent stems the fault list's chain ascents terminate at
    /// (the nets whose observability needs the fallback walk).
    pub fn stems(&self) -> usize {
        self.stems
    }

    /// Faults of the build list whose detection never needs an
    /// event-driven walk: their chain ascent ends at a `Po`/`Dead` net
    /// or leaves the PO-reachable region.
    pub fn statically_traced(&self) -> usize {
        self.statically_traced
    }

    /// Observability word of net `root`, memoized per chunk: chain
    /// ascent to the first memoized/terminal net, then one sensitization
    /// AND per descended link (skipped entirely once the word is all
    /// zero — it can only shrink).
    fn obs_of<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        golden: &[Wd],
        scratch: &mut TraceScratch<Wd>,
        root: usize,
    ) -> Result<Wd, FaultError> {
        debug_assert!(scratch.path.is_empty());
        let mut g = root;
        let mut val = loop {
            if scratch.obs_epoch[g] == scratch.epoch {
                break scratch.obs[g];
            }
            match decode_class(self.class[g]) {
                NetClass::Chain { consumer, .. } => {
                    scratch.path.push(g as u32);
                    g = consumer as usize;
                }
                NetClass::Po => {
                    scratch.memoize(g, Wd::ONES);
                    scratch.inner.counters.traced_nets += 1;
                    break Wd::ONES;
                }
                NetClass::Dead => {
                    scratch.memoize(g, Wd::ZERO);
                    scratch.inner.counters.traced_nets += 1;
                    break Wd::ZERO;
                }
                NetClass::Stem => {
                    let w =
                        self.plan
                            .observability_packed(compiled, golden, &mut scratch.inner, g)?;
                    scratch.memoize(g, w);
                    scratch.inner.counters.stem_fallbacks += 1;
                    break w;
                }
            }
        };
        while let Some(gc) = scratch.path.pop() {
            let gi = gc as usize;
            if !val.is_zero() {
                let NetClass::Chain { consumer, pin } = decode_class(self.class[gi]) else {
                    unreachable!("only chain nets are pushed on the ascent path");
                };
                let c = consumer as usize;
                let sens =
                    compiled.eval_word_pin_forced(c, golden, pin as usize, !golden[gi]) ^ golden[c];
                val &= sens;
            }
            scratch.memoize(gi, val);
            scratch.inner.counters.traced_nets += 1;
        }
        Ok(val)
    }

    /// Hybrid CPT detection mask of `fault` over the chunk whose golden
    /// values are `golden`: bit-identical to
    /// [`CampaignPlan::detect_packed`] (and hence to the scalar oracle),
    /// but observability comes from backward tracing wherever the net
    /// sits in a fanout-free region, with the event-driven walk reserved
    /// for reconvergent stems — one per stem per chunk, shared by the
    /// whole FFR below it.
    ///
    /// `scratch` must have seen [`TraceScratch::load_golden`] for this
    /// chunk; the inner value array is golden again on return.
    ///
    /// # Errors
    ///
    /// [`FaultError::UnplannedSite`] when the fault's root was not in
    /// the list this plan was built from.
    ///
    /// # Panics
    ///
    /// Panics on non-stuck-at kinds.
    pub fn detect_traced<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        golden: &[Wd],
        scratch: &mut TraceScratch<Wd>,
        fault: Fault,
    ) -> Result<Wd, FaultError> {
        scratch.inner.counters.faults_evaluated += 1;
        let root = fault.site().gate().index();
        if !self.plan.planned(root) {
            return Err(FaultError::UnplannedSite { gate: root });
        }
        if !self.plan.po_reachable_gate(root) {
            return Ok(Wd::ZERO);
        }
        let excitation = CampaignPlan::excitation_word(compiled, golden, fault);
        if excitation.is_zero() {
            return Ok(Wd::ZERO); // not excited on any pattern of this chunk
        }
        scratch.inner.counters.excitations += 1;
        Ok(self.obs_of(compiled, golden, scratch, root)? & excitation)
    }
}

/// Per-worker scratch for the hybrid tracer: the inner [`WideScratch`]
/// (value array + stamps for the stem fallback walks) plus the
/// epoch-tagged per-net observability memo. Epoch tagging makes
/// [`TraceScratch::load_golden`] O(1) — no per-chunk memo clearing.
#[derive(Debug, Clone)]
pub struct TraceScratch<Wd: SimWord> {
    /// The wrapped walk scratch (public so campaigns can flush its
    /// [`crate::engine::ScratchCounters`]).
    pub inner: WideScratch<Wd>,
    obs: Vec<Wd>,
    obs_epoch: Vec<u32>,
    epoch: u32,
    /// Reusable chain-ascent stack.
    path: Vec<u32>,
}

impl<Wd: SimWord> TraceScratch<Wd> {
    /// Scratch for a design of `len` gates.
    pub fn new(len: usize) -> Self {
        TraceScratch {
            inner: WideScratch::new(len),
            obs: vec![Wd::ZERO; len],
            obs_epoch: vec![0; len],
            epoch: 0,
            path: Vec::new(),
        }
    }

    /// Loads a chunk's golden values and invalidates the per-net memo
    /// (call once per chunk, not per fault).
    pub fn load_golden(&mut self, golden: &[Wd]) {
        self.inner.load_golden(golden);
        if self.epoch == u32::MAX {
            // Wraparound (once per 2^32 chunks): clear so stale epochs
            // can never alias.
            self.obs_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// [`TraceScratch::load_golden`] keyed by golden-chunk index: when
    /// `chunk` is already resident, both the value reload and the epoch
    /// bump are skipped — so the per-net observability memo (including
    /// every stem fallback walk recorded in it) stays warm across all
    /// the fault ranges that share the chunk, not just within one.
    /// Soundness mirrors [`WideScratch::load_chunk`]: detections undo
    /// their writes, and the memo is a pure function of the chunk's
    /// golden values.
    pub fn load_chunk(&mut self, chunk: u32, golden: &[Wd]) {
        debug_assert_ne!(chunk, u32::MAX, "u32::MAX is the untagged sentinel");
        if self.inner.loaded_chunk == chunk {
            return;
        }
        self.load_golden(golden);
        self.inner.loaded_chunk = chunk;
    }

    #[inline]
    fn memoize(&mut self, g: usize, word: Wd) {
        self.obs[g] = word;
        self.obs_epoch[g] = self.epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    #[test]
    fn classes_partition_the_design() {
        let net = generate::random_logic(8, 200, 4, 7);
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let tplan = TracePlan::build(&compiled, &faults);
        for g in 0..compiled.len() {
            match tplan.class_of(g) {
                NetClass::Po => assert!(compiled.is_po(g)),
                NetClass::Dead => {
                    assert!(!compiled.is_po(g));
                    assert_eq!(compiled.comb_fanout_degree(g), 0);
                }
                NetClass::Chain { consumer, pin } => {
                    assert!(!compiled.is_po(g));
                    assert_eq!(compiled.comb_fanout_degree(g), 1);
                    assert_eq!(compiled.pins_of(consumer as usize)[pin as usize], g as u32);
                }
                NetClass::Stem => {
                    assert!(!compiled.is_po(g));
                    assert!(compiled.comb_fanout_degree(g) >= 2);
                }
            }
        }
        assert!(
            tplan.statically_traced() + tplan.stems() > 0,
            "a 200-gate random design exercises both paths"
        );
    }

    #[test]
    fn stem_pseudo_roots_have_cones() {
        let net = generate::random_logic(8, 200, 4, 7);
        let compiled = CompiledNetlist::new(&net);
        let faults = crate::universe::stuck_at_universe(&net);
        let tplan = TracePlan::build(&compiled, &faults);
        // Every PO-reachable chain ascent from a fault root must land on
        // a planned net, so the fallback walk never misses a cone.
        for fault in &faults {
            let mut g = fault.site().gate().index();
            loop {
                match tplan.class_of(g) {
                    NetClass::Chain { consumer, .. } => g = consumer as usize,
                    NetClass::Stem => {
                        if tplan.plan().po_reachable_gate(g) {
                            assert!(tplan.plan().planned(g), "stem {g} missing from plan");
                        }
                        break;
                    }
                    _ => break,
                }
            }
        }
    }
}
