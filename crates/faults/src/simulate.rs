//! Serial and parallel-pattern fault simulation with fault dropping.

use crate::model::{BridgingFault, Fault, FaultKind, FaultSite};
use rescue_netlist::{GateId, GateKind, Netlist};
use rescue_sim::logic::{eval_gate_bool, eval_gate_word};
use rescue_sim::parallel::pack_patterns;

/// Outcome of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    faults: Vec<Fault>,
    /// For each fault: index of the first detecting pattern, or `None`.
    first_detection: Vec<Option<usize>>,
    patterns: usize,
}

impl CampaignReport {
    /// Assembles a report from raw verdicts (used by alternative engines
    /// such as the slicing-accelerated campaign in `rescue-safety`).
    ///
    /// # Panics
    ///
    /// Panics when the verdict vector length differs from the fault list.
    pub fn from_parts(
        faults: Vec<Fault>,
        first_detection: Vec<Option<usize>>,
        patterns: usize,
    ) -> Self {
        assert_eq!(faults.len(), first_detection.len(), "one verdict per fault");
        CampaignReport {
            faults,
            first_detection,
            patterns,
        }
    }

    /// The fault list the campaign ran over.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// First detecting pattern per fault (`None` = undetected).
    pub fn first_detection(&self) -> &[Option<usize>] {
        &self.first_detection
    }

    /// Number of patterns applied.
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Detected fault count.
    pub fn detected_count(&self) -> usize {
        self.first_detection.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in `[0, 1]` (1.0 for an empty fault list).
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 1.0;
        }
        self.detected_count() as f64 / self.faults.len() as f64
    }

    /// The faults no pattern detected.
    pub fn undetected(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.first_detection)
            .filter(|(_, d)| d.is_none())
            .map(|(f, _)| *f)
            .collect()
    }
}

/// Levelized fault simulator over one netlist.
///
/// Supports stuck-at faults on outputs and pins, transition-delay faults
/// via pattern pairs, bridging faults, and sequential (multi-cycle)
/// stuck-at simulation.
///
/// # Examples
///
/// See [`crate`] docs for a complete campaign example.
#[derive(Debug, Clone)]
pub struct FaultSimulator {
    order: Vec<GateId>,
}

impl FaultSimulator {
    /// Prepares a simulator for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        FaultSimulator {
            order: netlist.levelize().order().to_vec(),
        }
    }

    /// Golden (fault-free) 64-way evaluation. `words[i]` is input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the primary-input count.
    pub fn golden(&self, netlist: &Netlist, words: &[u64]) -> Vec<u64> {
        self.eval_with(netlist, words, None, None)
    }

    /// Evaluates 64 packed patterns with `fault` active; returns all gate
    /// values. Only stuck-at kinds are meaningful here.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch or a non-stuck-at fault kind.
    pub fn with_stuck(&self, netlist: &Netlist, words: &[u64], fault: Fault) -> Vec<u64> {
        let value = fault
            .kind()
            .stuck_value()
            .expect("with_stuck requires a stuck-at fault");
        self.eval_with(netlist, words, Some((fault.site(), value)), None)
    }

    /// Evaluates with a wired-AND/OR bridge active (two-pass resolution).
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn with_bridge(&self, netlist: &Netlist, words: &[u64], bridge: BridgingFault) -> Vec<u64> {
        let golden = self.golden(netlist, words);
        let va = golden[bridge.a.index()];
        let vb = golden[bridge.b.index()];
        let v = if bridge.wired_and { va & vb } else { va | vb };
        self.eval_with(netlist, words, None, Some((bridge, v)))
    }

    fn eval_with(
        &self,
        netlist: &Netlist,
        words: &[u64],
        stuck: Option<(FaultSite, bool)>,
        bridge: Option<(BridgingFault, u64)>,
    ) -> Vec<u64> {
        let pis = netlist.primary_inputs();
        assert_eq!(words.len(), pis.len(), "input word count mismatch");
        let mut values = vec![0u64; netlist.len()];
        for (i, &pi) in pis.iter().enumerate() {
            values[pi.index()] = words[i];
        }
        let (stuck_out, stuck_pin, stuck_word) = match stuck {
            Some((FaultSite::Output(g), v)) => (Some(g), None, if v { u64::MAX } else { 0 }),
            Some((FaultSite::Pin { gate, pin }, v)) => {
                (None, Some((gate, pin)), if v { u64::MAX } else { 0 })
            }
            None => (None, None, 0),
        };
        let mut buf: Vec<u64> = Vec::with_capacity(4);
        for &id in &self.order {
            let g = netlist.gate(id);
            match g.kind() {
                GateKind::Input => {}
                GateKind::Dff => values[id.index()] = 0,
                kind => {
                    buf.clear();
                    buf.extend(g.inputs().iter().map(|&p| values[p.index()]));
                    if let Some((fg, fp)) = stuck_pin {
                        if fg == id {
                            buf[fp] = stuck_word;
                        }
                    }
                    values[id.index()] = eval_gate_word(kind, &buf);
                }
            }
            if stuck_out == Some(id) {
                values[id.index()] = stuck_word;
            }
            if let Some((br, v)) = bridge {
                if br.a == id || br.b == id {
                    values[id.index()] = v;
                }
            }
        }
        values
    }

    /// Bitmask of patterns (bit `p`) on which `fault` is detected at a
    /// primary output, given the golden values for the same words.
    pub fn detection_mask(
        &self,
        netlist: &Netlist,
        words: &[u64],
        golden: &[u64],
        fault: Fault,
    ) -> u64 {
        let faulty = self.with_stuck(netlist, words, fault);
        netlist
            .primary_outputs()
            .iter()
            .fold(0u64, |m, (_, g)| m | (golden[g.index()] ^ faulty[g.index()]))
    }

    /// Runs a full stuck-at campaign with fault dropping: each fault is
    /// simulated only until its first detection.
    ///
    /// # Panics
    ///
    /// Panics if any pattern width differs from the primary-input count.
    pub fn campaign(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
    ) -> CampaignReport {
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let words = pack_patterns(chunk);
            let golden = self.golden(netlist, &words);
            for (fi, &fault) in faults.iter().enumerate() {
                if first_detection[fi].is_some() {
                    continue; // fault dropping
                }
                let mask = self.detection_mask(netlist, &words, &golden, fault);
                let mask = if chunk.len() < 64 {
                    mask & ((1u64 << chunk.len()) - 1)
                } else {
                    mask
                };
                if mask != 0 {
                    first_detection[fi] =
                        Some(chunk_idx * 64 + mask.trailing_zeros() as usize);
                }
            }
        }
        CampaignReport {
            faults: faults.to_vec(),
            first_detection,
            patterns: patterns.len(),
        }
    }

    /// Multi-threaded stuck-at campaign: splits the fault list across
    /// `threads` workers (scoped threads, shared read-only golden data).
    /// Produces exactly the same verdicts as [`FaultSimulator::campaign`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a pattern width mismatches.
    pub fn campaign_parallel(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        threads: usize,
    ) -> CampaignReport {
        assert!(threads > 0, "need at least one worker");
        // Precompute packed words and golden values per chunk once.
        let chunks: Vec<(Vec<u64>, Vec<u64>, usize)> = patterns
            .chunks(64)
            .map(|chunk| {
                let words = pack_patterns(chunk);
                let golden = self.golden(netlist, &words);
                (words, golden, chunk.len())
            })
            .collect();
        let verdicts = parking_lot::Mutex::new(vec![None; faults.len()]);
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let stride = 32;
                    loop {
                        let start =
                            next.fetch_add(stride, std::sync::atomic::Ordering::Relaxed);
                        if start >= faults.len() {
                            break;
                        }
                        let end = (start + stride).min(faults.len());
                        let mut local: Vec<(usize, Option<usize>)> =
                            Vec::with_capacity(end - start);
                        for (fi, &fault) in faults[start..end].iter().enumerate() {
                            let mut first = None;
                            for (ci, (words, golden, live)) in chunks.iter().enumerate() {
                                let mask =
                                    self.detection_mask(netlist, words, golden, fault);
                                let mask = if *live < 64 {
                                    mask & ((1u64 << live) - 1)
                                } else {
                                    mask
                                };
                                if mask != 0 {
                                    first =
                                        Some(ci * 64 + mask.trailing_zeros() as usize);
                                    break; // fault dropping
                                }
                            }
                            local.push((start + fi, first));
                        }
                        let mut v = verdicts.lock();
                        for (i, d) in local {
                            v[i] = d;
                        }
                    }
                });
            }
        })
        .expect("campaign worker panicked");
        CampaignReport {
            faults: faults.to_vec(),
            first_detection: verdicts.into_inner(),
            patterns: patterns.len(),
        }
    }

    /// Transition-delay campaign over consecutive pattern *pairs*
    /// `(patterns[i], patterns[i+1])`: a slow-to-rise fault is detected by
    /// a pair that launches a rising transition at the site and where the
    /// late value (stuck-at-0 behaviour during capture) reaches an output.
    ///
    /// Returns the report with pattern index = index of the capture
    /// pattern.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or a non-transition fault in `faults`.
    pub fn transition_campaign(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
    ) -> CampaignReport {
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        for pair in patterns.windows(2).enumerate() {
            let (i, pats) = pair;
            let words_launch = pack_patterns(&pats[..1]);
            let words_capture = pack_patterns(&pats[1..]);
            let g_launch = self.golden(netlist, &words_launch);
            let g_capture = self.golden(netlist, &words_capture);
            for (fi, &fault) in faults.iter().enumerate() {
                if first_detection[fi].is_some() {
                    continue;
                }
                let site_gate = match fault.site() {
                    FaultSite::Output(g) => g,
                    FaultSite::Pin { .. } => panic!("transition faults sit on outputs"),
                };
                let (from, to, stuck) = match fault.kind() {
                    FaultKind::SlowToRise => (0u64, 1u64, false),
                    FaultKind::SlowToFall => (1, 0, true),
                    _ => panic!("transition_campaign requires transition faults"),
                };
                let launch_v = g_launch[site_gate.index()] & 1;
                let capture_v = g_capture[site_gate.index()] & 1;
                if launch_v != from || capture_v != to {
                    continue; // no launching transition
                }
                let eq = Fault::stuck_at(FaultSite::Output(site_gate), stuck);
                let mask = self.detection_mask(netlist, &words_capture, &g_capture, eq);
                if mask & 1 != 0 {
                    first_detection[fi] = Some(i + 1);
                }
            }
        }
        CampaignReport {
            faults: faults.to_vec(),
            first_detection,
            patterns: patterns.len(),
        }
    }

    /// Sequential stuck-at campaign: applies `stimuli` cycle by cycle to a
    /// golden and a faulty machine (both starting from the all-zero state)
    /// and reports the first cycle whose primary outputs differ.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or non-stuck-at faults.
    pub fn campaign_seq(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        stimuli: &[Vec<bool>],
    ) -> CampaignReport {
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        // Golden trajectory.
        let golden_trace = self.seq_trace(netlist, stimuli, None);
        for (fi, &fault) in faults.iter().enumerate() {
            let value = fault
                .kind()
                .stuck_value()
                .expect("campaign_seq requires stuck-at faults");
            let faulty_trace = self.seq_trace(netlist, stimuli, Some((fault.site(), value)));
            for (cycle, (g, f)) in golden_trace.iter().zip(&faulty_trace).enumerate() {
                if g != f {
                    first_detection[fi] = Some(cycle);
                    break;
                }
            }
        }
        CampaignReport {
            faults: faults.to_vec(),
            first_detection,
            patterns: stimuli.len(),
        }
    }

    fn seq_trace(
        &self,
        netlist: &Netlist,
        stimuli: &[Vec<bool>],
        stuck: Option<(FaultSite, bool)>,
    ) -> Vec<Vec<bool>> {
        let pis = netlist.primary_inputs();
        let mut state = vec![false; netlist.dffs().len()];
        let mut trace = Vec::with_capacity(stimuli.len());
        for inputs in stimuli {
            assert_eq!(inputs.len(), pis.len(), "stimulus width mismatch");
            let mut values = vec![false; netlist.len()];
            for (i, &pi) in pis.iter().enumerate() {
                values[pi.index()] = inputs[i];
            }
            for (i, &dff) in netlist.dffs().iter().enumerate() {
                values[dff.index()] = state[i];
            }
            let mut buf: Vec<bool> = Vec::with_capacity(4);
            for &id in &self.order {
                let g = netlist.gate(id);
                match g.kind() {
                    GateKind::Input | GateKind::Dff => {}
                    kind => {
                        buf.clear();
                        buf.extend(g.inputs().iter().map(|&p| values[p.index()]));
                        if let Some((FaultSite::Pin { gate, pin }, v)) = stuck {
                            if gate == id {
                                buf[pin] = v;
                            }
                        }
                        values[id.index()] = eval_gate_bool(kind, &buf);
                    }
                }
                if let Some((FaultSite::Output(g), v)) = stuck {
                    if g == id {
                        values[id.index()] = v;
                    }
                }
            }
            for (i, &dff) in netlist.dffs().iter().enumerate() {
                state[i] = values[netlist.gate(dff).inputs()[0].index()];
            }
            trace.push(rescue_sim::comb::outputs_of(netlist, &values));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::{generate, NetlistBuilder};

    fn exhaustive_patterns(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn c17_full_coverage_exhaustive() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let sim = FaultSimulator::new(&c);
        let report = sim.campaign(&c, &faults, &exhaustive_patterns(5));
        assert_eq!(
            report.coverage(),
            1.0,
            "c17 is fully testable: {:?}",
            report.undetected()
        );
        assert_eq!(report.patterns(), 32);
    }

    #[test]
    fn redundant_fault_is_undetectable() {
        // y = a OR (a AND b): the AND gate's sa0 is redundant.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let x = b.input("b");
        let g = b.and(a, x);
        let y = b.or(a, g);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        let f = Fault::stuck_at(FaultSite::Output(g), false);
        let report = sim.campaign(&n, &[f], &exhaustive_patterns(2));
        assert_eq!(report.detected_count(), 0, "redundant fault undetectable");
    }

    #[test]
    fn pin_fault_differs_from_output_fault() {
        // Fanout stem: x feeds two ANDs. A pin sa1 on one branch is not
        // the same as the stem's output sa1.
        let mut b = NetlistBuilder::new("stem");
        let x = b.input("x");
        let p = b.input("p");
        let q = b.input("q");
        let g1 = b.and(x, p);
        let g2 = b.and(x, q);
        b.output("y1", g1);
        b.output("y2", g2);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        let pats = exhaustive_patterns(3);
        let stem = Fault::stuck_at(FaultSite::Output(x), true);
        let branch = Fault::stuck_at(FaultSite::Pin { gate: g1, pin: 0 }, true);
        let r = sim.campaign(&n, &[stem, branch], &pats);
        assert_eq!(r.detected_count(), 2);
        // x=0,p=1,q=1: stem fault corrupts both outputs, branch only y1.
        let words = pack_patterns(&[vec![false, true, true]]);
        let golden = sim.golden(&n, &words);
        let fs = sim.with_stuck(&n, &words, stem);
        let fb = sim.with_stuck(&n, &words, branch);
        assert_eq!(fs[g2.index()] & 1, 1, "stem corrupts second branch");
        assert_eq!(fb[g2.index()] & 1, golden[g2.index()] & 1);
    }

    #[test]
    fn bridge_fault_detection() {
        let mut b = NetlistBuilder::new("br");
        let a = b.input("a");
        let c = b.input("c");
        let n1 = b.buf(a);
        let n2 = b.buf(c);
        b.output("y1", n1);
        b.output("y2", n2);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        // a=1, c=0: wired-AND forces both to 0 -> y1 flips.
        let words = pack_patterns(&[vec![true, false]]);
        let v = sim.with_bridge(
            &n,
            &words,
            BridgingFault {
                a: n1,
                b: n2,
                wired_and: true,
            },
        );
        assert_eq!(v[n1.index()] & 1, 0);
        let v = sim.with_bridge(
            &n,
            &words,
            BridgingFault {
                a: n1,
                b: n2,
                wired_and: false,
            },
        );
        assert_eq!(v[n2.index()] & 1, 1, "wired-OR pulls the 0 net up");
    }

    #[test]
    fn transition_faults_need_transitions() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.buf(a);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        let faults = universe::transition_universe(&n);
        // Constant stimulus: no transitions, nothing detected.
        let r = sim.transition_campaign(&n, &faults, &[vec![false], vec![false]]);
        assert_eq!(r.detected_count(), 0);
        // 0 -> 1 launches rising transitions through a and y.
        let r = sim.transition_campaign(&n, &faults, &[vec![false], vec![true]]);
        let detected: Vec<String> = faults
            .iter()
            .zip(r.first_detection())
            .filter(|(_, d)| d.is_some())
            .map(|(f, _)| f.to_string())
            .collect();
        assert!(detected.iter().any(|f| f.contains("str")), "{detected:?}");
        // slow-to-fall needs 1 -> 0.
        let r = sim.transition_campaign(&n, &faults, &[vec![true], vec![false]]);
        let has_stf = faults
            .iter()
            .zip(r.first_detection())
            .any(|(f, d)| d.is_some() && f.kind() == FaultKind::SlowToFall);
        assert!(has_stf);
    }

    #[test]
    fn sequential_campaign_detects_through_state() {
        // Shift register: a stuck fault at the serial input shows up at the
        // output only n cycles later.
        let s = generate::shift_register(3);
        let sin = s.primary_inputs()[0];
        let sim = FaultSimulator::new(&s);
        let f = Fault::stuck_at(FaultSite::Output(sin), false);
        // Drive 1s; fault forces 0s; first output divergence at cycle 3.
        let stim: Vec<Vec<bool>> = (0..6).map(|_| vec![true]).collect();
        let r = sim.campaign_seq(&s, &[f], &stim);
        assert_eq!(r.first_detection()[0], Some(3));
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let net = generate::random_logic(8, 80, 4, 5);
        let faults = universe::stuck_at_universe(&net);
        let patterns: Vec<Vec<bool>> = (0..200u32)
            .map(|p| (0..8).map(|i| p.wrapping_mul(2654435761) >> (i + 3) & 1 == 1).collect())
            .collect();
        let sim = FaultSimulator::new(&net);
        let serial = sim.campaign(&net, &faults, &patterns);
        for threads in [1, 2, 4] {
            let parallel = sim.campaign_parallel(&net, &faults, &patterns, threads);
            assert_eq!(
                parallel.first_detection(),
                serial.first_detection(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn coverage_of_empty_fault_list_is_one() {
        let c = generate::c17();
        let sim = FaultSimulator::new(&c);
        let r = sim.campaign(&c, &[], &exhaustive_patterns(5));
        assert_eq!(r.coverage(), 1.0);
    }
}
