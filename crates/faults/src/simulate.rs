//! Serial and parallel-pattern fault simulation with fault dropping.
//!
//! [`FaultSimulator`] runs on the [`CompiledNetlist`] flat arena and
//! detects stuck-at faults with the incremental cone engine from
//! [`crate::engine`]: per (fault, chunk) it resimulates only the fault
//! site's combinational fanout cone instead of the whole design, with
//! touched-list undo so campaigns allocate nothing per fault. Verdicts
//! are bit-identical to the full-resimulation oracle in
//! [`crate::reference`] (enforced by property tests).

use crate::collapse::CollapsedUniverse;
use crate::engine::{CampaignPlan, FaultScratch, WideScratch};
use crate::model::{BridgingFault, Fault, FaultKind, FaultSite};
use crate::trace::{TracePlan, TraceScratch};
use rescue_campaign::{
    ArtifactStore, Campaign, CampaignManifest, CampaignStats, DetectedSet, DropScope, DurableRun,
    ResultStore, ShardedRun, StatsDelta,
};
use rescue_netlist::{GateKind, Netlist};
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::parallel::{live_mask, pack_patterns};
use rescue_sim::wide::{pack_patterns_wide_into, PackedWord, SimWord, SUPPORTED_LANE_WIDTHS};
use rescue_telemetry::{metrics, span};
use std::time::Instant;

/// Outcome of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    faults: Vec<Fault>,
    /// For each fault: index of the first detecting pattern, or `None`.
    first_detection: Vec<Option<usize>>,
    patterns: usize,
}

impl CampaignReport {
    /// Assembles a report from raw verdicts (used by alternative engines
    /// such as the slicing-accelerated campaign in `rescue-safety`).
    ///
    /// # Panics
    ///
    /// Panics when the verdict vector length differs from the fault list.
    pub fn from_parts(
        faults: Vec<Fault>,
        first_detection: Vec<Option<usize>>,
        patterns: usize,
    ) -> Self {
        assert_eq!(faults.len(), first_detection.len(), "one verdict per fault");
        CampaignReport {
            faults,
            first_detection,
            patterns,
        }
    }

    /// The fault list the campaign ran over.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// First detecting pattern per fault (`None` = undetected).
    pub fn first_detection(&self) -> &[Option<usize>] {
        &self.first_detection
    }

    /// Number of patterns applied.
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Detected fault count.
    pub fn detected_count(&self) -> usize {
        self.first_detection.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in `[0, 1]` (1.0 for an empty fault list).
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 1.0;
        }
        self.detected_count() as f64 / self.faults.len() as f64
    }

    /// The faults no pattern detected.
    pub fn undetected(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.first_detection)
            .filter(|(_, d)| d.is_none())
            .map(|(f, _)| *f)
            .collect()
    }
}

/// A campaign verdict plus its observability record.
///
/// The report stays `Eq`-comparable (determinism tests rely on that);
/// wall-clock figures live in the attached [`CampaignStats`].
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The (deterministic) campaign verdicts.
    pub report: CampaignReport,
    /// Throughput, worker timing and lane-occupancy figures.
    pub stats: CampaignStats,
}

/// Engine configuration for [`FaultSimulator::campaign_packed`]: the
/// packed lane width and an optional collapsed universe. The default
/// (lane width 1, no collapsing) reproduces the historical
/// [`FaultSimulator::campaign_with_stats`] engine bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct PackedOptions<'a> {
    /// Word width in 64-lane limbs: 1 (`u64`, 64 patterns per walk) or
    /// 2 / 4 / 8 ([`PackedWord`], up to 512 patterns per walk).
    pub lane_width: usize,
    /// When set, the engine walks only equivalence-class representatives
    /// and expands their verdicts to the rest of the universe via
    /// [`CollapsedUniverse::representative`]. Sound because equivalent
    /// faults have identical detection masks on every pattern set.
    pub collapsed: Option<&'a CollapsedUniverse>,
    /// When set, detection runs through the critical-path-tracing /
    /// cone-walk hybrid ([`crate::trace::TracePlan`]): observability
    /// words come from backward sensitization over fanout-free regions,
    /// and the event-driven walk is reserved for reconvergent stems.
    /// Verdicts stay bit-identical to the walking engine for every lane
    /// width, schedule, worker count and collapse setting.
    pub tracing: bool,
    /// When set, built campaign/trace plans are persisted to (and reloaded
    /// from) this content-addressed artifact cache under
    /// [`crate::content::plan_key`]. A warm cache skips plan construction
    /// — the cone DFS and net classification — entirely; plans decode to
    /// bytes identical to a fresh build, so verdicts are unaffected.
    /// Deliberately excluded from [`crate::content::hash_options`]: the
    /// cache changes wall-clock, never results or unit partitions.
    pub artifacts: Option<&'a ArtifactStore>,
    /// How far fault dropping reaches. The default
    /// ([`DropScope::Unit`]) keeps dropping local to the loop that owns
    /// each fault range: verdicts — including first-detection indices —
    /// stay bit-identical across worker counts and schedules.
    /// [`DropScope::Global`] additionally parallelizes the *pattern*
    /// dimension ((golden chunk × fault range) tiles through the
    /// work-stealing queue) and retires faults across workers through a
    /// shared atomic [`DetectedSet`]: the detected *set* is exactly the
    /// unit-scope set by construction, but first-detection indices
    /// become wall-clock-dependent — opt in only for verdict-mode
    /// campaigns where the set is what matters.
    pub drop_scope: DropScope,
}

impl Default for PackedOptions<'_> {
    fn default() -> Self {
        PackedOptions {
            lane_width: 1,
            collapsed: None,
            tracing: false,
            artifacts: None,
            drop_scope: DropScope::Unit,
        }
    }
}

impl<'a> PackedOptions<'a> {
    /// Options for a wide-word campaign at `lane_width` 64-lane limbs.
    pub fn wide(lane_width: usize) -> Self {
        PackedOptions {
            lane_width,
            ..PackedOptions::default()
        }
    }

    /// Walks only representatives of `collapsed`, expanding verdicts to
    /// the full universe afterwards.
    pub fn with_collapsed(mut self, collapsed: &'a CollapsedUniverse) -> Self {
        self.collapsed = Some(collapsed);
        self
    }

    /// Detects through the critical-path-tracing hybrid instead of one
    /// observability walk per site.
    pub fn traced(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Persists and reloads built plans through `artifacts`, so repeat
    /// campaigns over the same design and walk list skip plan
    /// construction.
    pub fn with_artifacts(mut self, artifacts: &'a ArtifactStore) -> Self {
        self.artifacts = Some(artifacts);
        self
    }

    /// Drops faults across workers through a shared detected bitmap
    /// ([`DropScope::Global`]): same detected set, wall-clock-dependent
    /// first-detection indices.
    pub fn global_drop(mut self) -> Self {
        self.drop_scope = DropScope::Global;
        self
    }
}

/// Compiled-arena fault simulator over one netlist.
///
/// Supports stuck-at faults on outputs and pins, transition-delay faults
/// via pattern pairs, bridging faults, and sequential (multi-cycle)
/// stuck-at simulation.
///
/// # Examples
///
/// See [`crate`] docs for a complete campaign example.
#[derive(Debug, Clone)]
pub struct FaultSimulator {
    compiled: CompiledNetlist,
}

impl FaultSimulator {
    /// Prepares a simulator for `netlist` (compiles the flat arena).
    pub fn new(netlist: &Netlist) -> Self {
        FaultSimulator {
            compiled: CompiledNetlist::new(netlist),
        }
    }

    /// [`FaultSimulator::new`] through a compiled-artifact cache: the
    /// arena is keyed by [`crate::content::compiled_key`] (computed from
    /// the source netlist without compiling), so a warm cache decodes the
    /// stored arena instead of recompiling. The decoded arena is
    /// byte-identical to a fresh compile; a cold or corrupt cache
    /// compiles and publishes.
    pub fn new_cached(netlist: &Netlist, artifacts: &ArtifactStore) -> Self {
        let compiled = load_or_build(
            Some(artifacts),
            crate::content::compiled_key(netlist),
            CompiledNetlist::from_bytes,
            CompiledNetlist::to_bytes,
            || CompiledNetlist::new(netlist),
        );
        FaultSimulator { compiled }
    }

    /// The compiled arena this simulator evaluates on.
    pub fn compiled(&self) -> &CompiledNetlist {
        &self.compiled
    }

    /// Ablation hook forwarding [`CompiledNetlist::set_sweep`]: toggles
    /// the level-blocked sweep kernels (when the arena is levelized) for
    /// every campaign this simulator runs. Verdicts are identical either
    /// way; only throughput moves. Benches use it to report the sweep
    /// speedup as a measured number.
    pub fn set_sweep(&mut self, enabled: bool) {
        self.compiled.set_sweep(enabled);
    }

    /// Golden (fault-free) 64-way evaluation. `words[i]` is input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the primary-input count.
    pub fn golden(&self, words: &[u64]) -> Vec<u64> {
        self.eval_full(words, None, None)
    }

    /// Evaluates 64 packed patterns with `fault` active; returns all gate
    /// values. Only stuck-at kinds are meaningful here.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch or a non-stuck-at fault kind.
    pub fn with_stuck(&self, words: &[u64], fault: Fault) -> Vec<u64> {
        let value = fault
            .kind()
            .stuck_value()
            .expect("with_stuck requires a stuck-at fault");
        self.eval_full(words, Some((fault.site(), value)), None)
    }

    /// Evaluates with a wired-AND/OR bridge active (two-pass resolution).
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn with_bridge(&self, words: &[u64], bridge: BridgingFault) -> Vec<u64> {
        let golden = self.eval_full(words, None, None);
        let va = golden[bridge.a.index()];
        let vb = golden[bridge.b.index()];
        let v = if bridge.wired_and { va & vb } else { va | vb };
        self.eval_full(words, None, Some((bridge, v)))
    }

    /// Full-design 64-way evaluation over the compiled arena with
    /// optional stuck/bridge forcing. This is the non-incremental path,
    /// used by the value-inspection APIs; campaigns go through the cone
    /// engine instead.
    fn eval_full(
        &self,
        words: &[u64],
        stuck: Option<(FaultSite, bool)>,
        bridge: Option<(BridgingFault, u64)>,
    ) -> Vec<u64> {
        let c = &self.compiled;
        let pis = c.primary_inputs();
        assert_eq!(words.len(), pis.len(), "input word count mismatch");
        let mut values = vec![0u64; c.len()];
        for (i, &pi) in pis.iter().enumerate() {
            values[pi as usize] = words[i];
        }
        let (stuck_out, stuck_pin, stuck_word) = match stuck {
            Some((FaultSite::Output(g), v)) => {
                (Some(g.index()), None, if v { u64::MAX } else { 0 })
            }
            Some((FaultSite::Pin { gate, pin }, v)) => (
                None,
                Some((gate.index(), pin)),
                if v { u64::MAX } else { 0 },
            ),
            None => (None, None, 0),
        };
        // Sources (Input/Dff) sit outside eval_order; apply output/bridge
        // forces on them up front — nothing evaluates before them.
        let source = |g: usize| matches!(c.kind(g), GateKind::Input | GateKind::Dff);
        if let Some(g) = stuck_out {
            if source(g) {
                values[g] = stuck_word;
            }
        }
        if let Some((br, v)) = bridge {
            for g in [br.a.index(), br.b.index()] {
                if source(g) {
                    values[g] = v;
                }
            }
        }
        for &g in c.eval_order() {
            let gi = g as usize;
            let mut v = match stuck_pin {
                Some((fg, fp)) if fg == gi => c.eval_word_pin_forced(gi, &values, fp, stuck_word),
                _ => c.eval_word(gi, &values),
            };
            if stuck_out == Some(gi) {
                v = stuck_word;
            }
            if let Some((br, bv)) = bridge {
                if br.a.index() == gi || br.b.index() == gi {
                    v = bv;
                }
            }
            values[gi] = v;
        }
        values
    }

    /// Bitmask of patterns (bit `p`) on which `fault` is detected at a
    /// primary output, given the golden values for the same words.
    ///
    /// One-shot incremental detection; campaigns amortize the plan and
    /// scratch this call rebuilds.
    pub fn detection_mask(
        &self,
        _netlist: &Netlist,
        _words: &[u64],
        golden: &[u64],
        fault: Fault,
    ) -> u64 {
        let c = &self.compiled;
        let plan = CampaignPlan::build(c, std::slice::from_ref(&fault));
        let mut scratch = FaultScratch::new(c.len());
        scratch.load_golden(golden);
        plan.detect(c, golden, &mut scratch, fault)
    }

    /// Runs a full stuck-at campaign with fault dropping: each fault is
    /// simulated only until its first detection, only within its fanout
    /// cone, and the whole campaign stops once every fault is detected.
    ///
    /// # Panics
    ///
    /// Panics if any simulated pattern width differs from the
    /// primary-input count.
    pub fn campaign(
        &self,
        _netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
    ) -> CampaignReport {
        let c = &self.compiled;
        let plan = CampaignPlan::build(c, faults);
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        let mut undetected = faults.len();
        let mut golden: Vec<u64> = Vec::new();
        let mut scratch = FaultScratch::new(c.len());
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            if undetected == 0 {
                break; // every fault dropped
            }
            let words = pack_patterns(chunk);
            c.eval_words_into(&words, None, &mut golden)
                .expect("input word count mismatch");
            scratch.load_golden(&golden);
            let live = live_mask(chunk.len());
            for (fi, &fault) in faults.iter().enumerate() {
                if first_detection[fi].is_some() {
                    continue; // fault dropping
                }
                let mask = plan.detect(c, &golden, &mut scratch, fault) & live;
                if mask != 0 {
                    first_detection[fi] = Some(chunk_idx * 64 + mask.trailing_zeros() as usize);
                    undetected -= 1;
                }
            }
        }
        CampaignReport {
            faults: faults.to_vec(),
            first_detection,
            patterns: patterns.len(),
        }
    }

    /// Multi-threaded stuck-at campaign over the shared
    /// [`rescue_campaign`] driver; produces exactly the same verdicts as
    /// [`FaultSimulator::campaign`]. Thin wrapper over
    /// [`FaultSimulator::campaign_with_stats`] that discards the stats.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a pattern width mismatches.
    pub fn campaign_parallel(
        &self,
        _netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        threads: usize,
    ) -> CampaignReport {
        self.campaign_with_stats(faults, patterns, &Campaign::new(0, threads))
            .report
    }

    /// PPSFP stuck-at campaign with fault dropping through the shared
    /// [`Campaign`] driver: per-chunk golden words are computed once and
    /// shared read-only, and every worker detects through the packed
    /// observability path ([`CampaignPlan::detect_packed`]) — one
    /// event-driven cone walk per (site, 64-pattern word), shared by all
    /// faults at that site. The fault list is handed out per the
    /// campaign's [`rescue_campaign::Schedule`]: static contiguous shards
    /// or the work-stealing chunk queue (the default — fault dropping
    /// makes per-fault cost wildly non-uniform, which static shards
    /// handle worst). Verdicts are bit-identical to
    /// [`FaultSimulator::campaign`] for every worker count, schedule and
    /// chunk grain; the returned [`CampaignRun`] adds
    /// throughput/lane-occupancy/drop/steal observability.
    ///
    /// # Panics
    ///
    /// Panics if a pattern width differs from the primary-input count.
    pub fn campaign_with_stats(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        campaign: &Campaign,
    ) -> CampaignRun {
        self.campaign_packed(faults, patterns, campaign, PackedOptions::default())
    }

    /// [`FaultSimulator::campaign_with_stats`] with an explicit engine
    /// configuration: a wide [`SimWord`] lane width (2/4/8 × 64 packed
    /// patterns per cone walk, autovectorized) and/or a collapsed
    /// universe (walk equivalence-class representatives only, expand
    /// verdicts to the rest for free). Verdicts are bit-identical to the
    /// default engine for every width, schedule, worker count and
    /// collapse setting; [`CampaignStats::faults_walked`] records how
    /// much walking the collapse saved.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported lane width
    /// ([`SUPPORTED_LANE_WIDTHS`]) or a pattern width mismatch.
    pub fn campaign_packed(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        campaign: &Campaign,
        opts: PackedOptions,
    ) -> CampaignRun {
        match opts.lane_width {
            1 => self.campaign_packed_w::<u64>(faults, patterns, campaign, &opts),
            2 => self.campaign_packed_w::<PackedWord<2>>(faults, patterns, campaign, &opts),
            4 => self.campaign_packed_w::<PackedWord<4>>(faults, patterns, campaign, &opts),
            8 => self.campaign_packed_w::<PackedWord<8>>(faults, patterns, campaign, &opts),
            w => panic!("unsupported lane width {w} (expected one of {SUPPORTED_LANE_WIDTHS:?})"),
        }
    }

    /// The width-generic packed campaign behind the runtime dispatch of
    /// [`FaultSimulator::campaign_packed`].
    fn campaign_packed_w<Wd: SimWord>(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        campaign: &Campaign,
        opts: &PackedOptions,
    ) -> CampaignRun {
        let c = &self.compiled;
        let _campaign = span!("fault.campaign", faults = faults.len());
        let (walk, expand) = self.walk_list(faults, opts);
        let chunks = self.golden_chunks::<Wd>(patterns);
        let mut faults_traced = 0usize;
        let (results, figures) = if opts.tracing {
            let engine = TraceEngine::build(c, &walk, campaign.workers, opts);
            faults_traced = engine.tplan.statically_traced();
            execute_packed(campaign, &walk, &engine, &chunks, opts.drop_scope, true)
        } else {
            let engine = WalkEngine::build(c, &walk, campaign.workers, opts);
            execute_packed(campaign, &walk, &engine, &chunks, opts.drop_scope, false)
        };
        let stats = CampaignStats {
            injections: faults.len(),
            elapsed_ns: figures.elapsed_ns,
            workers: figures.worker_ns.len(),
            worker_ns: figures.worker_ns,
            chunks_stolen: figures.steals,
            dropped_global: figures.dropped_global as usize,
            faults_walked: walk.len(),
            faults_traced,
            ..CampaignStats::default()
        };
        finish_packed::<Wd>(faults, patterns, opts, &chunks, expand, results, stats)
    }

    /// [`FaultSimulator::campaign_packed`] made durable: the campaign
    /// becomes the deterministic plan of content-addressed units from
    /// [`FaultSimulator::durable_plan`], unit verdicts persist through
    /// `store`, and only the units the store is missing are executed.
    /// A killed run resumes where it stopped; a second process pointed
    /// at the same store shares the work via create-exclusive claims
    /// without ever double-executing a unit; re-submitting a finished
    /// campaign executes zero units. Verdicts and stats tallies are
    /// bit-identical to [`FaultSimulator::campaign_packed`] for every
    /// store state, worker count, schedule and unit grain;
    /// [`CampaignStats::units_cached`] / `units_executed` record how the
    /// run split between store and engine.
    ///
    /// `unit_faults` is the unit grain in walked faults (0 =
    /// [`DEFAULT_UNIT_FAULTS`]).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported lane width, a pattern width mismatch, or
    /// a wedged peer holding claims past the wait limit.
    pub fn campaign_packed_durable(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        campaign: &Campaign,
        opts: PackedOptions,
        store: &dyn ResultStore,
        unit_faults: usize,
    ) -> CampaignRun {
        match opts.lane_width {
            1 => self.durable_w::<u64>(faults, patterns, campaign, &opts, store, unit_faults),
            2 => self.durable_w::<PackedWord<2>>(
                faults,
                patterns,
                campaign,
                &opts,
                store,
                unit_faults,
            ),
            4 => self.durable_w::<PackedWord<4>>(
                faults,
                patterns,
                campaign,
                &opts,
                store,
                unit_faults,
            ),
            8 => self.durable_w::<PackedWord<8>>(
                faults,
                patterns,
                campaign,
                &opts,
                store,
                unit_faults,
            ),
            w => panic!("unsupported lane width {w} (expected one of {SUPPORTED_LANE_WIDTHS:?})"),
        }
    }

    /// The deterministic unit plan a durable campaign executes: the walk
    /// list (collapsed representatives when collapsing is on) partitioned
    /// at `unit_faults` grain, keyed under
    /// [`crate::content::campaign_hash`]. Worker count, schedule and
    /// seed are deliberately absent from the key — any process
    /// configuration resumes the same plan.
    pub fn durable_plan(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        opts: &PackedOptions,
        unit_faults: usize,
    ) -> CampaignManifest {
        let (walk, _) = self.walk_list(faults, opts);
        self.manifest_for(faults, patterns, opts, walk.len(), unit_faults)
    }

    fn manifest_for(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        opts: &PackedOptions,
        walk_len: usize,
        unit_faults: usize,
    ) -> CampaignManifest {
        let grain = if unit_faults == 0 {
            DEFAULT_UNIT_FAULTS
        } else {
            unit_faults
        };
        CampaignManifest::build(
            crate::content::campaign_hash(&self.compiled, faults, patterns, opts),
            walk_len,
            grain,
        )
    }

    /// Width-generic body of [`FaultSimulator::campaign_packed_durable`].
    fn durable_w<Wd: SimWord>(
        &self,
        faults: &[Fault],
        patterns: &[Vec<bool>],
        campaign: &Campaign,
        opts: &PackedOptions,
        store: &dyn ResultStore,
        unit_faults: usize,
    ) -> CampaignRun {
        let c = &self.compiled;
        rescue_campaign::fleet::set_stage("fault.campaign_durable");
        let _campaign = span!("fault.campaign_durable", faults = faults.len());
        let (walk, expand) = self.walk_list(faults, opts);
        let manifest = self.manifest_for(faults, patterns, opts, walk.len(), unit_faults);
        let chunks = self.golden_chunks::<Wd>(patterns);
        // The durable shared bitmap: publish-only in practice (units
        // partition walk positions, so no in-process consult can fire),
        // wired so the durable path shares the global-drop contract and
        // persisted verdicts stay deterministic.
        let detected = (opts.drop_scope == DropScope::Global).then(|| DetectedSet::new(walk.len()));
        let exec_start = Instant::now();
        let mut faults_traced = 0usize;
        let run = if opts.tracing {
            let engine = TraceEngine::build(c, &walk, campaign.workers, opts);
            faults_traced = engine.tplan.statically_traced();
            run_durable(
                campaign,
                &walk,
                &engine,
                &chunks,
                &manifest,
                store,
                detected.as_ref(),
            )
        } else {
            let engine = WalkEngine::build(c, &walk, campaign.workers, opts);
            run_durable(
                campaign,
                &walk,
                &engine,
                &chunks,
                &manifest,
                store,
                detected.as_ref(),
            )
        };
        if rescue_telemetry::enabled() {
            let name = if opts.tracing {
                "exec.trace_ms"
            } else {
                "exec.walk_ms"
            };
            metrics::histogram(name, &metrics::pow2_bounds(16))
                .record(exec_start.elapsed().as_millis() as u64);
        }
        let stats = CampaignStats {
            injections: faults.len(),
            elapsed_ns: run.elapsed_ns,
            workers: run.worker_ns.len(),
            worker_ns: run.worker_ns.clone(),
            chunks_stolen: run.steals,
            dropped_global: detected.as_ref().map_or(0, |d| d.skipped()) as usize,
            faults_walked: walk.len(),
            faults_traced,
            units_total: run.units_total,
            // "Cached" from this run's point of view is everything it did
            // not execute itself: store hits plus units a concurrent peer
            // published while we waited.
            units_cached: run.units_cached + run.units_waited,
            units_executed: run.units_executed,
            ..CampaignStats::default()
        };
        finish_packed::<Wd>(faults, patterns, opts, &chunks, expand, run.results, stats)
    }

    /// Collapse prefilter shared by the plain and durable packed
    /// campaigns: walk each equivalence class once, in order of first
    /// appearance, then sweep PO reachability over the representatives —
    /// structurally unobservable classes share the all-zero detection
    /// mask and expand to "undetected" without a walk. Exact because
    /// equivalent faults have identical detection masks (the property
    /// the `collapse` tests pin down), so even first-detection indices
    /// expand unchanged. The returned map remembers which walked slot
    /// answers each original fault (`None` = unobservable class, never
    /// detected; the map itself is `None` when collapsing is off).
    fn walk_list(
        &self,
        faults: &[Fault],
        opts: &PackedOptions,
    ) -> (Vec<Fault>, Option<Vec<Option<u32>>>) {
        let c = &self.compiled;
        match opts.collapsed {
            None => (faults.to_vec(), None),
            Some(cu) => {
                // O(gates + edges) reachability sweep first, so cone
                // construction is paid only for the faults that will
                // actually be walked. Then one hashing pass over the
                // universe: per fault, one representative lookup and
                // one slot lookup.
                let reachable = crate::engine::po_reachable(c);
                let mut slot_of = std::collections::HashMap::new();
                let mut walk = Vec::new();
                let mut map = Vec::with_capacity(faults.len());
                for &f in faults {
                    let rep = cu.representative(f);
                    if !reachable[rep.site().gate().index()] {
                        map.push(None);
                        continue;
                    }
                    let slot = *slot_of.entry(rep).or_insert_with(|| {
                        walk.push(rep);
                        walk.len() as u32 - 1
                    });
                    map.push(Some(slot));
                }
                (walk, Some(map))
            }
        }
    }

    /// Golden values and live mask per chunk, computed once and shared
    /// read-only by all workers. The live mask is the one shared
    /// ragged-tail guard: a final chunk of fewer than `Wd::LANES`
    /// patterns must not let dead lanes report detections.
    ///
    /// The arena is one flat allocation for all chunks (plus one reused
    /// input-packing buffer), so building it costs two allocations total
    /// instead of two per chunk — the setup half of the zero-alloc
    /// steady state. Wall-clock is recorded in the `exec.golden_ms`
    /// histogram when telemetry is enabled.
    fn golden_chunks<Wd: SimWord>(&self, patterns: &[Vec<bool>]) -> GoldenChunks<Wd> {
        let start = Instant::now();
        let n_gates = self.compiled.len();
        let n_chunks = patterns.len().div_ceil(Wd::LANES.max(1));
        let mut words = vec![Wd::ZERO; n_chunks * n_gates];
        let mut live = Vec::with_capacity(n_chunks);
        let mut inputs: Vec<Wd> = Vec::new();
        for (ci, chunk) in patterns.chunks(Wd::LANES).enumerate() {
            pack_patterns_wide_into(chunk, &mut inputs);
            self.compiled
                .eval_words_fill(&inputs, None, &mut words[ci * n_gates..(ci + 1) * n_gates])
                .expect("input word count mismatch");
            live.push(Wd::live_mask(chunk.len()));
        }
        if rescue_telemetry::enabled() {
            metrics::histogram("exec.golden_ms", &metrics::pow2_bounds(16))
                .record(start.elapsed().as_millis() as u64);
        }
        GoldenChunks {
            words,
            live,
            n_gates,
        }
    }

    /// Transition-delay campaign over consecutive pattern *pairs*
    /// `(patterns[i], patterns[i+1])`: a slow-to-rise fault is detected by
    /// a pair that launches a rising transition at the site and where the
    /// late value (stuck-at-0 behaviour during capture) reaches an output.
    ///
    /// Returns the report with pattern index = index of the capture
    /// pattern.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or a non-transition fault in `faults`.
    pub fn transition_campaign(
        &self,
        _netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
    ) -> CampaignReport {
        let c = &self.compiled;
        let plan = CampaignPlan::build(c, faults);
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        let mut g_launch: Vec<u64> = Vec::new();
        let mut g_capture: Vec<u64> = Vec::new();
        let mut scratch = FaultScratch::new(c.len());
        for (i, pats) in patterns.windows(2).enumerate() {
            c.eval_words_into(&pack_patterns(&pats[..1]), None, &mut g_launch)
                .expect("input word count mismatch");
            c.eval_words_into(&pack_patterns(&pats[1..]), None, &mut g_capture)
                .expect("input word count mismatch");
            scratch.load_golden(&g_capture);
            for (fi, &fault) in faults.iter().enumerate() {
                if first_detection[fi].is_some() {
                    continue;
                }
                let site_gate = match fault.site() {
                    FaultSite::Output(g) => g,
                    FaultSite::Pin { .. } => panic!("transition faults sit on outputs"),
                };
                let (from, to, stuck) = match fault.kind() {
                    FaultKind::SlowToRise => (0u64, 1u64, false),
                    FaultKind::SlowToFall => (1, 0, true),
                    _ => panic!("transition_campaign requires transition faults"),
                };
                let launch_v = g_launch[site_gate.index()] & 1;
                let capture_v = g_capture[site_gate.index()] & 1;
                if launch_v != from || capture_v != to {
                    continue; // no launching transition
                }
                // Equivalent stuck-at detection on the capture pattern.
                let eq = Fault::stuck_at(FaultSite::Output(site_gate), stuck);
                let mask = plan.detect(c, &g_capture, &mut scratch, eq);
                if mask & 1 != 0 {
                    first_detection[fi] = Some(i + 1);
                }
            }
        }
        CampaignReport {
            faults: faults.to_vec(),
            first_detection,
            patterns: patterns.len(),
        }
    }

    /// Sequential stuck-at campaign: applies `stimuli` cycle by cycle to a
    /// golden and a faulty machine (both starting from the all-zero state)
    /// and reports the first cycle whose primary outputs differ.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or non-stuck-at faults.
    pub fn campaign_seq(
        &self,
        _netlist: &Netlist,
        faults: &[Fault],
        stimuli: &[Vec<bool>],
    ) -> CampaignReport {
        let c = &self.compiled;
        let po_count = c.po_drivers().len();
        let mut values = vec![false; c.len()];
        let mut state = vec![false; c.dffs().len()];
        // Golden per-cycle primary-output trace, flattened.
        let mut golden_pos: Vec<bool> = Vec::with_capacity(stimuli.len() * po_count);
        for inputs in stimuli {
            self.seq_cycle(inputs, None, &mut values, &mut state);
            golden_pos.extend(c.po_drivers().iter().map(|&g| values[g as usize]));
        }
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        for (fi, &fault) in faults.iter().enumerate() {
            let value = fault
                .kind()
                .stuck_value()
                .expect("campaign_seq requires stuck-at faults");
            state.iter_mut().for_each(|b| *b = false);
            for (cycle, inputs) in stimuli.iter().enumerate() {
                self.seq_cycle(inputs, Some((fault.site(), value)), &mut values, &mut state);
                let golden = &golden_pos[cycle * po_count..(cycle + 1) * po_count];
                let diff = c
                    .po_drivers()
                    .iter()
                    .zip(golden)
                    .any(|(&g, &want)| values[g as usize] != want);
                if diff {
                    first_detection[fi] = Some(cycle);
                    break;
                }
            }
        }
        CampaignReport {
            faults: faults.to_vec(),
            first_detection,
            patterns: stimuli.len(),
        }
    }

    /// One clock cycle of two-valued evaluation with optional stuck
    /// forcing; `values` and `state` are reusable buffers, `state` is
    /// advanced to the next cycle.
    fn seq_cycle(
        &self,
        inputs: &[bool],
        stuck: Option<(FaultSite, bool)>,
        values: &mut [bool],
        state: &mut [bool],
    ) {
        let c = &self.compiled;
        assert_eq!(
            inputs.len(),
            c.primary_inputs().len(),
            "stimulus width mismatch"
        );
        values.fill(false);
        for (i, &pi) in c.primary_inputs().iter().enumerate() {
            values[pi as usize] = inputs[i];
        }
        for (i, &dff) in c.dffs().iter().enumerate() {
            values[dff as usize] = state[i];
        }
        if let Some((FaultSite::Output(g), v)) = stuck {
            if matches!(c.kind(g.index()), GateKind::Input | GateKind::Dff) {
                values[g.index()] = v;
            }
        }
        for &g in c.eval_order() {
            let gi = g as usize;
            let mut v = match stuck {
                Some((FaultSite::Pin { gate, pin }, fv)) if gate.index() == gi => {
                    c.eval_bool_pin_forced(gi, values, pin, fv)
                }
                _ => c.eval_bool(gi, values),
            };
            if let Some((FaultSite::Output(fg), fv)) = stuck {
                if fg.index() == gi {
                    v = fv;
                }
            }
            values[gi] = v;
        }
        for (i, &d) in c.dff_d().iter().enumerate() {
            state[i] = values[d as usize];
        }
    }
}

/// Default durable-campaign unit grain, in walked faults per unit.
/// Matches the work-stealing chunk ceiling so one unit is a few
/// scheduler chunks: coarse enough that store round-trips stay noise,
/// fine enough that a killed run loses little finished work.
pub const DEFAULT_UNIT_FAULTS: usize = 256;

/// The per-chunk golden data of one campaign: every chunk's golden
/// values in one flat arena (`n_chunks × n_gates` words) plus the live
/// mask per chunk. One allocation for the whole campaign instead of one
/// `Vec` per chunk, and chunk access is a slice borrow — nothing on the
/// steady-state execution path allocates.
struct GoldenChunks<Wd> {
    words: Vec<Wd>,
    live: Vec<Wd>,
    n_gates: usize,
}

impl<Wd: SimWord> GoldenChunks<Wd> {
    /// Number of golden chunks (pattern words).
    fn len(&self) -> usize {
        self.live.len()
    }

    /// Chunk `ci`'s golden values and live mask.
    fn chunk(&self, ci: usize) -> (&[Wd], Wd) {
        (
            &self.words[ci * self.n_gates..(ci + 1) * self.n_gates],
            self.live[ci],
        )
    }

    /// Live masks of every chunk, in chunk order.
    fn live_masks(&self) -> &[Wd] {
        &self.live
    }
}

/// The packed detection interface shared by the plain and durable
/// campaign paths: one fault in, one `Wd` detection mask out, with the
/// drop bookkeeping the engines keep in their scratch. Implemented by
/// the event-driven cone walker ([`WalkEngine`]) and the critical-path
/// tracing hybrid ([`TraceEngine`]), so the campaign drain loop
/// ([`drain_unit`]) is written exactly once.
trait PackedDetect<Wd: SimWord>: Sync {
    /// Per-worker mutable state.
    type Scratch;
    fn scratch(&self) -> Self::Scratch;
    /// Can any fault rooted at `gate` ever reach a primary output?
    fn observable(&self, gate: usize) -> bool;
    /// Prepares the scratch for golden chunk `chunk` — a no-op when that
    /// chunk is already resident (the engines tag their scratch with the
    /// loaded chunk), which is what makes re-draining the same chunk
    /// across consecutive fault ranges nearly free.
    fn load(&self, scratch: &mut Self::Scratch, chunk: u32, golden: &[Wd]);
    /// Detection mask of `fault` under the loaded chunk.
    fn detect(&self, scratch: &mut Self::Scratch, golden: &[Wd], fault: Fault) -> Wd;
    /// Records one fault retired before the final chunk (fault dropping).
    fn note_drop(&self, scratch: &mut Self::Scratch);
    /// Flushes the scratch's counters to the telemetry registry.
    fn flush(&self, scratch: &mut Self::Scratch);
}

/// Per-worker drain state: the engine scratch plus the pooled
/// active-fault list, so steady-state unit execution reuses every
/// buffer across the ranges a worker claims instead of reallocating
/// per unit.
struct DrainScratch<S> {
    inner: S,
    active: Vec<u32>,
}

impl<S> DrainScratch<S> {
    fn new(inner: S) -> Self {
        DrainScratch {
            inner,
            active: Vec::new(),
        }
    }
}

/// Fetches a plan artifact from the cache, or builds and publishes it.
///
/// The decode path executes zero DFS or classification work: a hit is a
/// read, a checksum and a byte decode. Corrupt or foreign payloads fall
/// through to a rebuild (and overwrite the bad entry). `plan.cache_hits` /
/// `plan.cache_misses` count how a workload's setup split.
fn load_or_build<T>(
    artifacts: Option<&ArtifactStore>,
    key: rescue_campaign::ContentHash,
    decode: impl Fn(&[u8]) -> Option<T>,
    encode: impl Fn(&T) -> Vec<u8>,
    build: impl FnOnce() -> T,
) -> T {
    let Some(store) = artifacts else {
        return build();
    };
    if let Some(artifact) = store.load(key).and_then(|bytes| decode(&bytes)) {
        metrics::counter("plan.cache_hits").add(1);
        return artifact;
    }
    metrics::counter("plan.cache_misses").add(1);
    let built = build();
    store.save(key, &encode(&built));
    built
}

/// The event-driven packed cone walker ([`CampaignPlan::detect_packed`]).
struct WalkEngine<'a> {
    c: &'a CompiledNetlist,
    plan: CampaignPlan,
}

impl<'a> WalkEngine<'a> {
    fn build(c: &'a CompiledNetlist, walk: &[Fault], workers: usize, opts: &PackedOptions) -> Self {
        let plan = load_or_build(
            opts.artifacts,
            crate::content::plan_key(c, walk, false),
            CampaignPlan::from_bytes,
            CampaignPlan::to_bytes,
            || CampaignPlan::build_with(c, walk, workers),
        );
        WalkEngine { c, plan }
    }
}

impl<Wd: SimWord> PackedDetect<Wd> for WalkEngine<'_> {
    type Scratch = WideScratch<Wd>;

    fn scratch(&self) -> WideScratch<Wd> {
        WideScratch::new(self.c.len())
    }

    fn observable(&self, gate: usize) -> bool {
        self.plan.observable(gate)
    }

    fn load(&self, scratch: &mut WideScratch<Wd>, chunk: u32, golden: &[Wd]) {
        scratch.load_chunk(chunk, golden);
    }

    fn detect(&self, scratch: &mut WideScratch<Wd>, golden: &[Wd], fault: Fault) -> Wd {
        self.plan
            .detect_packed(self.c, golden, scratch, fault)
            .expect("fault root missing from campaign plan")
    }

    fn note_drop(&self, scratch: &mut WideScratch<Wd>) {
        scratch.counters.dropped += 1;
    }

    fn flush(&self, scratch: &mut WideScratch<Wd>) {
        scratch.counters.flush_to_metrics();
    }
}

/// The hybrid CPT engine: observability by backward tracing over
/// fanout-free regions, event-driven walks only at reconvergent stems
/// (shared by the whole region below).
struct TraceEngine<'a> {
    c: &'a CompiledNetlist,
    tplan: TracePlan,
}

impl<'a> TraceEngine<'a> {
    fn build(c: &'a CompiledNetlist, walk: &[Fault], workers: usize, opts: &PackedOptions) -> Self {
        let tplan = load_or_build(
            opts.artifacts,
            crate::content::plan_key(c, walk, true),
            TracePlan::from_bytes,
            TracePlan::to_bytes,
            || TracePlan::build_with(c, walk, workers),
        );
        TraceEngine { c, tplan }
    }
}

impl<Wd: SimWord> PackedDetect<Wd> for TraceEngine<'_> {
    type Scratch = TraceScratch<Wd>;

    fn scratch(&self) -> TraceScratch<Wd> {
        TraceScratch::new(self.c.len())
    }

    fn observable(&self, gate: usize) -> bool {
        self.tplan.plan().observable(gate)
    }

    fn load(&self, scratch: &mut TraceScratch<Wd>, chunk: u32, golden: &[Wd]) {
        scratch.load_chunk(chunk, golden);
    }

    fn detect(&self, scratch: &mut TraceScratch<Wd>, golden: &[Wd], fault: Fault) -> Wd {
        self.tplan
            .detect_traced(self.c, golden, scratch, fault)
            .expect("fault root missing from campaign plan")
    }

    fn note_drop(&self, scratch: &mut TraceScratch<Wd>) {
        scratch.inner.counters.dropped += 1;
    }

    fn flush(&self, scratch: &mut TraceScratch<Wd>) {
        scratch.inner.counters.flush_to_metrics();
    }
}

/// Drains one fault range over every golden chunk with fault dropping —
/// the single campaign inner loop, shared verbatim by the plain
/// schedules and the durable store-backed path (which is what keeps
/// their verdicts bit-identical).
///
/// `offset` is the range's global position in the walk list; with a
/// shared [`DetectedSet`] (`global`) the loop consults the bitmap
/// before each walk and publishes each detection at `offset + fi`.
/// Durable units partition walk positions disjointly, so within one
/// process the consult can never retire a fault this loop would
/// otherwise have walked — persisted verdicts stay deterministic — but
/// the publishing keeps the durable path on the same contract as the
/// tiled global schedule.
fn drain_unit<Wd: SimWord, E: PackedDetect<Wd>>(
    engine: &E,
    chunks: &GoldenChunks<Wd>,
    scratch: &mut DrainScratch<E::Scratch>,
    offset: usize,
    range: &[Fault],
    global: Option<&DetectedSet>,
) -> Vec<Option<usize>> {
    let n_chunks = chunks.len();
    let mut first: Vec<Option<usize>> = vec![None; range.len()];
    // Structurally unobservable faults can never be detected: retire
    // them before the first word instead of re-asking the engine on
    // every chunk. The active list (pooled across the ranges a worker
    // claims) then shrinks as faults drop, keeping site-consecutive
    // order so the one-entry observability cache stays hot.
    let DrainScratch { inner, active } = scratch;
    active.clear();
    active.extend(
        (0..range.len() as u32)
            .filter(|&fi| engine.observable(range[fi as usize].site().gate().index())),
    );
    for ci in 0..n_chunks {
        if active.is_empty() {
            break; // every detectable fault in this range dropped
        }
        let (golden, live) = chunks.chunk(ci);
        engine.load(inner, ci as u32, golden);
        active.retain(|&fi| {
            if let Some(set) = global {
                if set.is_detected(offset + fi as usize) {
                    set.note_skip();
                    return false;
                }
            }
            let fault = range[fi as usize];
            let mask = engine.detect(inner, golden, fault) & live;
            if mask.is_zero() {
                return true;
            }
            first[fi as usize] =
                Some(ci * Wd::LANES + mask.first_lane().expect("mask is non-zero"));
            if let Some(set) = global {
                set.mark(offset + fi as usize);
            }
            if ci + 1 < n_chunks {
                // Retired early: later words never walk this fault's
                // cone again.
                engine.note_drop(inner);
            }
            false
        });
    }
    // Range granularity: one registry touch per work call, never per
    // fault.
    engine.flush(inner);
    first
}

/// Driver-side figures of one executed campaign — the fields
/// [`CampaignStats`] copies out of the underlying run record,
/// abstracted so the unit-scope and tiled global-scope schedules can
/// share one stats tail.
struct RunFigures {
    elapsed_ns: u64,
    worker_ns: Vec<u64>,
    steals: u64,
    dropped_global: u64,
}

/// Executes the walk list with `engine` under the campaign's schedule
/// and drop scope; returns per-fault first detections plus the run
/// figures. Wall-clock is recorded in the `exec.walk_ms` /
/// `exec.trace_ms` histogram (per `tracing`) when telemetry is enabled.
fn execute_packed<Wd: SimWord, E: PackedDetect<Wd>>(
    campaign: &Campaign,
    walk: &[Fault],
    engine: &E,
    chunks: &GoldenChunks<Wd>,
    scope: DropScope,
    tracing: bool,
) -> (Vec<Option<usize>>, RunFigures)
where
    E::Scratch: Send,
{
    let start = Instant::now();
    let out = match scope {
        DropScope::Unit => {
            let run = run_plain(campaign, walk, engine, chunks);
            let figures = RunFigures {
                elapsed_ns: run.elapsed_ns,
                worker_ns: run.worker_ns,
                steals: run.steals,
                dropped_global: 0,
            };
            (run.results, figures)
        }
        DropScope::Global => run_global(campaign, walk, engine, chunks),
    };
    if rescue_telemetry::enabled() {
        let name = if tracing {
            "exec.trace_ms"
        } else {
            "exec.walk_ms"
        };
        metrics::histogram(name, &metrics::pow2_bounds(16))
            .record(start.elapsed().as_millis() as u64);
    }
    out
}

/// Runs the walk list through the campaign's schedule (in-process path).
fn run_plain<Wd: SimWord, E: PackedDetect<Wd>>(
    campaign: &Campaign,
    walk: &[Fault],
    engine: &E,
    chunks: &GoldenChunks<Wd>,
) -> ShardedRun<Option<usize>>
where
    E::Scratch: Send,
{
    let scratch = |_w: usize| DrainScratch::new(engine.scratch());
    let work = |scratch: &mut DrainScratch<E::Scratch>, offset: usize, range: &[Fault]| {
        drain_unit(engine, chunks, scratch, offset, range, None)
    };
    match campaign.schedule {
        rescue_campaign::Schedule::Static => campaign.run_ranges(walk, scratch, work),
        rescue_campaign::Schedule::Dynamic { .. } => campaign.run_dynamic(walk, scratch, work),
    }
}

/// Work tile of the cross-worker-dropping schedule: one golden chunk
/// crossed with one contiguous walk-list subrange.
#[derive(Clone, Copy)]
struct Tile {
    chunk: u32,
    start: u32,
    end: u32,
}

/// Runs the walk list under [`DropScope::Global`]: (golden chunk ×
/// fault range) tiles go through the work-stealing queue, every worker
/// consults the shared [`DetectedSet`] before walking a fault and
/// publishes each detection, so a fault detected by any worker on any
/// chunk is never walked again anywhere. Tiles are ordered chunk-major:
/// consecutive tiles a worker claims share their golden chunk (so the
/// scratch's chunk tag skips nearly every reload), and the chunk-major
/// merge below keeps first detections pattern-ordered wherever no skip
/// raced.
///
/// The detected set equals the unit-scope set exactly — a skip only
/// ever suppresses a redundant re-walk of an already-detected fault —
/// but first-detection indices are wall-clock-dependent (a later chunk
/// can win the race and suppress the earlier detection entirely),
/// which is why this schedule is opt-in for verdict-mode campaigns.
fn run_global<Wd: SimWord, E: PackedDetect<Wd>>(
    campaign: &Campaign,
    walk: &[Fault],
    engine: &E,
    chunks: &GoldenChunks<Wd>,
) -> (Vec<Option<usize>>, RunFigures)
where
    E::Scratch: Send,
{
    let detected = DetectedSet::new(walk.len());
    let grain = campaign.chunk_size(walk.len().max(1));
    let ranges: Vec<(u32, u32)> = (0..walk.len())
        .step_by(grain)
        .map(|s| (s as u32, s.saturating_add(grain).min(walk.len()) as u32))
        .collect();
    let mut tiles = Vec::with_capacity(chunks.len() * ranges.len());
    for ci in 0..chunks.len() as u32 {
        for &(start, end) in &ranges {
            tiles.push(Tile {
                chunk: ci,
                start,
                end,
            });
        }
    }
    let run = campaign.run_dynamic(
        &tiles,
        |_w| engine.scratch(),
        |scratch: &mut E::Scratch, _offset: usize, claimed: &[Tile]| {
            let out: Vec<Vec<(u32, usize)>> = claimed
                .iter()
                .map(|t| {
                    let (golden, live) = chunks.chunk(t.chunk as usize);
                    engine.load(scratch, t.chunk, golden);
                    let mut hits: Vec<(u32, usize)> = Vec::new();
                    for fi in t.start..t.end {
                        let fault = walk[fi as usize];
                        if !engine.observable(fault.site().gate().index()) {
                            continue;
                        }
                        if detected.is_detected(fi as usize) {
                            detected.note_skip();
                            continue;
                        }
                        let mask = engine.detect(scratch, golden, fault) & live;
                        if let Some(lane) = mask.first_lane() {
                            detected.mark(fi as usize);
                            hits.push((fi, t.chunk as usize * Wd::LANES + lane));
                        }
                    }
                    hits
                })
                .collect();
            engine.flush(scratch);
            out
        },
    );
    // Chunk-major merge: results arrive in tile (= chunk-major) order,
    // so the first recorded hit per fault is the lowest-chunk one.
    let mut first: Vec<Option<usize>> = vec![None; walk.len()];
    for hits in &run.results {
        for &(fi, p) in hits {
            if first[fi as usize].is_none() {
                first[fi as usize] = Some(p);
            }
        }
    }
    let figures = RunFigures {
        elapsed_ns: run.elapsed_ns,
        worker_ns: run.worker_ns,
        steals: run.steals,
        dropped_global: detected.skipped(),
    };
    (first, figures)
}

/// Runs the walk list through [`Campaign::run_store`]: same drain loop
/// as [`run_plain`], but partitioned into the manifest's units with
/// verdicts persisted (and answered) through the result store. With
/// [`DropScope::Global`], detections are additionally published to (and
/// consulted from) the shared bitmap — vacuous within one process (units
/// partition walk positions disjointly), so persisted verdicts stay
/// deterministic for every store state.
fn run_durable<Wd: SimWord, E: PackedDetect<Wd>>(
    campaign: &Campaign,
    walk: &[Fault],
    engine: &E,
    chunks: &GoldenChunks<Wd>,
    manifest: &CampaignManifest,
    store: &dyn ResultStore,
    global: Option<&DetectedSet>,
) -> DurableRun<Option<usize>>
where
    E::Scratch: Send,
{
    let n_chunks = chunks.len();
    campaign.run_store(
        walk,
        manifest,
        store,
        |_w| DrainScratch::new(engine.scratch()),
        |scratch: &mut DrainScratch<E::Scratch>, offset: usize, range: &[Fault]| {
            drain_unit(engine, chunks, scratch, offset, range, global)
        },
        encode_verdicts,
        decode_verdicts,
        move |rs: &[Option<usize>]| unit_delta::<Wd>(rs, n_chunks),
    )
}

/// Persisted verdict payload of one unit: a `u64` count followed by one
/// little-endian `u64` first-detection index per walked fault, with
/// `u64::MAX` standing in for "never detected".
fn encode_verdicts(rs: &[Option<usize>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rs.len() * 8);
    out.extend_from_slice(&(rs.len() as u64).to_le_bytes());
    for r in rs {
        out.extend_from_slice(&r.map_or(u64::MAX, |p| p as u64).to_le_bytes());
    }
    out
}

/// Inverse of [`encode_verdicts`]; `None` marks the payload corrupt
/// (truncated or miscounted), which forces re-execution of the unit.
fn decode_verdicts(bytes: &[u8]) -> Option<Vec<Option<usize>>> {
    if bytes.len() < 8 {
        return None;
    }
    let (head, body) = bytes.split_at(8);
    let n = u64::from_le_bytes(head.try_into().unwrap()) as usize;
    if body.len() != n.checked_mul(8)? {
        return None;
    }
    Some(
        body.chunks_exact(8)
            .map(|c| {
                let v = u64::from_le_bytes(c.try_into().unwrap());
                (v != u64::MAX).then_some(v as usize)
            })
            .collect(),
    )
}

/// Deterministic stats contribution of one unit, persisted next to its
/// verdicts so a resumed campaign's merged delta matches an
/// uninterrupted run bit for bit. Drop counts follow the report rule:
/// detected before the final pattern word.
fn unit_delta<Wd: SimWord>(rs: &[Option<usize>], n_chunks: usize) -> StatsDelta {
    let detected = rs.iter().flatten().count() as u64;
    let dropped = rs
        .iter()
        .flatten()
        .filter(|&&p| p / Wd::LANES + 1 < n_chunks)
        .count() as u64;
    StatsDelta {
        injections: rs.len() as u64,
        detected,
        undetected: rs.len() as u64 - detected,
        dropped,
        faults_walked: rs.len() as u64,
        ..StatsDelta::default()
    }
}

/// Shared tail of the plain and durable packed campaigns: lane
/// telemetry, verdict expansion over the full universe and the final
/// tally/drop accounting. `stats` arrives with the timing, worker and
/// unit figures already filled by the respective driver.
fn finish_packed<Wd: SimWord>(
    faults: &[Fault],
    patterns: &[Vec<bool>],
    opts: &PackedOptions,
    chunks: &GoldenChunks<Wd>,
    expand: Option<Vec<Option<u32>>>,
    results: Vec<Option<usize>>,
    mut stats: CampaignStats,
) -> CampaignRun {
    let n_chunks = chunks.len();
    if rescue_telemetry::enabled() {
        // Bounds cover every supported width (64 * {1, 2, 4, 8}) so
        // one histogram serves all lane widths.
        let lanes = rescue_telemetry::metrics::histogram(
            "fault.packed_lanes",
            &[8, 16, 24, 32, 40, 48, 56, 64, 128, 192, 256, 384, 512],
        );
        for live in chunks.live_masks() {
            lanes.record(live.count_ones() as u64);
        }
        rescue_telemetry::metrics::gauge("fault.lane_width").set(Wd::LANES as i64);
        rescue_telemetry::metrics::gauge("fault.collapse_ratio_pct")
            .set((stats.collapse_ratio() * 100.0).round() as i64);
        if opts.tracing {
            rescue_telemetry::metrics::gauge("fault.traced_fraction_pct")
                .set((stats.traced_fraction() * 100.0).round() as i64);
        }
        if stats.dropped_global > 0 {
            rescue_telemetry::metrics::counter("fault.dropped_global")
                .add(stats.dropped_global as u64);
        }
    }
    for live in chunks.live_masks() {
        stats.record_lanes(live.count_ones() as u64, Wd::LANES as u64);
    }
    // Expand representative verdicts back over the full universe; a
    // `None` slot is an unobservable class, never detected.
    let first_detection: Vec<Option<usize>> = match &expand {
        None => results,
        Some(map) => map
            .iter()
            .map(|&slot| slot.and_then(|s| results[s as usize]))
            .collect(),
    };
    let report = CampaignReport {
        faults: faults.to_vec(),
        first_detection,
        patterns: patterns.len(),
    };
    stats.tally.detected = report.detected_count();
    stats.tally.undetected = faults.len() - stats.tally.detected;
    // A fault counts as dropped when it retired before the final
    // pattern word (same rule as the fault.dropped counter).
    stats.dropped = report
        .first_detection
        .iter()
        .flatten()
        .filter(|&&p| p / Wd::LANES + 1 < n_chunks)
        .count();
    CampaignRun { report, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::{generate, NetlistBuilder};

    fn exhaustive_patterns(n: usize) -> Vec<Vec<bool>> {
        (0..(1u32 << n))
            .map(|p| (0..n).map(|i| p >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn c17_full_coverage_exhaustive() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let sim = FaultSimulator::new(&c);
        let report = sim.campaign(&c, &faults, &exhaustive_patterns(5));
        assert_eq!(
            report.coverage(),
            1.0,
            "c17 is fully testable: {:?}",
            report.undetected()
        );
        assert_eq!(report.patterns(), 32);
    }

    #[test]
    fn redundant_fault_is_undetectable() {
        // y = a OR (a AND b): the AND gate's sa0 is redundant.
        let mut b = NetlistBuilder::new("red");
        let a = b.input("a");
        let x = b.input("b");
        let g = b.and(a, x);
        let y = b.or(a, g);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        let f = Fault::stuck_at(FaultSite::Output(g), false);
        let report = sim.campaign(&n, &[f], &exhaustive_patterns(2));
        assert_eq!(report.detected_count(), 0, "redundant fault undetectable");
    }

    #[test]
    fn pin_fault_differs_from_output_fault() {
        // Fanout stem: x feeds two ANDs. A pin sa1 on one branch is not
        // the same as the stem's output sa1.
        let mut b = NetlistBuilder::new("stem");
        let x = b.input("x");
        let p = b.input("p");
        let q = b.input("q");
        let g1 = b.and(x, p);
        let g2 = b.and(x, q);
        b.output("y1", g1);
        b.output("y2", g2);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        let pats = exhaustive_patterns(3);
        let stem = Fault::stuck_at(FaultSite::Output(x), true);
        let branch = Fault::stuck_at(FaultSite::Pin { gate: g1, pin: 0 }, true);
        let r = sim.campaign(&n, &[stem, branch], &pats);
        assert_eq!(r.detected_count(), 2);
        // x=0,p=1,q=1: stem fault corrupts both outputs, branch only y1.
        let words = pack_patterns(&[vec![false, true, true]]);
        let golden = sim.golden(&words);
        let fs = sim.with_stuck(&words, stem);
        let fb = sim.with_stuck(&words, branch);
        assert_eq!(fs[g2.index()] & 1, 1, "stem corrupts second branch");
        assert_eq!(fb[g2.index()] & 1, golden[g2.index()] & 1);
    }

    #[test]
    fn bridge_fault_detection() {
        let mut b = NetlistBuilder::new("br");
        let a = b.input("a");
        let c = b.input("c");
        let n1 = b.buf(a);
        let n2 = b.buf(c);
        b.output("y1", n1);
        b.output("y2", n2);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        // a=1, c=0: wired-AND forces both to 0 -> y1 flips.
        let words = pack_patterns(&[vec![true, false]]);
        let v = sim.with_bridge(
            &words,
            BridgingFault {
                a: n1,
                b: n2,
                wired_and: true,
            },
        );
        assert_eq!(v[n1.index()] & 1, 0);
        let v = sim.with_bridge(
            &words,
            BridgingFault {
                a: n1,
                b: n2,
                wired_and: false,
            },
        );
        assert_eq!(v[n2.index()] & 1, 1, "wired-OR pulls the 0 net up");
    }

    #[test]
    fn transition_faults_need_transitions() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.buf(a);
        b.output("y", y);
        let n = b.finish();
        let sim = FaultSimulator::new(&n);
        let faults = universe::transition_universe(&n);
        // Constant stimulus: no transitions, nothing detected.
        let r = sim.transition_campaign(&n, &faults, &[vec![false], vec![false]]);
        assert_eq!(r.detected_count(), 0);
        // 0 -> 1 launches rising transitions through a and y.
        let r = sim.transition_campaign(&n, &faults, &[vec![false], vec![true]]);
        let detected: Vec<String> = faults
            .iter()
            .zip(r.first_detection())
            .filter(|(_, d)| d.is_some())
            .map(|(f, _)| f.to_string())
            .collect();
        assert!(detected.iter().any(|f| f.contains("str")), "{detected:?}");
        // slow-to-fall needs 1 -> 0.
        let r = sim.transition_campaign(&n, &faults, &[vec![true], vec![false]]);
        let has_stf = faults
            .iter()
            .zip(r.first_detection())
            .any(|(f, d)| d.is_some() && f.kind() == FaultKind::SlowToFall);
        assert!(has_stf);
    }

    #[test]
    fn sequential_campaign_detects_through_state() {
        // Shift register: a stuck fault at the serial input shows up at the
        // output only n cycles later.
        let s = generate::shift_register(3);
        let sin = s.primary_inputs()[0];
        let sim = FaultSimulator::new(&s);
        let f = Fault::stuck_at(FaultSite::Output(sin), false);
        // Drive 1s; fault forces 0s; first output divergence at cycle 3.
        let stim: Vec<Vec<bool>> = (0..6).map(|_| vec![true]).collect();
        let r = sim.campaign_seq(&s, &[f], &stim);
        assert_eq!(r.first_detection()[0], Some(3));
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let net = generate::random_logic(8, 80, 4, 5);
        let faults = universe::stuck_at_universe(&net);
        let patterns: Vec<Vec<bool>> = (0..200u32)
            .map(|p| {
                (0..8)
                    .map(|i| p.wrapping_mul(2654435761) >> (i + 3) & 1 == 1)
                    .collect()
            })
            .collect();
        let sim = FaultSimulator::new(&net);
        let serial = sim.campaign(&net, &faults, &patterns);
        for threads in [1, 2, 4] {
            let parallel = sim.campaign_parallel(&net, &faults, &patterns, threads);
            assert_eq!(
                parallel.first_detection(),
                serial.first_detection(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn coverage_of_empty_fault_list_is_one() {
        let c = generate::c17();
        let sim = FaultSimulator::new(&c);
        let r = sim.campaign(&c, &[], &exhaustive_patterns(5));
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn detection_mask_matches_reference_engine() {
        let net = generate::random_logic(8, 120, 4, 21);
        let faults = universe::stuck_at_universe(&net);
        let patterns: Vec<Vec<bool>> = (0..64u32)
            .map(|p| {
                (0..8)
                    .map(|i| p.wrapping_mul(0x9e37) >> (i + 2) & 1 == 1)
                    .collect()
            })
            .collect();
        let words = pack_patterns(&patterns);
        let fast = FaultSimulator::new(&net);
        let slow = crate::reference::ReferenceFaultSimulator::new(&net);
        let golden = fast.golden(&words);
        assert_eq!(golden, slow.golden(&net, &words));
        for &fault in &faults {
            assert_eq!(
                fast.detection_mask(&net, &words, &golden, fault),
                slow.detection_mask(&net, &words, &golden, fault),
                "{fault}"
            );
        }
    }
}
