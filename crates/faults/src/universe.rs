//! Fault-universe generation.

use crate::model::{BridgingFault, Fault, FaultSite};
use rescue_netlist::{GateKind, Netlist};

/// The complete single-stuck-at universe: `sa0`/`sa1` on every gate output
/// plus every input pin of multi-input gates.
///
/// Constants are excluded (a stuck constant is either redundant or the
/// same constant), as are output faults on primary-input gates' pins
/// (inputs have no pins).
///
/// # Examples
///
/// ```
/// use rescue_faults::universe::stuck_at_universe;
/// use rescue_netlist::generate;
///
/// let c17 = generate::c17();
/// let faults = stuck_at_universe(&c17);
/// // 11 gates: 5 PIs + 6 NANDs; outputs: 11*2 = 22, pins: 6 gates * 2 pins * 2 = 24.
/// assert_eq!(faults.len(), 46);
/// ```
pub fn stuck_at_universe(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, g) in netlist.iter() {
        match g.kind() {
            GateKind::Const0 | GateKind::Const1 => continue,
            _ => {}
        }
        faults.push(Fault::stuck_at(FaultSite::Output(id), false));
        faults.push(Fault::stuck_at(FaultSite::Output(id), true));
        // Pin faults only where they can differ from the driver's output
        // fault, i.e. gates with >= 2 inputs (branches of fanout stems are
        // captured by pins of the sink gates).
        if g.inputs().len() >= 2 {
            for pin in 0..g.inputs().len() {
                faults.push(Fault::stuck_at(FaultSite::Pin { gate: id, pin }, false));
                faults.push(Fault::stuck_at(FaultSite::Pin { gate: id, pin }, true));
            }
        }
    }
    faults
}

/// [`stuck_at_universe`] restricted to sites whose combinational fanout
/// cone reaches a primary output.
///
/// The packed campaign front-ends prune unobservable sites on their own,
/// but on big-circuit workloads with few outputs the full universe can be
/// 50x the relevant one (e.g. the 50k-gate e17 rung: 300k faults, ~6k
/// observable) — generating the observable universe up front keeps fault
/// lists, collapse maps and reports proportional to the faults that can
/// ever be detected. Coverage figures over this universe follow the
/// standard testability convention of excluding structurally undetectable
/// faults.
pub fn stuck_at_universe_observable(netlist: &Netlist) -> Vec<Fault> {
    let observable: std::collections::HashSet<usize> =
        rescue_netlist::cone::observable_set(netlist)
            .into_iter()
            .map(|g| g.index())
            .collect();
    stuck_at_universe(netlist)
        .into_iter()
        .filter(|f| observable.contains(&f.site().gate().index()))
        .collect()
}

/// Transition-delay universe: slow-to-rise / slow-to-fall on every gate
/// output (pins omitted; transition tests target nets).
pub fn transition_universe(netlist: &Netlist) -> Vec<Fault> {
    use crate::model::FaultKind;
    let mut faults = Vec::new();
    for (id, g) in netlist.iter() {
        match g.kind() {
            GateKind::Const0 | GateKind::Const1 => continue,
            _ => {}
        }
        faults.push(Fault::new(FaultSite::Output(id), FaultKind::SlowToRise));
        faults.push(Fault::new(FaultSite::Output(id), FaultKind::SlowToFall));
    }
    faults
}

/// Enumerates candidate bridging faults between nets that are physically
/// plausible neighbours. Without layout data we use the standard academic
/// proxy: nets whose driving gates are within `window` positions of each
/// other in the levelized order (same neighbourhood of the design).
pub fn bridging_universe(netlist: &Netlist, window: usize) -> Vec<BridgingFault> {
    let order = netlist.levelize().order().to_vec();
    let mut faults = Vec::new();
    for (i, &a) in order.iter().enumerate() {
        for &b in order.iter().skip(i + 1).take(window) {
            if netlist.gate(a).kind() == GateKind::Dff || netlist.gate(b).kind() == GateKind::Dff {
                continue;
            }
            faults.push(BridgingFault {
                a,
                b,
                wired_and: true,
            });
            faults.push(BridgingFault {
                a,
                b,
                wired_and: false,
            });
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    #[test]
    fn universe_counts() {
        let c = generate::c17();
        assert_eq!(stuck_at_universe(&c).len(), 46);
        assert_eq!(transition_universe(&c).len(), 22);
    }

    #[test]
    fn constants_excluded() {
        let mut b = rescue_netlist::NetlistBuilder::new("k");
        let a = b.input("a");
        let k = b.const1();
        let y = b.and(a, k);
        b.output("y", y);
        let n = b.finish();
        let fs = stuck_at_universe(&n);
        assert!(fs
            .iter()
            .all(|f| f.site().gate() != k || matches!(f.site(), FaultSite::Pin { .. })));
    }

    #[test]
    fn observable_universe_drops_only_undetectable_faults() {
        // c17: every gate reaches an output, nothing to drop.
        let c = generate::c17();
        assert_eq!(
            stuck_at_universe_observable(&c).len(),
            stuck_at_universe(&c).len()
        );
        // Random logic with few outputs has large dead regions; the
        // observable universe must be a strict subset that still covers
        // every detectable fault.
        let net = generate::random_logic(8, 200, 2, 7);
        let full = stuck_at_universe(&net);
        let obs = stuck_at_universe_observable(&net);
        assert!(obs.len() < full.len(), "dead regions should be dropped");
        let patterns: Vec<Vec<bool>> = (0..64u32)
            .map(|p| (0..8).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let sim = crate::simulate::FaultSimulator::new(&net);
        let detected_full: Vec<Fault> = {
            let r = sim.campaign(&net, &full, &patterns);
            full.iter()
                .zip(r.first_detection())
                .filter(|(_, d)| d.is_some())
                .map(|(&f, _)| f)
                .collect()
        };
        let r = sim.campaign(&net, &obs, &patterns);
        let detected_obs: Vec<Fault> = obs
            .iter()
            .zip(r.first_detection())
            .filter(|(_, d)| d.is_some())
            .map(|(&f, _)| f)
            .collect();
        assert_eq!(detected_full, detected_obs);
    }

    #[test]
    fn bridging_window() {
        let c = generate::c17();
        let bf = bridging_universe(&c, 2);
        assert!(!bf.is_empty());
        // Each (ordered) neighbour pair gets an AND and an OR bridge.
        assert_eq!(bf.len() % 2, 0);
    }
}
