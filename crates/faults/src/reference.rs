//! Reference full-resimulation fault engine.
//!
//! This is the pre-compiled-core engine: per fault it walks the whole
//! levelized order, rebuilding a pin buffer per gate, and allocates a
//! fresh value vector per evaluation. It is deliberately kept verbatim
//! (serial paths only) as
//!
//! * the **oracle** for the equivalence property tests — the incremental
//!   cone engine in [`crate::simulate::FaultSimulator`] must produce
//!   bit-identical `first_detection` vectors; and
//! * the **baseline** for the `e12_fault_sim_engine` benchmark.
//!
//! Do not use it in production flows; it exists to keep the fast engine
//! honest.

use crate::model::{BridgingFault, Fault, FaultKind, FaultSite};
use crate::simulate::CampaignReport;
use rescue_netlist::{GateId, GateKind, Netlist};
use rescue_sim::logic::{eval_gate_bool, eval_gate_word};
use rescue_sim::parallel::pack_patterns;

/// Full-resimulation fault simulator (see module docs).
#[derive(Debug, Clone)]
pub struct ReferenceFaultSimulator {
    order: Vec<GateId>,
}

impl ReferenceFaultSimulator {
    /// Prepares a simulator for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        ReferenceFaultSimulator {
            order: netlist.levelize().order().to_vec(),
        }
    }

    /// Golden (fault-free) 64-way evaluation. `words[i]` is input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from the primary-input count.
    pub fn golden(&self, netlist: &Netlist, words: &[u64]) -> Vec<u64> {
        self.eval_with(netlist, words, None, None)
    }

    /// Evaluates 64 packed patterns with `fault` active; returns all gate
    /// values.
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch or a non-stuck-at fault kind.
    pub fn with_stuck(&self, netlist: &Netlist, words: &[u64], fault: Fault) -> Vec<u64> {
        let value = fault
            .kind()
            .stuck_value()
            .expect("with_stuck requires a stuck-at fault");
        self.eval_with(netlist, words, Some((fault.site(), value)), None)
    }

    /// Evaluates with a wired-AND/OR bridge active (two-pass resolution).
    ///
    /// # Panics
    ///
    /// Panics on input-width mismatch.
    pub fn with_bridge(&self, netlist: &Netlist, words: &[u64], bridge: BridgingFault) -> Vec<u64> {
        let golden = self.golden(netlist, words);
        let va = golden[bridge.a.index()];
        let vb = golden[bridge.b.index()];
        let v = if bridge.wired_and { va & vb } else { va | vb };
        self.eval_with(netlist, words, None, Some((bridge, v)))
    }

    fn eval_with(
        &self,
        netlist: &Netlist,
        words: &[u64],
        stuck: Option<(FaultSite, bool)>,
        bridge: Option<(BridgingFault, u64)>,
    ) -> Vec<u64> {
        let pis = netlist.primary_inputs();
        assert_eq!(words.len(), pis.len(), "input word count mismatch");
        let mut values = vec![0u64; netlist.len()];
        for (i, &pi) in pis.iter().enumerate() {
            values[pi.index()] = words[i];
        }
        let (stuck_out, stuck_pin, stuck_word) = match stuck {
            Some((FaultSite::Output(g), v)) => (Some(g), None, if v { u64::MAX } else { 0 }),
            Some((FaultSite::Pin { gate, pin }, v)) => {
                (None, Some((gate, pin)), if v { u64::MAX } else { 0 })
            }
            None => (None, None, 0),
        };
        let mut buf: Vec<u64> = Vec::with_capacity(4);
        for &id in &self.order {
            let g = netlist.gate(id);
            match g.kind() {
                GateKind::Input => {}
                GateKind::Dff => values[id.index()] = 0,
                kind => {
                    buf.clear();
                    buf.extend(g.inputs().iter().map(|&p| values[p.index()]));
                    if let Some((fg, fp)) = stuck_pin {
                        if fg == id {
                            buf[fp] = stuck_word;
                        }
                    }
                    values[id.index()] = eval_gate_word(kind, &buf);
                }
            }
            if stuck_out == Some(id) {
                values[id.index()] = stuck_word;
            }
            if let Some((br, v)) = bridge {
                if br.a == id || br.b == id {
                    values[id.index()] = v;
                }
            }
        }
        values
    }

    /// Bitmask of patterns (bit `p`) on which `fault` is detected at a
    /// primary output, given the golden values for the same words.
    pub fn detection_mask(
        &self,
        netlist: &Netlist,
        words: &[u64],
        golden: &[u64],
        fault: Fault,
    ) -> u64 {
        let faulty = self.with_stuck(netlist, words, fault);
        netlist.primary_outputs().iter().fold(0u64, |m, (_, g)| {
            m | (golden[g.index()] ^ faulty[g.index()])
        })
    }

    /// Serial stuck-at campaign with fault dropping, by full
    /// resimulation per (fault, chunk).
    ///
    /// # Panics
    ///
    /// Panics if any pattern width differs from the primary-input count.
    pub fn campaign(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
    ) -> CampaignReport {
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        for (chunk_idx, chunk) in patterns.chunks(64).enumerate() {
            let words = pack_patterns(chunk);
            let golden = self.golden(netlist, &words);
            for (fi, &fault) in faults.iter().enumerate() {
                if first_detection[fi].is_some() {
                    continue; // fault dropping
                }
                let mask = self.detection_mask(netlist, &words, &golden, fault);
                let mask = if chunk.len() < 64 {
                    mask & ((1u64 << chunk.len()) - 1)
                } else {
                    mask
                };
                if mask != 0 {
                    first_detection[fi] = Some(chunk_idx * 64 + mask.trailing_zeros() as usize);
                }
            }
        }
        CampaignReport::from_parts(faults.to_vec(), first_detection, patterns.len())
    }

    /// Transition-delay campaign over consecutive pattern pairs; see
    /// [`crate::simulate::FaultSimulator::transition_campaign`].
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or a non-transition fault in `faults`.
    pub fn transition_campaign(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        patterns: &[Vec<bool>],
    ) -> CampaignReport {
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        for (i, pats) in patterns.windows(2).enumerate() {
            let words_capture = pack_patterns(&pats[1..]);
            let g_launch = self.golden(netlist, &pack_patterns(&pats[..1]));
            let g_capture = self.golden(netlist, &words_capture);
            for (fi, &fault) in faults.iter().enumerate() {
                if first_detection[fi].is_some() {
                    continue;
                }
                let site_gate = match fault.site() {
                    FaultSite::Output(g) => g,
                    FaultSite::Pin { .. } => panic!("transition faults sit on outputs"),
                };
                let (from, to, stuck) = match fault.kind() {
                    FaultKind::SlowToRise => (0u64, 1u64, false),
                    FaultKind::SlowToFall => (1, 0, true),
                    _ => panic!("transition_campaign requires transition faults"),
                };
                let launch_v = g_launch[site_gate.index()] & 1;
                let capture_v = g_capture[site_gate.index()] & 1;
                if launch_v != from || capture_v != to {
                    continue; // no launching transition
                }
                let eq = Fault::stuck_at(FaultSite::Output(site_gate), stuck);
                let mask = self.detection_mask(netlist, &words_capture, &g_capture, eq);
                if mask & 1 != 0 {
                    first_detection[fi] = Some(i + 1);
                }
            }
        }
        CampaignReport::from_parts(faults.to_vec(), first_detection, patterns.len())
    }

    /// Sequential stuck-at campaign from the all-zero state; see
    /// [`crate::simulate::FaultSimulator::campaign_seq`].
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or non-stuck-at faults.
    pub fn campaign_seq(
        &self,
        netlist: &Netlist,
        faults: &[Fault],
        stimuli: &[Vec<bool>],
    ) -> CampaignReport {
        let mut first_detection: Vec<Option<usize>> = vec![None; faults.len()];
        let golden_trace = self.seq_trace(netlist, stimuli, None);
        for (fi, &fault) in faults.iter().enumerate() {
            let value = fault
                .kind()
                .stuck_value()
                .expect("campaign_seq requires stuck-at faults");
            let faulty_trace = self.seq_trace(netlist, stimuli, Some((fault.site(), value)));
            for (cycle, (g, f)) in golden_trace.iter().zip(&faulty_trace).enumerate() {
                if g != f {
                    first_detection[fi] = Some(cycle);
                    break;
                }
            }
        }
        CampaignReport::from_parts(faults.to_vec(), first_detection, stimuli.len())
    }

    fn seq_trace(
        &self,
        netlist: &Netlist,
        stimuli: &[Vec<bool>],
        stuck: Option<(FaultSite, bool)>,
    ) -> Vec<Vec<bool>> {
        let pis = netlist.primary_inputs();
        let mut state = vec![false; netlist.dffs().len()];
        let mut trace = Vec::with_capacity(stimuli.len());
        for inputs in stimuli {
            assert_eq!(inputs.len(), pis.len(), "stimulus width mismatch");
            let mut values = vec![false; netlist.len()];
            for (i, &pi) in pis.iter().enumerate() {
                values[pi.index()] = inputs[i];
            }
            for (i, &dff) in netlist.dffs().iter().enumerate() {
                values[dff.index()] = state[i];
            }
            let mut buf: Vec<bool> = Vec::with_capacity(4);
            for &id in &self.order {
                let g = netlist.gate(id);
                match g.kind() {
                    GateKind::Input | GateKind::Dff => {}
                    kind => {
                        buf.clear();
                        buf.extend(g.inputs().iter().map(|&p| values[p.index()]));
                        if let Some((FaultSite::Pin { gate, pin }, v)) = stuck {
                            if gate == id {
                                buf[pin] = v;
                            }
                        }
                        values[id.index()] = eval_gate_bool(kind, &buf);
                    }
                }
                if let Some((FaultSite::Output(g), v)) = stuck {
                    if g == id {
                        values[id.index()] = v;
                    }
                }
            }
            for (i, &dff) in netlist.dffs().iter().enumerate() {
                state[i] = values[netlist.gate(dff).inputs()[0].index()];
            }
            trace.push(rescue_sim::comb::outputs_of(netlist, &values));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe;
    use rescue_netlist::generate;

    #[test]
    fn reference_covers_c17_exhaustively() {
        let c = generate::c17();
        let faults = universe::stuck_at_universe(&c);
        let sim = ReferenceFaultSimulator::new(&c);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let report = sim.campaign(&c, &faults, &patterns);
        assert_eq!(report.coverage(), 1.0);
    }
}
