//! Parallel plan construction and the compiled-artifact cache must be
//! invisible: sharded builds byte-identical to serial ones, cache reloads
//! byte-identical to fresh builds, verdicts unchanged through both.
//!
//! These properties are the entire correctness argument for the
//! million-gate scaling work — the benchmarks only measure speed because
//! this suite pins equivalence.

use proptest::prelude::*;
use rescue_campaign::{ArtifactStore, Campaign};
use rescue_faults::engine::{po_reachable, po_reachable_with, CampaignPlan};
use rescue_faults::simulate::{FaultSimulator, PackedOptions};
use rescue_faults::trace::TracePlan;
use rescue_faults::{collapse, universe};
use rescue_netlist::generate;
use rescue_sim::compiled::CompiledNetlist;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1);
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

fn scratch_store(tag: &str, seed: u64) -> (std::path::PathBuf, ArtifactStore) {
    let dir = std::env::temp_dir().join(format!(
        "rescue-plan-eq-{tag}-{seed}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = ArtifactStore::open(&dir);
    (dir, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded cone construction concatenates to exactly the serial CSR,
    /// for both the full and the observability-restricted plan family.
    #[test]
    fn parallel_plan_build_matches_serial(seed in 1u64..500, workers in 2usize..5) {
        let net = generate::random_logic(8, 120, 4, seed);
        let c = CompiledNetlist::new(&net);
        let faults = universe::stuck_at_universe(&net);
        let serial = CampaignPlan::build(&c, &faults);
        let parallel = CampaignPlan::build_with(&c, &faults, workers);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.to_bytes(), parallel.to_bytes());
        let serial_obs = CampaignPlan::build_observable(&c, &faults);
        let parallel_obs = CampaignPlan::build_observable_with(&c, &faults, workers);
        prop_assert_eq!(&serial_obs, &parallel_obs);
        prop_assert_eq!(serial_obs.to_bytes(), parallel_obs.to_bytes());
    }

    /// Trace-plan construction (net classification + chain ascent + the
    /// restricted cone build) shards without changing a byte.
    #[test]
    fn parallel_trace_build_matches_serial(seed in 1u64..500, workers in 2usize..5) {
        let net = generate::random_logic(8, 120, 4, seed);
        let c = CompiledNetlist::new(&net);
        let faults = universe::stuck_at_universe(&net);
        let serial = TracePlan::build(&c, &faults);
        let parallel = TracePlan::build_with(&c, &faults, workers);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.to_bytes(), parallel.to_bytes());
    }

    /// Sharded collapse produces the same representatives and the same
    /// per-fault representative mapping as the serial rule pass.
    #[test]
    fn parallel_collapse_matches_serial(seed in 1u64..500, workers in 2usize..5) {
        let net = generate::random_logic(8, 120, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let serial = collapse::collapse(&net, &faults);
        let parallel = collapse::collapse_with(&net, &faults, workers);
        prop_assert_eq!(serial.representatives(), parallel.representatives());
        for &f in &faults {
            prop_assert_eq!(serial.representative(f), parallel.representative(f));
        }
    }

    /// Wire round trips reconstruct plans exactly, so a cache hit is
    /// indistinguishable from a fresh build.
    #[test]
    fn plan_wire_round_trips(seed in 1u64..500) {
        let net = generate::random_logic(8, 120, 4, seed);
        let c = CompiledNetlist::new(&net);
        let faults = universe::stuck_at_universe(&net);
        let plan = CampaignPlan::build(&c, &faults);
        prop_assert_eq!(CampaignPlan::from_bytes(&plan.to_bytes()).unwrap(), plan);
        let tplan = TracePlan::build(&c, &faults);
        prop_assert_eq!(TracePlan::from_bytes(&tplan.to_bytes()).unwrap(), tplan);
        let compiled_bytes = c.to_bytes();
        prop_assert_eq!(CompiledNetlist::from_bytes(&compiled_bytes).unwrap(), c);
    }

    /// End to end through the artifact store: a cold campaign publishes
    /// its plans, a warm one reloads them, and verdicts are identical to
    /// running with no cache at all — across lane widths, collapse and
    /// tracing settings.
    #[test]
    fn cached_campaign_matches_uncached(
        seed in 1u64..200,
        wide in any::<bool>(),
        tracing in any::<bool>(),
        collapsed in any::<bool>(),
    ) {
        let lane_width = if wide { 4 } else { 1 };
        let net = generate::random_logic(6, 80, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(6, 48, seed);
        let campaign = Campaign::new(seed, 2);
        let cu = collapse::collapse(&net, &faults);
        let mut opts = PackedOptions::wide(lane_width);
        if tracing {
            opts = opts.traced();
        }
        if collapsed {
            opts = opts.with_collapsed(&cu);
        }
        let baseline =
            FaultSimulator::new(&net).campaign_packed(&faults, &patterns, &campaign, opts);

        let (dir, store) = scratch_store("e2e", seed);
        for pass in ["cold", "warm"] {
            let sim = FaultSimulator::new_cached(&net, &store);
            let run = sim.campaign_packed(&faults, &patterns, &campaign, opts.with_artifacts(&store));
            prop_assert_eq!(
                run.report.first_detection(),
                baseline.report.first_detection(),
                "{} cache pass diverged",
                pass
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The small-design proptests above stay under the serial-fallback
/// thresholds for the level sweep, net classification and collapse; this
/// one design is big enough to force every parallel code path.
#[test]
fn parallel_paths_engage_above_thresholds() {
    let net = generate::random_logic(24, 40_000, 8, 11);
    let c = CompiledNetlist::new(&net);
    assert_eq!(po_reachable(&c), po_reachable_with(&c, 4));

    let faults = universe::stuck_at_universe(&net);
    assert!(
        faults.len() > 1 << 14,
        "universe must cross the collapse threshold"
    );
    let serial = collapse::collapse(&net, &faults);
    let parallel = collapse::collapse_with(&net, &faults, 4);
    assert_eq!(serial.representatives(), parallel.representatives());

    // A strided fault subset keeps the cone DFS affordable while still
    // exercising the sharded builders on a >2^15-gate design.
    let subset: Vec<_> = faults.iter().copied().step_by(97).collect();
    assert_eq!(
        CampaignPlan::build(&c, &subset).to_bytes(),
        CampaignPlan::build_with(&c, &subset, 4).to_bytes()
    );
    assert_eq!(
        TracePlan::build(&c, &subset).to_bytes(),
        TracePlan::build_with(&c, &subset, 4).to_bytes()
    );
}
