//! Durable campaigns ≡ plain campaigns, under every interruption.
//!
//! The acceptance bar for the content-addressed work-unit refactor: a
//! durable campaign must reproduce the plain engine's verdicts and
//! outcome tallies bit for bit whether it starts cold, resumes a store
//! holding any subset of finished units (a killed run), shares the
//! store with a concurrent writer, or re-submits against a complete
//! store (executing zero units) — across lane widths, collapse/tracing
//! settings, schedules, worker counts and unit grains. The plan itself
//! must be engine-configuration-stable so any process can resume it.

use proptest::prelude::*;
use rescue_campaign::{Campaign, FsStore, MemStore, ResultStore, Schedule};
use rescue_faults::collapse::collapse;
use rescue_faults::simulate::{FaultSimulator, PackedOptions};
use rescue_faults::universe;
use rescue_netlist::generate;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// A workload whose collapsed/traced variants all exercise dropping,
/// expansion and undetected faults.
struct Workload {
    net: rescue_netlist::Netlist,
    patterns: Vec<Vec<bool>>,
}

impl Workload {
    fn new(seed: u64) -> Self {
        Workload {
            net: generate::random_logic(7, 110, 4, seed),
            patterns: random_patterns(7, 200, seed),
        }
    }
}

/// Runs the plain and durable engines over the same workload and
/// checks cold/resume/warm equivalence for one engine configuration.
fn check_resume(seed: u64, lane_width: usize, collapsed: bool, tracing: bool, workers: usize) {
    let w = Workload::new(seed);
    let faults = universe::stuck_at_universe(&w.net);
    let sim = FaultSimulator::new(&w.net);
    let cu = collapsed.then(|| collapse(&w.net, &faults));
    let mk_opts = || {
        let mut opts = PackedOptions::wide(lane_width);
        if let Some(cu) = &cu {
            opts = opts.with_collapsed(cu);
        }
        if tracing {
            opts = opts.traced();
        }
        opts
    };
    let campaign = Campaign::new(seed, workers);
    let plain = sim.campaign_packed(&faults, &w.patterns, &campaign, mk_opts());

    // Cold durable run: everything executes, verdicts match plain.
    let store = MemStore::new();
    let grain = 32;
    let cold =
        sim.campaign_packed_durable(&faults, &w.patterns, &campaign, mk_opts(), &store, grain);
    assert_eq!(cold.report, plain.report, "cold durable ≡ plain");
    assert_eq!(cold.stats.tally, plain.stats.tally);
    assert_eq!(cold.stats.dropped, plain.stats.dropped);
    let manifest = sim.durable_plan(&faults, &w.patterns, &mk_opts(), grain);
    assert_eq!(cold.stats.units_total, manifest.units.len());
    assert_eq!(cold.stats.units_executed, manifest.units.len());

    // Kill simulation: keep every other unit (as if the process died
    // mid-campaign), resume under a different worker count and
    // schedule — verdicts and tallies must not move.
    let partial = MemStore::new();
    for (ui, unit) in manifest.units.iter().enumerate() {
        if ui % 2 == 0 {
            partial.put(unit.id, &store.get(unit.id).expect("cold run stored it"));
        }
    }
    let kept = manifest.units.len().div_ceil(2);
    let resumer = Campaign {
        schedule: Schedule::Dynamic { chunk: 1 },
        ..Campaign::new(seed ^ 0xdead, workers % 3 + 1)
    };
    let resumed =
        sim.campaign_packed_durable(&faults, &w.patterns, &resumer, mk_opts(), &partial, grain);
    assert_eq!(resumed.report, plain.report, "resumed ≡ uninterrupted");
    assert_eq!(resumed.stats.tally, plain.stats.tally);
    assert_eq!(resumed.stats.units_cached, kept);
    assert_eq!(
        resumed.stats.units_executed,
        manifest.units.len() - kept,
        "resume executes only the missing units"
    );

    // Warm re-submission: the store is now complete → zero executions.
    let warm =
        sim.campaign_packed_durable(&faults, &w.patterns, &campaign, mk_opts(), &partial, grain);
    assert_eq!(warm.report, plain.report);
    assert_eq!(warm.stats.units_executed, 0, "warm run executes nothing");
    assert_eq!(warm.stats.units_cached, manifest.units.len());
    assert_eq!(warm.stats.cache_hit_ratio(), 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scalar-width durable campaigns resume bit-identically across
    /// collapse settings and worker counts.
    #[test]
    fn resume_is_bit_identical_w1(seed in 1u64..500, collapsed: bool, workers in 1usize..5) {
        check_resume(seed, 1, collapsed, false, workers);
    }

    /// Wide-word (W=4) durable campaigns resume bit-identically, with
    /// and without critical-path tracing.
    #[test]
    fn resume_is_bit_identical_w4(seed in 1u64..500, tracing: bool, workers in 1usize..5) {
        check_resume(seed, 4, true, tracing, workers);
    }
}

/// The plan is a pure function of campaign content: stable across
/// processes (same ids every time), insensitive to workers/schedule,
/// and keyed on everything that changes verdict identity.
#[test]
fn durable_plan_is_content_addressed() {
    let w = Workload::new(42);
    let faults = universe::stuck_at_universe(&w.net);
    let sim = FaultSimulator::new(&w.net);
    let opts = PackedOptions::wide(2);
    let a = sim.durable_plan(&faults, &w.patterns, &opts, 16);
    let b = sim.durable_plan(&faults, &w.patterns, &opts, 16);
    assert_eq!(a, b, "same campaign, same plan");
    assert_eq!(
        a.total_items,
        faults.len(),
        "uncollapsed plan covers the universe"
    );
    // Patterns are part of the identity...
    let other = sim.durable_plan(&faults, &w.patterns[..100], &opts, 16);
    assert_ne!(a.campaign, other.campaign);
    // ...and so is the engine configuration.
    let traced = sim.durable_plan(&faults, &w.patterns, &opts.traced(), 16);
    assert_ne!(a.campaign, traced.campaign);
    // Collapsing shrinks the plan to the walk list.
    let cu = collapse(&w.net, &faults);
    let collapsed = sim.durable_plan(&faults, &w.patterns, &opts.with_collapsed(&cu), 16);
    assert!(collapsed.total_items < faults.len());
}

/// Two concurrent writers on one filesystem store partition the units
/// between them — no unit executes twice, both reproduce the plain
/// verdicts.
#[test]
fn two_processes_share_one_fs_store() {
    let w = Workload::new(7);
    let faults = universe::stuck_at_universe(&w.net);
    let sim = FaultSimulator::new(&w.net);
    let plain = sim.campaign_packed(
        &faults,
        &w.patterns,
        &Campaign::serial(),
        PackedOptions::default(),
    );
    let root = std::env::temp_dir().join(format!(
        "rescue-resume-eq-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let grain = 8;
    let (a, b) = std::thread::scope(|scope| {
        let spawn = |seed: u64| {
            let root = root.clone();
            let sim = &sim;
            let faults = &faults;
            let patterns = &w.patterns;
            scope.spawn(move || {
                let store = FsStore::open(root);
                sim.campaign_packed_durable(
                    faults,
                    patterns,
                    &Campaign::new(seed, 2),
                    PackedOptions::default(),
                    &store,
                    grain,
                )
            })
        };
        let ha = spawn(1);
        let hb = spawn(2);
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a.report, plain.report);
    assert_eq!(b.report, plain.report);
    let units = sim
        .durable_plan(&faults, &w.patterns, &PackedOptions::default(), grain)
        .units
        .len();
    assert_eq!(
        a.stats.units_executed + b.stats.units_executed,
        units,
        "claims partition the units: nothing double-executed, nothing lost"
    );
    let _ = std::fs::remove_dir_all(&root);
}
