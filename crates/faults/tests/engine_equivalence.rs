//! Equivalence of the incremental cone engine against the
//! full-resimulation reference oracle.
//!
//! The compiled fault simulator ([`FaultSimulator`]) must produce
//! **bit-identical** verdicts to [`ReferenceFaultSimulator`] — same
//! `first_detection` vector, same detection masks, same faulty values —
//! for every campaign kind: output stuck-at, pin stuck-at, bridging,
//! transition pairs and sequential stuck-at. The parallel campaign must
//! match the serial one for any worker count.

use proptest::prelude::*;
use rescue_faults::model::BridgingFault;
use rescue_faults::reference::ReferenceFaultSimulator;
use rescue_faults::simulate::FaultSimulator;
use rescue_faults::{universe, Fault, FaultSite};
use rescue_netlist::generate;
use rescue_sim::parallel::pack_patterns;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full stuck-at universes (output + pin faults) over random logic:
    /// identical first-detection vectors, serial new vs serial reference.
    #[test]
    fn stuck_at_campaign_matches_reference(seed in 1u64..500) {
        let net = generate::random_logic(7, 90, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(7, 150, seed);
        let fast = FaultSimulator::new(&net);
        let slow = ReferenceFaultSimulator::new(&net);
        let a = fast.campaign(&net, &faults, &patterns);
        let b = slow.campaign(&net, &faults, &patterns);
        prop_assert_eq!(a.first_detection(), b.first_detection());
        prop_assert_eq!(a.patterns(), b.patterns());
    }

    /// Per-fault detection masks agree on every chunk, including partial
    /// last chunks, for both output and pin sites.
    #[test]
    fn detection_masks_match_reference(seed in 1u64..500) {
        let net = generate::random_logic(6, 60, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        // 37 patterns: exercises the partial-chunk path downstream.
        let patterns = random_patterns(6, 37, seed);
        let words = pack_patterns(&patterns);
        let fast = FaultSimulator::new(&net);
        let slow = ReferenceFaultSimulator::new(&net);
        let golden = fast.golden(&words);
        prop_assert_eq!(&golden, &slow.golden(&net, &words));
        for &fault in &faults {
            prop_assert_eq!(
                fast.detection_mask(&net, &words, &golden, fault),
                slow.detection_mask(&net, &words, &golden, fault),
                "{}", fault
            );
        }
    }

    /// Faulty value vectors agree gate-for-gate (not just at outputs) for
    /// stuck-at faults on outputs and pins.
    #[test]
    fn with_stuck_matches_reference(seed in 1u64..500) {
        let net = generate::random_logic(6, 50, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let words = pack_patterns(&random_patterns(6, 64, seed));
        let fast = FaultSimulator::new(&net);
        let slow = ReferenceFaultSimulator::new(&net);
        for &fault in faults.iter().take(60) {
            prop_assert_eq!(
                fast.with_stuck(&words, fault),
                slow.with_stuck(&net, &words, fault),
                "{}", fault
            );
        }
    }

    /// Bridging-fault evaluation agrees gate-for-gate.
    #[test]
    fn bridging_matches_reference(seed in 1u64..500) {
        let net = generate::random_logic(6, 50, 3, seed);
        let bridges = universe::bridging_universe(&net, 4);
        let words = pack_patterns(&random_patterns(6, 64, seed));
        let fast = FaultSimulator::new(&net);
        let slow = ReferenceFaultSimulator::new(&net);
        for &bridge in bridges.iter().take(40) {
            prop_assert_eq!(
                fast.with_bridge(&words, bridge),
                slow.with_bridge(&net, &words, bridge)
            );
        }
        // Both wired-AND and wired-OR polarities on a fixed pair.
        if let (Some(a), Some(b)) = (net.ids().nth(6), net.ids().nth(9)) {
            for wired_and in [true, false] {
                let br = BridgingFault { a, b, wired_and };
                prop_assert_eq!(
                    fast.with_bridge(&words, br),
                    slow.with_bridge(&net, &words, br)
                );
            }
        }
    }

    /// Transition-delay campaigns over pattern pairs agree.
    #[test]
    fn transition_campaign_matches_reference(seed in 1u64..500) {
        let net = generate::random_logic(6, 70, 3, seed);
        let faults = universe::transition_universe(&net);
        let patterns = random_patterns(6, 40, seed);
        let fast = FaultSimulator::new(&net);
        let slow = ReferenceFaultSimulator::new(&net);
        let a = fast.transition_campaign(&net, &faults, &patterns);
        let b = slow.transition_campaign(&net, &faults, &patterns);
        prop_assert_eq!(a.first_detection(), b.first_detection());
    }

    /// Sequential campaigns agree on state-holding designs (LFSR) and on
    /// purely combinational ones.
    #[test]
    fn sequential_campaign_matches_reference(seed in 1u64..200) {
        let lfsr = generate::lfsr(5, &[4, 2]);
        let faults = universe::stuck_at_universe(&lfsr);
        let stimuli: Vec<Vec<bool>> = (0..12).map(|_| vec![]).collect();
        let fast = FaultSimulator::new(&lfsr);
        let slow = ReferenceFaultSimulator::new(&lfsr);
        let a = fast.campaign_seq(&lfsr, &faults, &stimuli);
        let b = slow.campaign_seq(&lfsr, &faults, &stimuli);
        prop_assert_eq!(a.first_detection(), b.first_detection());

        let comb = generate::random_logic(5, 40, 2, seed);
        let cf = universe::stuck_at_universe(&comb);
        let stim = random_patterns(5, 10, seed);
        let a = FaultSimulator::new(&comb).campaign_seq(&comb, &cf, &stim);
        let b = ReferenceFaultSimulator::new(&comb).campaign_seq(&comb, &cf, &stim);
        prop_assert_eq!(a.first_detection(), b.first_detection());
    }

    /// The parallel campaign is verdict-identical to the serial one for
    /// 1, 2, 4 and 8 workers.
    #[test]
    fn parallel_matches_serial_any_thread_count(seed in 1u64..300) {
        let net = generate::random_logic(8, 110, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(8, 180, seed);
        let sim = FaultSimulator::new(&net);
        let serial = sim.campaign(&net, &faults, &patterns);
        for threads in [1usize, 2, 4, 8] {
            let par = sim.campaign_parallel(&net, &faults, &patterns, threads);
            prop_assert_eq!(
                par.first_detection(),
                serial.first_detection(),
                "threads = {}", threads
            );
        }
    }
}

/// Shift-register fault visible only through several cycles of state:
/// both engines agree on the exact detection cycle.
#[test]
fn shift_register_seq_equivalence() {
    let s = generate::shift_register(4);
    let sin = s.primary_inputs()[0];
    let faults = vec![
        Fault::stuck_at(FaultSite::Output(sin), false),
        Fault::stuck_at(FaultSite::Output(sin), true),
    ];
    let stim: Vec<Vec<bool>> = (0..10).map(|c| vec![c % 2 == 0]).collect();
    let a = FaultSimulator::new(&s).campaign_seq(&s, &faults, &stim);
    let b = ReferenceFaultSimulator::new(&s).campaign_seq(&s, &faults, &stim);
    assert_eq!(a.first_detection(), b.first_detection());
}

/// Exhaustive c17 agreement — every fault, every pattern, no sampling.
#[test]
fn c17_exhaustive_equivalence() {
    let c = generate::c17();
    let faults = universe::stuck_at_universe(&c);
    let patterns: Vec<Vec<bool>> = (0..32u32)
        .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let a = FaultSimulator::new(&c).campaign(&c, &faults, &patterns);
    let b = ReferenceFaultSimulator::new(&c).campaign(&c, &faults, &patterns);
    assert_eq!(a.first_detection(), b.first_detection());
    assert_eq!(a.coverage(), 1.0);
}
