//! Equivalence of the PPSFP packed observability path against the
//! scalar cone engine, and of the work-stealing scheduler against the
//! static sharded driver.
//!
//! [`CampaignPlan::detect_packed`] factors detection into one
//! observability walk per (site, 64-pattern word) shared by every fault
//! at that site; these tests pin down that the factoring is **exact** —
//! identical detection masks per word, identical `first_detection`
//! vectors with and without fault dropping, for every worker count,
//! schedule and chunk grain — and that `Campaign::run_dynamic` is
//! verdict- and order-identical to `run_sharded` no matter which worker
//! claims which chunk.

use proptest::prelude::*;
use rescue_campaign::{Campaign, Schedule};
use rescue_faults::engine::{CampaignPlan, FaultScratch};
use rescue_faults::simulate::FaultSimulator;
use rescue_faults::universe;
use rescue_netlist::generate;
use rescue_sim::parallel::{live_mask, pack_patterns};

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-word detection masks from the packed observability path equal
    /// the scalar `detect` oracle for every fault on every chunk,
    /// including partial last chunks (73 patterns = 64 + 9).
    #[test]
    fn detect_packed_masks_match_scalar(seed in 1u64..500) {
        let net = generate::random_logic(7, 90, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(7, 73, seed);
        let sim = FaultSimulator::new(&net);
        let c = sim.compiled();
        let plan = CampaignPlan::build(c, &faults);
        let mut scalar = FaultScratch::new(c.len());
        let mut packed = FaultScratch::new(c.len());
        for chunk in patterns.chunks(64) {
            let words = pack_patterns(chunk);
            let golden = sim.golden(&words);
            let live = live_mask(chunk.len());
            scalar.load_golden(&golden);
            packed.load_golden(&golden);
            for &fault in &faults {
                prop_assert_eq!(
                    plan.detect_packed(c, &golden, &mut packed, fault).unwrap() & live,
                    plan.detect(c, &golden, &mut scalar, fault) & live,
                    "{}", fault
                );
            }
        }
    }

    /// The full packed campaign — with fault dropping — produces the
    /// same `first_detection` vector as the scalar dropping campaign,
    /// for every worker count under both schedules and several explicit
    /// chunk grains.
    #[test]
    fn packed_campaign_matches_scalar_any_schedule(seed in 1u64..300) {
        let net = generate::random_logic(8, 110, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(8, 180, seed);
        let sim = FaultSimulator::new(&net);
        let scalar = sim.campaign(&net, &faults, &patterns);
        for workers in [1usize, 2, 4, 8] {
            for schedule in [
                Schedule::Static,
                Schedule::Dynamic { chunk: 0 },
                Schedule::Dynamic { chunk: 1 },
                Schedule::Dynamic { chunk: 17 },
            ] {
                let run = sim.campaign_with_stats(
                    &faults,
                    &patterns,
                    &Campaign::new(0, workers).with_schedule(schedule),
                );
                prop_assert_eq!(
                    run.report.first_detection(),
                    scalar.first_detection(),
                    "workers = {}, schedule = {:?}", workers, schedule
                );
            }
        }
    }

    /// Without dropping — every fault probed on every word — the packed
    /// path still reproduces the scalar masks fault-for-fault, so the
    /// shared observability word is exact even for faults the dropping
    /// campaign would have retired long ago.
    #[test]
    fn packed_without_dropping_matches_scalar(seed in 1u64..300) {
        let net = generate::random_logic(6, 70, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(6, 100, seed);
        let sim = FaultSimulator::new(&net);
        let c = sim.compiled();
        let plan = CampaignPlan::build(c, &faults);
        let mut scalar = FaultScratch::new(c.len());
        let mut packed = FaultScratch::new(c.len());
        let mut first_scalar = vec![None; faults.len()];
        let mut first_packed = vec![None; faults.len()];
        for (ci, chunk) in patterns.chunks(64).enumerate() {
            let words = pack_patterns(chunk);
            let golden = sim.golden(&words);
            let live = live_mask(chunk.len());
            scalar.load_golden(&golden);
            packed.load_golden(&golden);
            // No `continue` on prior detection: both paths keep probing.
            for (fi, &fault) in faults.iter().enumerate() {
                let ms = plan.detect(c, &golden, &mut scalar, fault) & live;
                let mp = plan.detect_packed(c, &golden, &mut packed, fault).unwrap() & live;
                prop_assert_eq!(ms, mp, "{}", fault);
                for (first, mask) in [(&mut first_scalar, ms), (&mut first_packed, mp)] {
                    if first[fi].is_none() && mask != 0 {
                        first[fi] = Some(ci * 64 + mask.trailing_zeros() as usize);
                    }
                }
            }
        }
        prop_assert_eq!(first_scalar, first_packed);
    }

    /// `run_dynamic` is result- and order-identical to `run_sharded`
    /// across worker counts and chunk grains (reshard stability), with
    /// chunk/steal accounting that adds up.
    #[test]
    fn run_dynamic_matches_run_sharded(len in 0usize..400, seed in 0u64..100) {
        let items: Vec<u64> = (0..len as u64).collect();
        let baseline = Campaign::new(seed, 1)
            .run_sharded(&items, |_| (), |_, i, &x| (i, x.wrapping_mul(seed | 1)));
        for workers in [1usize, 2, 3, 4, 8] {
            for chunk in [0usize, 1, 7, 64] {
                let campaign = Campaign::new(seed, workers)
                    .with_schedule(Schedule::Dynamic { chunk });
                let run = campaign.run_dynamic(
                    &items,
                    |_| (),
                    |_, offset, shard| {
                        shard
                            .iter()
                            .enumerate()
                            .map(|(i, &x)| (offset + i, x.wrapping_mul(seed | 1)))
                            .collect()
                    },
                );
                prop_assert_eq!(&baseline.results, &run.results,
                    "workers = {}, chunk = {}", workers, chunk);
                if len > 0 {
                    let grain = campaign.chunk_size(len);
                    // Serial runs (and single-chunk queues) take the
                    // inline fast path: one whole-range chunk.
                    let expect = if workers == 1 || len.div_ceil(grain) == 1 {
                        1
                    } else {
                        len.div_ceil(grain)
                    };
                    prop_assert_eq!(run.chunks, expect);
                }
            }
        }
    }
}

/// Sites whose fanout cone reaches no primary output are statically
/// unobservable: the packed path must report 0 for every fault there
/// (matching scalar), and `CampaignPlan::observable` must agree with a
/// direct cone scan.
#[test]
fn unobservable_sites_detect_nothing() {
    let net = generate::random_logic(10, 400, 2, 99);
    let faults = universe::stuck_at_universe(&net);
    let patterns = random_patterns(10, 64, 99);
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let plan = CampaignPlan::build(c, &faults);
    let words = pack_patterns(&patterns);
    let golden = sim.golden(&words);
    let mut scratch = FaultScratch::new(c.len());
    scratch.load_golden(&golden);
    let is_po = {
        let mut v = vec![false; c.len()];
        for &g in c.po_drivers() {
            v[g as usize] = true;
        }
        v
    };
    let mut unobservable = 0;
    for &fault in &faults {
        let root = fault.site().gate().index();
        let cone = plan.cone_of(root).expect("fault root has a cone");
        let reachable = is_po[root] || cone.iter().any(|&g| is_po[g as usize]);
        assert_eq!(plan.observable(root), reachable);
        if !reachable {
            unobservable += 1;
            assert_eq!(plan.detect_packed(c, &golden, &mut scratch, fault), Ok(0));
        }
    }
    assert!(
        unobservable > 0,
        "workload should exercise the pruning path"
    );
}
