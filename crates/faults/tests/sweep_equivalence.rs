//! Property tests pinning the two execution-path equivalences of the
//! million-gate campaign engine:
//!
//! * the level-blocked **sweep kernels** evaluate byte-for-byte
//!   identically to the gate-order kernels for every supported lane
//!   width (`W ∈ {1, 2, 4, 8}`), including ragged final chunks and the
//!   pin-forced single-gate kernels the cone walks and CPT chain ascent
//!   dispatch through;
//! * **`DropScope::Global`** (cross-worker fault dropping over the
//!   shared detected bitmap) reports exactly the masks-mode detected
//!   *set* for every schedule, worker count and engine family — only
//!   first-detection indices may differ, never membership.

use proptest::prelude::*;
use rescue_campaign::{Campaign, Schedule};
use rescue_faults::simulate::{FaultSimulator, PackedOptions};
use rescue_faults::universe;
use rescue_netlist::{generate, renumber, Netlist};
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::wide::{pack_patterns_wide, PackedWord, SimWord};

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1);
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Asserts sweep eval == gate-order eval over every chunk of `patterns`
/// (full value arena, byte for byte), plus the pin-forced per-gate
/// kernel on every multi-pin gate of the first chunk.
fn assert_sweep_matches<Wd: SimWord>(c: &mut CompiledNetlist, patterns: &[Vec<bool>]) {
    for (ci, chunk) in patterns.chunks(Wd::LANES).enumerate() {
        let words = pack_patterns_wide::<Wd>(chunk);
        c.set_sweep(true);
        assert!(c.sweep_plan().is_some(), "levelized arena must sweep");
        let mut swept = Vec::new();
        c.eval_words_into(&words, None, &mut swept).unwrap();
        c.set_sweep(false);
        let mut gate_order = Vec::new();
        c.eval_words_into(&words, None, &mut gate_order).unwrap();
        assert_eq!(
            swept,
            gate_order,
            "chunk {ci} ({} patterns, {} lanes)",
            chunk.len(),
            Wd::LANES
        );
        if ci == 0 {
            // The pin-forced kernel the cone walks / CPT sensitization
            // use: force each pin of each gate to the inverse of its
            // driver and compare dispatch paths.
            for g in 0..c.len() {
                for pin in 0..c.pins_of(g).len() {
                    let driver = c.pins_of(g)[pin] as usize;
                    let forced = !gate_order[driver];
                    c.set_sweep(true);
                    let fast = c.eval_word_pin_forced(g, &gate_order, pin, forced);
                    c.set_sweep(false);
                    let slow = c.eval_word_pin_forced(g, &gate_order, pin, forced);
                    assert_eq!(fast, slow, "gate {g} pin {pin}");
                }
            }
        }
    }
    c.set_sweep(true);
}

/// Detected-set fingerprint of a campaign run: one bool per fault.
fn detected_set(first: &[Option<usize>]) -> Vec<bool> {
    first.iter().map(|d| d.is_some()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Levelized sweep eval ≡ gate-order eval byte-for-byte for
    /// W ∈ {1, 2, 4, 8}, including ragged tails.
    #[test]
    fn sweep_eval_matches_gate_order_all_widths(seed in 1u64..400, ragged in 1usize..63) {
        let net = generate::random_logic(8, 220, 4, seed);
        let (lev, _) = renumber::levelized(&net);
        let mut c = CompiledNetlist::new(&lev);
        // One full chunk plus a ragged tail at every width: 64·W + r
        // patterns exercise both the steady-state and tail kernels.
        let pats = |lanes: usize| random_patterns(8, lanes + ragged, seed);
        assert_sweep_matches::<u64>(&mut c, &pats(64));
        assert_sweep_matches::<PackedWord<2>>(&mut c, &pats(128));
        assert_sweep_matches::<PackedWord<4>>(&mut c, &pats(256));
        assert_sweep_matches::<PackedWord<8>>(&mut c, &pats(512));
    }

    /// (b) `DropScope::Global` detected set ≡ masks-mode detected set
    /// across schedules, worker counts and both engine families.
    #[test]
    fn global_drop_set_matches_masks_mode(seed in 1u64..300, tracing in any::<bool>()) {
        let net: Netlist = generate::random_logic(6, 90, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(6, 130, seed); // 3 chunks, ragged tail
        let sim = FaultSimulator::new(&net);
        let base_opts = if tracing {
            PackedOptions::default().traced()
        } else {
            PackedOptions::default()
        };
        // Masks mode (bit-identical reference): serial unit-scope run.
        let masks = sim.campaign_packed(&faults, &patterns, &Campaign::serial(), base_opts);
        let want = detected_set(masks.report.first_detection());
        for workers in [1usize, 2, 4] {
            for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 3 }] {
                let campaign = Campaign::new(7, workers).with_schedule(schedule);
                let global =
                    sim.campaign_packed(&faults, &patterns, &campaign, base_opts.global_drop());
                let got = detected_set(global.report.first_detection());
                prop_assert_eq!(
                    &got, &want,
                    "workers={} schedule={:?} tracing={}", workers, schedule, tracing
                );
                prop_assert_eq!(
                    global.report.detected_count(),
                    masks.report.detected_count()
                );
            }
        }
    }

    /// Global scope never invents or loses detections even at width 4
    /// with collapsing on — the expansion map composes with the shared
    /// bitmap exactly as with unit scope.
    #[test]
    fn global_drop_composes_with_collapse_and_width(seed in 1u64..150) {
        let net: Netlist = generate::random_logic(6, 70, 3, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(6, 300, seed); // ragged at W=4
        let sim = FaultSimulator::new(&net);
        let collapsed = rescue_faults::collapse::collapse(&net, &faults);
        let base = PackedOptions::wide(4).with_collapsed(&collapsed);
        let masks = sim.campaign_packed(&faults, &patterns, &Campaign::serial(), base);
        let global = sim.campaign_packed(
            &faults,
            &patterns,
            &Campaign::new(3, 4),
            base.global_drop(),
        );
        let want = detected_set(masks.report.first_detection());
        let got = detected_set(global.report.first_detection());
        prop_assert_eq!(got, want);
    }
}
