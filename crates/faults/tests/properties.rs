//! Property-based tests for fault simulation invariants.

use proptest::prelude::*;
use rescue_faults::{collapse, sample, simulate::FaultSimulator, universe, Fault, FaultSite};
use rescue_netlist::generate;
use rescue_sim::parallel::pack_patterns;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1);
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A faulty simulation with the fault site forced to the golden value
    /// is identical to the golden simulation (fault activation required).
    #[test]
    fn inactive_fault_is_invisible(seed in 1u64..300) {
        let net = generate::random_logic(6, 40, 3, seed);
        let sim = FaultSimulator::new(&net);
        let pats = random_patterns(6, 16, seed);
        let words = pack_patterns(&pats);
        let golden = sim.golden(&words);
        for id in net.ids().take(20) {
            if net.gate(id).kind() == rescue_netlist::GateKind::Dff { continue; }
            let gval = golden[id.index()];
            // stuck-at the value the gate already has on pattern 0
            let v = gval & 1 == 1;
            let f = Fault::stuck_at(FaultSite::Output(id), v);
            let faulty = sim.with_stuck(&words, f);
            // pattern 0: no difference anywhere can originate at the site
            for (_, g) in net.primary_outputs() {
                let diff = (golden[g.index()] ^ faulty[g.index()]) & 1;
                // The fault forces the site to its own value on pattern 0,
                // so outputs must match on that pattern.
                prop_assert_eq!(diff, 0);
            }
        }
    }

    /// Detection is monotone in the pattern set: adding patterns never
    /// lowers coverage.
    #[test]
    fn coverage_monotone(seed in 1u64..200) {
        let net = generate::random_logic(5, 30, 2, seed);
        let faults = universe::stuck_at_universe(&net);
        let sim = FaultSimulator::new(&net);
        let pats = random_patterns(5, 48, seed);
        let r_small = sim.campaign(&net, &faults, &pats[..16]);
        let r_large = sim.campaign(&net, &faults, &pats);
        prop_assert!(r_large.coverage() >= r_small.coverage());
    }

    /// Collapsing never changes total detectability: the representative
    /// set achieves the same coverage as the full set on the same patterns.
    #[test]
    fn collapse_preserves_coverage(seed in 1u64..150) {
        let net = generate::random_logic(5, 25, 2, seed);
        let faults = universe::stuck_at_universe(&net);
        let coll = collapse::collapse(&net, &faults);
        let sim = FaultSimulator::new(&net);
        let pats: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let r_full = sim.campaign(&net, &faults, &pats);
        let r_coll = sim.campaign(&net, coll.representatives(), &pats);
        // Coverage over representatives equals coverage over all faults
        // (every original fault is detected iff its representative is).
        let full_undetected: std::collections::HashSet<_> = r_full
            .undetected()
            .into_iter()
            .map(|f| coll.representative(f))
            .collect();
        let coll_undetected: std::collections::HashSet<_> =
            r_coll.undetected().into_iter().collect();
        prop_assert_eq!(full_undetected, coll_undetected);
    }

    /// Sample size is monotone: bigger populations, tighter margins and
    /// higher confidence all demand more samples.
    #[test]
    fn sample_size_monotone(pop in 1000usize..2_000_000, e in 0.005f64..0.2) {
        use sample::{sample_size, Confidence};
        let n = sample_size(pop, e, Confidence::C95, 0.5).unwrap();
        let n_tighter = sample_size(pop, e / 2.0, Confidence::C95, 0.5).unwrap();
        prop_assert!(n_tighter >= n);
        let n_bigger = sample_size(pop * 2, e, Confidence::C95, 0.5).unwrap();
        prop_assert!(n_bigger >= n);
        prop_assert!(n <= pop);
    }
}

#[test]
fn campaign_first_detection_is_minimal() {
    // The reported first-detection index must truly be the first pattern
    // that detects the fault.
    let net = generate::c17();
    let faults = universe::stuck_at_universe(&net);
    let sim = FaultSimulator::new(&net);
    let pats: Vec<Vec<bool>> = (0..32u32)
        .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let report = sim.campaign(&net, &faults, &pats);
    for (fi, det) in report.first_detection().iter().enumerate() {
        if let Some(first) = det {
            for (pi, pat) in pats.iter().enumerate().take(*first + 1) {
                let words = pack_patterns(std::slice::from_ref(pat));
                let golden = sim.golden(&words);
                let mask = sim.detection_mask(&net, &words, &golden, faults[fi]) & 1;
                if pi < *first {
                    assert_eq!(mask, 0, "fault {fi} detected earlier than reported");
                } else {
                    assert_eq!(mask, 1, "fault {fi} not detected at reported index");
                }
            }
        }
    }
}
