//! Wide-word packed engine ≡ 64-lane engine ≡ scalar oracle, and
//! collapsed-universe campaigns ≡ uncollapsed.
//!
//! The acceptance bar for the multi-`u64` lane generalization: a
//! [`PackedWord`] campaign at any supported width must produce the same
//! `first_detection` vector as the `u64` engine and the scalar cone
//! oracle — across schedules, worker counts and ragged pattern counts —
//! and a campaign over a collapsed universe must expand back to the
//! identical per-fault verdicts while walking measurably fewer faults.

use proptest::prelude::*;
use rescue_campaign::{Campaign, Schedule};
use rescue_faults::collapse::collapse;
use rescue_faults::engine::{CampaignPlan, WideScratch};
use rescue_faults::simulate::{FaultSimulator, PackedOptions};
use rescue_faults::universe;
use rescue_netlist::generate;
use rescue_sim::wide::{pack_patterns_wide, PackedWord, SimWord};

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Per-word wide detection masks agree lane-for-lane with the scalar
/// `detect` oracle run on the matching 64-pattern sub-chunks, including
/// the ragged tail (the 300-pattern workload is 1×256 + 44 at W=4).
fn masks_match_scalar<Wd: SimWord>(seed: u64) {
    let net = generate::random_logic(7, 90, 4, seed);
    let faults = universe::stuck_at_universe(&net);
    let patterns = random_patterns(7, 300, seed);
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let plan = CampaignPlan::build(c, &faults);
    let mut scalar = WideScratch::<u64>::new(c.len());
    let mut wide = WideScratch::<Wd>::new(c.len());
    for chunk in patterns.chunks(Wd::LANES) {
        let words = pack_patterns_wide::<Wd>(chunk);
        let mut golden = Vec::new();
        c.eval_words_into(&words, None, &mut golden).unwrap();
        wide.load_golden(&golden);
        let live = Wd::live_mask(chunk.len());
        for &fault in &faults {
            let mask = plan.detect_packed(c, &golden, &mut wide, fault).unwrap() & live;
            // Scalar oracle on each 64-pattern slice of the wide chunk.
            for (sub_i, sub) in chunk.chunks(64).enumerate() {
                let sub_words = pack_patterns_wide::<u64>(sub);
                let mut sub_golden = Vec::new();
                c.eval_words_into(&sub_words, None, &mut sub_golden)
                    .unwrap();
                scalar.load_golden(&sub_golden);
                let sub_mask =
                    plan.detect(c, &sub_golden, &mut scalar, fault) & u64::live_mask(sub.len());
                for bit in 0..sub.len() {
                    assert_eq!(
                        mask.lane(sub_i * 64 + bit),
                        sub_mask >> bit & 1 == 1,
                        "{fault}, lane {}",
                        sub_i * 64 + bit
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// W=4 per-word masks equal the scalar oracle lane-for-lane.
    #[test]
    fn wide_masks_match_scalar_w4(seed in 1u64..500) {
        masks_match_scalar::<PackedWord<4>>(seed);
    }

    /// W=2 and W=8 at the lane boundaries (ragged tails land mid-limb).
    #[test]
    fn wide_masks_match_scalar_w2_w8(seed in 1u64..250) {
        masks_match_scalar::<PackedWord<2>>(seed);
        masks_match_scalar::<PackedWord<8>>(seed);
    }

    /// The full wide campaign — fault dropping, every schedule, several
    /// worker counts, ragged pattern counts that are not multiples of any
    /// lane count — reproduces the W=1 `first_detection` vector exactly.
    #[test]
    fn wide_campaign_matches_w1_any_schedule(
        seed in 1u64..300,
        n_patterns in 1usize..400,
    ) {
        let net = generate::random_logic(8, 110, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(8, n_patterns, seed);
        let sim = FaultSimulator::new(&net);
        let base = sim.campaign_with_stats(&faults, &patterns, &Campaign::serial());
        for lane_width in [2usize, 4, 8] {
            for workers in [1usize, 4] {
                for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 17 }] {
                    let run = sim.campaign_packed(
                        &faults,
                        &patterns,
                        &Campaign::new(0, workers).with_schedule(schedule),
                        PackedOptions::wide(lane_width),
                    );
                    prop_assert_eq!(
                        run.report.first_detection(),
                        base.report.first_detection(),
                        "lanes = {}, workers = {}, schedule = {:?}",
                        lane_width, workers, schedule
                    );
                    prop_assert_eq!(run.stats.tally.detected, base.stats.tally.detected);
                    // No collapse requested: every fault is walked.
                    prop_assert_eq!(run.stats.faults_walked, faults.len());
                    prop_assert_eq!(run.stats.collapse_ratio(), 1.0);
                }
            }
        }
    }

    /// Collapsed-universe campaigns expand to the identical verdicts at
    /// every width, while walking only the representatives.
    #[test]
    fn collapsed_campaign_expands_identically(seed in 1u64..300) {
        let net = generate::random_logic(8, 120, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(8, 150, seed);
        let sim = FaultSimulator::new(&net);
        let base = sim.campaign_with_stats(&faults, &patterns, &Campaign::serial());
        let cu = collapse(&net, &faults);
        for lane_width in [1usize, 4] {
            let run = sim.campaign_packed(
                &faults,
                &patterns,
                &Campaign::new(0, 4),
                PackedOptions::wide(lane_width).with_collapsed(&cu),
            );
            prop_assert_eq!(
                run.report.first_detection(),
                base.report.first_detection(),
                "lanes = {}", lane_width
            );
            prop_assert!(run.stats.faults_walked <= faults.len());
            prop_assert_eq!(run.stats.faults_saved(),
                faults.len() - run.stats.faults_walked);
            prop_assert_eq!(run.stats.injections, faults.len());
        }
    }
}

/// The E12 workload (16-input, 2000-gate netlist): collapsing must save
/// at least 40 % of the fault walks while the expanded coverage — the
/// whole `first_detection` vector, not just the total — stays identical
/// to the uncollapsed campaign.
#[test]
fn collapsed_walks_at_least_forty_percent_fewer_on_e12() {
    let net = generate::random_logic(16, 2000, 4, 12);
    let faults = universe::stuck_at_universe(&net);
    let patterns = random_patterns(16, 128, 12);
    let sim = FaultSimulator::new(&net);
    let campaign = Campaign::new(0, 4);
    let base = sim.campaign_packed(&faults, &patterns, &campaign, PackedOptions::wide(4));
    let cu = collapse(&net, &faults);
    let run = sim.campaign_packed(
        &faults,
        &patterns,
        &campaign,
        PackedOptions::wide(4).with_collapsed(&cu),
    );
    assert_eq!(run.report.first_detection(), base.report.first_detection());
    assert_eq!(run.report.coverage(), base.report.coverage());
    assert_eq!(run.stats.injections, faults.len());
    // The walk list is the observable representatives: equivalence
    // classes plus the PO-reachability sweep (unobservable classes share
    // the all-zero mask, so they expand for free too).
    assert!(run.stats.faults_walked <= cu.representatives().len());
    assert!(
        run.stats.collapse_ratio() <= 0.6,
        "collapse ratio {:.3} should save >= 40 % of walks",
        run.stats.collapse_ratio()
    );
    assert_eq!(
        run.stats.faults_saved(),
        faults.len() - run.stats.faults_walked
    );
}

/// Unsupported widths fail loudly instead of silently falling back.
#[test]
#[should_panic(expected = "unsupported lane width")]
fn unsupported_width_panics() {
    let net = generate::c17();
    let sim = FaultSimulator::new(&net);
    sim.campaign_packed(
        &[],
        &[vec![false; 5]],
        &Campaign::serial(),
        PackedOptions::wide(3),
    );
}
