//! The critical-path-tracing / cone-walk hybrid is bit-identical to the
//! scalar oracle.
//!
//! [`TracePlan::detect_traced`] replaces the per-site event-driven walk
//! with backward sensitization ANDs over fanout-free regions, keeping the
//! walk only at reconvergent stems. These tests pin down that the hybrid
//! is **exact**: detection words equal the scalar `detect` oracle
//! lane-for-lane at every supported width (including ragged tails), and a
//! full `campaign_packed` with tracing enabled reproduces the scalar
//! campaign's `first_detection` vector for every schedule, worker count
//! and collapse setting. A hand-built reconvergent circuit asserts the
//! stem fallback actually fires, and an unplanned site surfaces the typed
//! [`FaultError::UnplannedSite`] instead of a panic.

use proptest::prelude::*;
use rescue_campaign::{Campaign, Schedule};
use rescue_faults::collapse::collapse;
use rescue_faults::engine::{CampaignPlan, FaultScratch};
use rescue_faults::simulate::{FaultSimulator, PackedOptions};
use rescue_faults::trace::{NetClass, TracePlan, TraceScratch};
use rescue_faults::{universe, Fault, FaultError, FaultSite};
use rescue_netlist::{generate, NetlistBuilder};
use rescue_sim::wide::{pack_patterns_wide, PackedWord, SimWord};

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Per-word hybrid detection masks agree lane-for-lane with the scalar
/// `detect` oracle run on the matching 64-pattern sub-chunks, including
/// the ragged tail (the 300-pattern workload is 1×256 + 44 at W=4).
fn traced_masks_match_scalar<Wd: SimWord>(seed: u64) {
    let net = generate::random_logic(7, 90, 4, seed);
    let faults = universe::stuck_at_universe(&net);
    let patterns = random_patterns(7, 300, seed);
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let tplan = TracePlan::build(c, &faults);
    let oracle = CampaignPlan::build(c, &faults);
    let mut scalar = FaultScratch::new(c.len());
    let mut traced = TraceScratch::<Wd>::new(c.len());
    for chunk in patterns.chunks(Wd::LANES) {
        let words = pack_patterns_wide::<Wd>(chunk);
        let mut golden = Vec::new();
        c.eval_words_into(&words, None, &mut golden).unwrap();
        traced.load_golden(&golden);
        let live = Wd::live_mask(chunk.len());
        for &fault in &faults {
            let mask = tplan.detect_traced(c, &golden, &mut traced, fault).unwrap() & live;
            // Scalar oracle on each 64-pattern slice of the wide chunk.
            for (sub_i, sub) in chunk.chunks(64).enumerate() {
                let sub_words = pack_patterns_wide::<u64>(sub);
                let mut sub_golden = Vec::new();
                c.eval_words_into(&sub_words, None, &mut sub_golden)
                    .unwrap();
                scalar.load_golden(&sub_golden);
                let sub_mask =
                    oracle.detect(c, &sub_golden, &mut scalar, fault) & u64::live_mask(sub.len());
                for bit in 0..sub.len() {
                    assert_eq!(
                        mask.lane(sub_i * 64 + bit),
                        sub_mask >> bit & 1 == 1,
                        "{fault}, lane {}",
                        sub_i * 64 + bit
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn traced_masks_match_scalar_w1(seed in 1u64..200) {
        traced_masks_match_scalar::<u64>(seed);
    }

    #[test]
    fn traced_masks_match_scalar_w2(seed in 1u64..200) {
        traced_masks_match_scalar::<PackedWord<2>>(seed);
    }

    #[test]
    fn traced_masks_match_scalar_w4(seed in 1u64..200) {
        traced_masks_match_scalar::<PackedWord<4>>(seed);
    }

    #[test]
    fn traced_masks_match_scalar_w8(seed in 1u64..200) {
        traced_masks_match_scalar::<PackedWord<8>>(seed);
    }

    /// The full tracing campaign — fault dropping, any width, any
    /// schedule and worker count, collapse on or off — produces the same
    /// `first_detection` vector as the scalar dropping campaign.
    #[test]
    fn traced_campaign_matches_scalar_any_schedule(seed in 1u64..200) {
        let net = generate::random_logic(8, 110, 4, seed);
        let faults = universe::stuck_at_universe(&net);
        let patterns = random_patterns(8, 180, seed);
        let sim = FaultSimulator::new(&net);
        let scalar = sim.campaign(&net, &faults, &patterns);
        let collapsed = collapse(&net, &faults);
        for lane_width in [1usize, 2, 4, 8] {
            for workers in [1usize, 3] {
                for schedule in [Schedule::Static, Schedule::Dynamic { chunk: 7 }] {
                    for collapse_on in [false, true] {
                        let mut opts = PackedOptions::wide(lane_width).traced();
                        if collapse_on {
                            opts = opts.with_collapsed(&collapsed);
                        }
                        let run = sim.campaign_packed(
                            &faults,
                            &patterns,
                            &Campaign::new(0, workers).with_schedule(schedule),
                            opts,
                        );
                        prop_assert_eq!(
                            run.report.first_detection(),
                            scalar.first_detection(),
                            "W = {}, workers = {}, schedule = {:?}, collapse = {}",
                            lane_width, workers, schedule, collapse_on
                        );
                        prop_assert!(run.stats.traced_fraction().is_finite());
                    }
                }
            }
        }
    }
}

/// A hand-built reconvergent region: `g2` fans out to two branches that
/// re-meet at the XOR, so tracing through it would be inexact — the
/// hybrid must classify it as a stem and take the event-driven fallback,
/// and still match the scalar oracle exactly.
#[test]
fn reconvergent_stem_takes_fallback_walk() {
    let mut b = NetlistBuilder::new("reconv");
    let a = b.input("a");
    let bb = b.input("b");
    let g1 = b.not(a); // single fanout: a chain net below the stem
    let g2 = b.and(g1, bb); // stem: two combinational consumers
    let g3 = b.not(g2);
    let g4 = b.and(g2, bb);
    let g5 = b.xor(g3, g4); // reconvergence
    b.output("y", g5);
    let net = b.finish();
    let faults = universe::stuck_at_universe(&net);
    let patterns: Vec<Vec<bool>> = (0..4u32)
        .map(|p| (0..2).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let tplan = TracePlan::build(c, &faults);
    assert_eq!(tplan.class_of(g2.index()), NetClass::Stem);
    assert_eq!(
        tplan.class_of(g1.index()),
        NetClass::Chain {
            consumer: g2.index() as u32,
            pin: 0
        }
    );
    assert!(tplan.stems() >= 1, "the fault list must reach the stem");

    let oracle = CampaignPlan::build(c, &faults);
    let mut scalar = FaultScratch::new(c.len());
    let mut traced = TraceScratch::<u64>::new(c.len());
    let words = pack_patterns_wide::<u64>(&patterns);
    let mut golden = Vec::new();
    c.eval_words_into(&words, None, &mut golden).unwrap();
    scalar.load_golden(&golden);
    traced.load_golden(&golden);
    let live = u64::live_mask(patterns.len());
    for &fault in &faults {
        assert_eq!(
            tplan.detect_traced(c, &golden, &mut traced, fault).unwrap() & live,
            oracle.detect(c, &golden, &mut scalar, fault) & live,
            "{fault}"
        );
    }
    assert!(
        traced.inner.counters.stem_fallbacks > 0,
        "reconvergent stem must be resolved by the fallback walk"
    );
    assert!(
        traced.inner.counters.traced_nets > 0,
        "chain nets below the stem must be resolved by tracing"
    );
}

/// A fault outside the plan's build list surfaces the typed error — for
/// both the tracing front-end and the walking engine — instead of the
/// old `unwrap` panic.
#[test]
fn unplanned_site_is_a_typed_error() {
    let net = generate::c17();
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let planned = vec![universe::stuck_at_universe(&net)[0]];
    let tplan = TracePlan::build(c, &planned);
    let oracle = CampaignPlan::build(c, &planned);
    // A site that is neither a fault root nor a stem pseudo-root of the
    // singleton plan.
    let unplanned = *universe::stuck_at_universe(&net)
        .iter()
        .find(|f| !tplan.plan().planned(f.site().gate().index()))
        .expect("c17 has more sites than the singleton plan");
    let gate = unplanned.site().gate().index();
    let patterns: Vec<Vec<bool>> = (0..8u32)
        .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let words = pack_patterns_wide::<u64>(&patterns);
    let mut golden = Vec::new();
    c.eval_words_into(&words, None, &mut golden).unwrap();
    let mut traced = TraceScratch::<u64>::new(c.len());
    traced.load_golden(&golden);
    assert_eq!(
        tplan.detect_traced(c, &golden, &mut traced, unplanned),
        Err(FaultError::UnplannedSite { gate })
    );
    let mut scratch = FaultScratch::new(c.len());
    scratch.load_golden(&golden);
    assert_eq!(
        oracle.detect_packed(c, &golden, &mut scratch, unplanned),
        Err(FaultError::UnplannedSite { gate })
    );
}

/// An empty fault universe through the tracing campaign keeps every
/// stats accessor finite (the NaN guard the throughput table and BENCH
/// JSONs rely on).
#[test]
fn empty_universe_stats_stay_finite() {
    let net = generate::c17();
    let sim = FaultSimulator::new(&net);
    let patterns: Vec<Vec<bool>> = (0..8u32)
        .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let run = sim.campaign_packed(
        &[],
        &patterns,
        &Campaign::serial(),
        PackedOptions::wide(4).traced(),
    );
    assert_eq!(run.report.detected_count(), 0);
    for v in [
        run.stats.traced_fraction(),
        run.stats.collapse_ratio(),
        run.stats.injections_per_sec(),
        run.stats.lane_occupancy(),
        run.stats.worker_utilization(),
    ] {
        assert!(v.is_finite(), "stats must never leak NaN/inf");
    }
}

/// `detect_traced` also rejects pin faults whose owning gate is
/// unplanned, and handles pin faults identically to the oracle when
/// planned (excitation at the owning gate's output).
#[test]
fn pin_faults_trace_like_the_oracle() {
    let net = generate::c17();
    let faults: Vec<Fault> = universe::stuck_at_universe(&net)
        .into_iter()
        .filter(|f| matches!(f.site(), FaultSite::Pin { .. }))
        .collect();
    assert!(!faults.is_empty(), "c17 has multi-input gates");
    let patterns = random_patterns(5, 32, 3);
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let tplan = TracePlan::build(c, &faults);
    let oracle = CampaignPlan::build(c, &faults);
    let mut scalar = FaultScratch::new(c.len());
    let mut traced = TraceScratch::<PackedWord<2>>::new(c.len());
    for chunk in patterns.chunks(128) {
        let words = pack_patterns_wide::<PackedWord<2>>(chunk);
        let mut golden = Vec::new();
        c.eval_words_into(&words, None, &mut golden).unwrap();
        traced.load_golden(&golden);
        let live = PackedWord::<2>::live_mask(chunk.len());
        for &fault in &faults {
            let mask = tplan.detect_traced(c, &golden, &mut traced, fault).unwrap() & live;
            for (sub_i, sub) in chunk.chunks(64).enumerate() {
                let sub_words = pack_patterns_wide::<u64>(sub);
                let mut sub_golden = Vec::new();
                c.eval_words_into(&sub_words, None, &mut sub_golden)
                    .unwrap();
                scalar.load_golden(&sub_golden);
                let sub_mask =
                    oracle.detect(c, &sub_golden, &mut scalar, fault) & u64::live_mask(sub.len());
                for bit in 0..sub.len() {
                    assert_eq!(
                        mask.lane(sub_i * 64 + bit),
                        sub_mask >> bit & 1 == 1,
                        "{fault}"
                    );
                }
            }
        }
    }
}
