//! Counting-allocator proof that the steady-state chunk loop of the
//! packed engine performs **zero heap allocations** once warm.
//!
//! The million-gate execution path promises that after the first pass
//! over a (golden chunk, fault range) workload — which populates the
//! scratch arenas, touched-list capacity, obs memo and trace paths —
//! repeating the per-chunk loop (`eval_words_fill` into a flat golden
//! arena, `load_chunk` tag-skip, `detect_packed` / `detect_traced` per
//! fault) never touches the allocator again. A wrapping
//! `#[global_allocator]` counts every `alloc`/`realloc`; the test warms
//! up, snapshots the counter, re-runs the loop and asserts a zero
//! delta.
//!
//! One `#[test]` only: a second concurrent test in this binary would
//! allocate behind the counter's back and poison the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

use rescue_faults::engine::{CampaignPlan, WideScratch};
use rescue_faults::trace::{TracePlan, TraceScratch};
use rescue_faults::universe;
use rescue_netlist::{generate, renumber};
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::wide::{pack_patterns_wide_into, PackedWord, SimWord};

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

/// Runs the steady-state loop once: fill every golden chunk in the flat
/// arena, then walk every fault against every chunk through both
/// engines. Everything it writes lands in pre-sized buffers.
#[allow(clippy::too_many_arguments)]
fn steady_pass<Wd: SimWord>(
    c: &CompiledNetlist,
    plan: &CampaignPlan,
    tplan: &TracePlan,
    faults: &[rescue_faults::Fault],
    input_words: &[Vec<Wd>],
    golden: &mut [Wd],
    scratch: &mut WideScratch<Wd>,
    tscratch: &mut TraceScratch<Wd>,
) -> u32 {
    let n = c.len();
    let mut detected = 0u32;
    for (ci, words) in input_words.iter().enumerate() {
        let arena = &mut golden[ci * n..(ci + 1) * n];
        c.eval_words_fill(words, None, arena).unwrap();
        let arena = &golden[ci * n..(ci + 1) * n];
        scratch.load_chunk(ci as u32, arena);
        tscratch.load_chunk(ci as u32, arena);
        for &fault in faults {
            let m = plan.detect_packed(c, arena, scratch, fault).unwrap();
            let t = tplan.detect_traced(c, arena, tscratch, fault).unwrap();
            assert_eq!(m, t, "{fault}: traced engine diverged");
            if m != Wd::ZERO {
                detected += 1;
            }
        }
    }
    detected
}

#[test]
fn steady_state_chunk_loop_is_allocation_free() {
    type Wd = PackedWord<4>;
    let net = generate::random_logic(8, 400, 4, 0xA110C);
    let (lev, _) = renumber::levelized(&net);
    let c = CompiledNetlist::new(&lev);
    assert!(c.sweep_plan().is_some(), "levelized arena must sweep");
    let faults = universe::stuck_at_universe(&lev);
    let patterns = random_patterns(8, 3 * Wd::LANES, 0xA110C);

    // Setup (allocations allowed): pack every chunk up front, size the
    // flat golden arena, build both plans, size both scratches.
    let input_words: Vec<Vec<Wd>> = patterns
        .chunks(Wd::LANES)
        .map(|chunk| {
            let mut w = Vec::new();
            pack_patterns_wide_into(chunk, &mut w);
            w
        })
        .collect();
    let mut golden = vec![Wd::ZERO; input_words.len() * c.len()];
    let plan = CampaignPlan::build(&c, &faults);
    let tplan = TracePlan::build(&c, &faults);
    let mut scratch = WideScratch::<Wd>::new(c.len());
    let mut tscratch = TraceScratch::<Wd>::new(c.len());

    // Warm-up pass: touched lists, obs memos and trace paths grow to
    // their high-water marks here.
    let warm = steady_pass(
        &c,
        &plan,
        &tplan,
        &faults,
        &input_words,
        &mut golden,
        &mut scratch,
        &mut tscratch,
    );
    assert!(warm > 0, "workload must actually detect faults");

    // Steady state: three more passes, zero allocations.
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..3 {
        let again = steady_pass(
            &c,
            &plan,
            &tplan,
            &faults,
            &input_words,
            &mut golden,
            &mut scratch,
            &mut tscratch,
        );
        assert_eq!(again, warm, "steady-state pass changed verdicts");
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state chunk loop allocated {delta} times after warm-up"
    );
}
