//! Ad-hoc timing probe for the e17 big rung (not part of the test suite).
use rescue_faults::collapse::collapse;
use rescue_faults::engine::CampaignPlan;
use rescue_faults::simulate::{FaultSimulator, PackedOptions};
use rescue_faults::trace::TracePlan;
use rescue_faults::universe;
use rescue_netlist::generate;
use std::time::Instant;

fn random_patterns(n_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut s = seed.max(1) ^ 0x5851_f42d_4c95_7f2d;
    (0..count)
        .map(|_| {
            (0..n_inputs)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & 1 == 1
                })
                .collect()
        })
        .collect()
}

fn main() {
    let net = generate::random_logic(32, 50_000, 8, 17);
    let faults = universe::stuck_at_universe(&net);
    let patterns = random_patterns(32, 512, 17 ^ 0x9e37);
    let sim = FaultSimulator::new(&net);
    let c = sim.compiled();
    let t = Instant::now();
    let collapsed = collapse(&net, &faults);
    println!("collapse: {:?}", t.elapsed());
    // Reproduce the campaign's walk list.
    let reachable = rescue_faults::engine::po_reachable(c);
    let mut slot = std::collections::HashMap::new();
    let mut walk = Vec::new();
    for &f in &faults {
        let rep = collapsed.representative(f);
        if !reachable[rep.site().gate().index()] {
            continue;
        }
        slot.entry(rep).or_insert_with(|| {
            walk.push(rep);
            walk.len() as u32 - 1
        });
    }
    println!("walk list: {} faults", walk.len());
    let t = Instant::now();
    let plan = CampaignPlan::build(c, &walk);
    println!("CampaignPlan::build(walk): {:?}", t.elapsed());
    let sites: std::collections::HashSet<usize> =
        walk.iter().map(|f| f.site().gate().index()).collect();
    println!("distinct sites: {}", sites.len());
    let mut cone_total = 0usize;
    let mut obs_cone_total = 0usize;
    for &s in &sites {
        cone_total += plan.cone_of(s).unwrap().len();
        obs_cone_total += plan.obs_cone_of(s).unwrap().len();
    }
    println!("cone gates total: {cone_total}, obs-restricted: {obs_cone_total}");
    let t = Instant::now();
    let tplan = TracePlan::build(c, &walk);
    println!(
        "TracePlan::build(walk): {:?} (stems {}, statically traced {})",
        t.elapsed(),
        tplan.stems(),
        tplan.statically_traced()
    );
    let driver = rescue_campaign::Campaign::new(0, 1);
    for (name, opts) in [
        ("walk  ", PackedOptions::wide(4).with_collapsed(&collapsed)),
        (
            "hybrid",
            PackedOptions::wide(4).with_collapsed(&collapsed).traced(),
        ),
    ] {
        let t = Instant::now();
        let run = sim.campaign_packed(&faults, &patterns, &driver, opts);
        println!(
            "{name} campaign: {:?} (detected {})",
            t.elapsed(),
            run.report.detected_count()
        );
    }
}
