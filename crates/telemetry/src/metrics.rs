//! Process-wide metrics registry: counters, gauges, fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s
//! around atomics: look one up once per worker (`counter("fault.x")`
//! takes the registry lock), then mutate it lock-free on the hot path.
//! Every mutation first checks the global enable switch, so a disabled
//! process pays one relaxed load per call site.
//!
//! [`snapshot`] freezes the whole registry into a
//! [`MetricsSnapshot`] — a plain, `PartialEq`-comparable value sorted
//! by metric name, so two runs of the same seeded campaign can be
//! compared structurally and rendered as markdown.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing named counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while telemetry is disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding the most recent value.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Stores `v` (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCore {
    /// Inclusive upper bounds, strictly increasing; one overflow bucket
    /// past the last bound.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Records one sample (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let c = &self.0;
        let idx = c.bounds.partition_point(|&b| b < v);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.total.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// The counter named `name`, created on first use.
pub fn counter(name: &'static str) -> Counter {
    lock()
        .counters
        .entry(name)
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// The gauge named `name`, created on first use.
pub fn gauge(name: &'static str) -> Gauge {
    lock()
        .gauges
        .entry(name)
        .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
        .clone()
}

/// The histogram named `name`, created on first use with the given
/// inclusive bucket upper `bounds` (strictly increasing; an overflow
/// bucket is appended automatically). Later callers get the existing
/// histogram regardless of the bounds they pass.
///
/// # Panics
///
/// Panics when creating a histogram with empty or non-increasing
/// bounds.
pub fn histogram(name: &'static str, bounds: &[u64]) -> Histogram {
    lock()
        .histograms
        .entry(name)
        .or_insert_with(|| {
            assert!(!bounds.is_empty(), "histogram needs at least one bound");
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "histogram bounds must be strictly increasing"
            );
            Histogram(Arc::new(HistCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        })
        .clone()
}

/// Power-of-two bounds `1, 2, 4, … 2^(n-1)` — the default shape for
/// size-like metrics (cone sizes, undo depths).
pub fn pow2_bounds(n: usize) -> Vec<u64> {
    (0..n as u32).map(|i| 1u64 << i).collect()
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts[bounds.len()]` is overflow.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (`u64::MAX` for the overflow bucket, 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Frozen, name-sorted state of the whole registry; `PartialEq` so two
/// runs can be compared structurally.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// State of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a markdown section (one table per metric
    /// class), reused by the flow sign-off report.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            let _ = writeln!(s, "| metric | value |");
            let _ = writeln!(s, "|---|---|");
            for (name, v) in &self.counters {
                let _ = writeln!(s, "| {name} | {v} |");
            }
            for (name, v) in &self.gauges {
                let _ = writeln!(s, "| {name} (gauge) | {v} |");
            }
            let _ = writeln!(s);
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(s, "| histogram | samples | mean | p50 | p99 |");
            let _ = writeln!(s, "|---|---|---|---|---|");
            for (name, h) in &self.histograms {
                let p99 = h.quantile(0.99);
                let p99 = if p99 == u64::MAX {
                    format!("> {}", h.bounds.last().copied().unwrap_or(0))
                } else {
                    format!("{p99}")
                };
                let _ = writeln!(
                    s,
                    "| {name} | {} | {:.1} | {} | {p99} |",
                    h.total,
                    h.mean(),
                    h.quantile(0.5),
                );
            }
        }
        s
    }
}

/// Freezes the current registry state.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock();
    MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, g)| (n.to_string(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(n, h)| {
                (
                    n.to_string(),
                    HistogramSnapshot {
                        bounds: h.0.bounds.clone(),
                        counts: h
                            .0
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        total: h.0.total.load(Ordering::Relaxed),
                        sum: h.0.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect(),
    }
}

/// Zeroes every registered metric (handles stay valid).
pub fn reset() {
    let reg = lock();
    for c in reg.counters.values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.0.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.values() {
        for b in &h.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.0.total.store(0, Ordering::Relaxed);
        h.0.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;

    #[test]
    fn counters_and_gauges_respect_the_enable_switch() {
        let _serial = crate::exclusive();
        let c = counter("test.switch_counter");
        let g = gauge("test.switch_gauge");
        TelemetryConfig::off().install();
        c.add(5);
        g.set(7);
        assert_eq!(c.get(), 0, "disabled: counter untouched");
        assert_eq!(g.get(), 0, "disabled: gauge untouched");
        TelemetryConfig::on().install();
        c.add(5);
        c.incr();
        g.set(7);
        TelemetryConfig::off().install();
        assert_eq!(c.get(), 6);
        assert_eq!(g.get(), 7);
        reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let h = histogram("test.hist", &[1, 2, 4, 8]);
        for v in [0u64, 1, 2, 3, 4, 9, 100] {
            h.record(v);
        }
        let snap = snapshot();
        TelemetryConfig::off().install();
        let hs = snap.histogram("test.hist").expect("registered");
        assert_eq!(hs.total, 7);
        assert_eq!(hs.sum, 119);
        // Buckets: <=1: {0,1}; <=2: {2}; <=4: {3,4}; <=8: {}; overflow: {9,100}.
        assert_eq!(hs.counts, vec![2, 1, 2, 0, 2]);
        assert_eq!(hs.quantile(0.5), 4);
        assert_eq!(hs.quantile(1.0), u64::MAX, "overflow bucket");
        assert!(hs.mean() > 16.0);
        reset();
    }

    #[test]
    fn snapshot_is_structurally_comparable() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        reset();
        let c = counter("test.cmp");
        c.add(3);
        let a = snapshot();
        let b = snapshot();
        c.add(1);
        let d = snapshot();
        TelemetryConfig::off().install();
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_eq!(a.counter("test.cmp"), Some(3));
        assert!(a.to_markdown().contains("| test.cmp | 3 |"));
        reset();
    }

    #[test]
    fn pow2_bounds_shape() {
        assert_eq!(pow2_bounds(4), vec![1, 2, 4, 8]);
    }
}
