//! Cross-process journal aggregation.
//!
//! A multi-process campaign (E18's kill-resume run, an `FsStore` fleet)
//! leaves one exported JSONL journal *per process*, each with its own
//! sequence numbers and overlapping thread ids. [`merge`] reassembles
//! them into one campaign-wide [`MergedJournal`]: every event is tagged
//! with its owner's process id, the streams are interleaved by
//! timestamp, and sequence numbers are re-assigned over the combined
//! timeline.
//!
//! The merge is **order-insensitive**: the sort key `(ts_ns, pid,
//! seq)` depends only on the events themselves, so feeding the same
//! journals in any order yields a byte-identical timeline — the
//! property the observability proptests pin.
//!
//! In-memory events carry `&'static str` names; merged events come from
//! parsed files, so [`OwnedEvent`] owns its strings.

use crate::event::EventKind;
use crate::journal::Journal;
use crate::sinks::field;
use std::fmt::Write as _;

/// One event of a merged multi-process timeline. The owning-string
/// sibling of [`crate::Event`], plus the process id lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEvent {
    /// Sequence number in the merged timeline (re-assigned by [`merge`]).
    pub seq: u64,
    /// Timestamp, nanoseconds since the emitting process's telemetry
    /// epoch.
    pub ts_ns: u64,
    /// Id of the process that emitted the event.
    pub pid: u32,
    /// Id of the emitting thread within that process.
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// Event kind.
    pub kind: EventKind,
    /// Optional integer argument.
    pub arg: Option<(String, i64)>,
}

/// The pid-owning shape of one merged event: `(pid, name, kind, arg)`.
/// See [`MergedJournal::signature`].
pub type MergedSignature = (u32, String, EventKind, Option<(String, i64)>);

/// A merged, re-sequenced multi-process event timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedJournal {
    events: Vec<OwnedEvent>,
}

fn parse_kind(ph: &str) -> Option<EventKind> {
    match ph {
        "B" => Some(EventKind::Begin),
        "E" => Some(EventKind::End),
        "i" => Some(EventKind::Instant),
        _ => None,
    }
}

/// Parses one exported JSONL line into an [`OwnedEvent`]. `default_pid`
/// applies to single-process exports without a `pid` field; a `pid`
/// field in the line (a re-merged journal) wins.
fn parse_event(line: &str, default_pid: u32, n: usize) -> Result<OwnedEvent, String> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(format!("line {n}: not a JSON object"));
    }
    let kind = field(line, "ph")
        .and_then(parse_kind)
        .ok_or_else(|| format!("line {n}: missing or unknown \"ph\""))?;
    let name = field(line, "name")
        .ok_or_else(|| format!("line {n}: missing \"name\""))?
        .to_string();
    let tid: u64 = field(line, "tid")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("line {n}: missing or non-integer \"tid\""))?;
    let ts_ns: u64 = field(line, "ts_ns")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("line {n}: missing or non-integer \"ts_ns\""))?;
    let seq: u64 = field(line, "seq")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("line {n}: missing or non-integer \"seq\""))?;
    let pid: u32 = match field(line, "pid") {
        Some(p) => p
            .parse()
            .map_err(|_| format!("line {n}: non-integer \"pid\""))?,
        None => default_pid,
    };
    let arg = match (field(line, "arg_name"), field(line, "arg_value")) {
        (Some(k), Some(v)) => {
            let v: i64 = v
                .parse()
                .map_err(|_| format!("line {n}: non-integer \"arg_value\""))?;
            Some((k.to_string(), v))
        }
        _ => None,
    };
    Ok(OwnedEvent {
        seq,
        ts_ns,
        pid,
        tid,
        name,
        kind,
        arg,
    })
}

/// Merges exported JSONL journals from several processes into one
/// re-sequenced timeline. Each `(pid, text)` pair is one process's
/// export; events are interleaved by `(ts_ns, pid, original seq)` —
/// independent of argument order — and sequence numbers re-assigned
/// over the result. A journal whose **final** line is torn (its writer
/// was killed mid-flush) loses only that line, matching
/// [`crate::sinks::validate_jsonl`]'s torn-tail tolerance.
///
/// # Errors
///
/// Returns a pid- and line-numbered description of the first malformed
/// non-final line.
pub fn merge(parts: &[(u32, &str)]) -> Result<MergedJournal, String> {
    let mut events: Vec<OwnedEvent> = Vec::new();
    for &(pid, text) in parts {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        for (pos, &(n, line)) in lines.iter().enumerate() {
            match parse_event(line, pid, n) {
                Ok(e) => events.push(e),
                // A killed writer tears at most its final line.
                Err(_) if pos + 1 == lines.len() && pos > 0 => break,
                Err(e) => return Err(format!("pid {pid}: {e}")),
            }
        }
    }
    events.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(a.pid.cmp(&b.pid))
            .then(a.seq.cmp(&b.seq))
    });
    for (i, e) in events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    Ok(MergedJournal { events })
}

impl MergedJournal {
    /// Tags a captured in-memory [`Journal`] with a process id — the
    /// single-process corner of a merge, and the exporter the E18 child
    /// uses to leave a pid-tagged journal behind before it is killed.
    pub fn from_journal(journal: &Journal, pid: u32) -> MergedJournal {
        MergedJournal {
            events: journal
                .events()
                .iter()
                .map(|e| OwnedEvent {
                    seq: e.seq,
                    ts_ns: e.ts_ns,
                    pid,
                    tid: e.tid,
                    name: e.name.to_string(),
                    kind: e.kind,
                    arg: e.arg.map(|(k, v)| (k.to_string(), v)),
                })
                .collect(),
        }
    }

    /// The merged events, ordered by re-assigned sequence number.
    pub fn events(&self) -> &[OwnedEvent] {
        &self.events
    }

    /// Number of merged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct process ids in the timeline, ascending.
    pub fn pids(&self) -> Vec<u32> {
        let mut pids: Vec<u32> = self.events.iter().map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        pids
    }

    /// The timestamp-free signature of the timeline: `(pid, name, kind,
    /// arg)` per event, in order. Two merges of the same journals — in
    /// any argument order — produce identical signatures.
    pub fn signature(&self) -> Vec<MergedSignature> {
        self.events
            .iter()
            .map(|e| (e.pid, e.name.clone(), e.kind, e.arg.clone()))
            .collect()
    }

    /// Renders the timeline as JSON Lines — the single-process
    /// [`Journal::to_jsonl`] schema plus a `pid` field, accepted back
    /// by both [`merge`] and [`crate::sinks::validate_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            let _ = write!(
                s,
                "{{\"seq\":{},\"ts_ns\":{},\"pid\":{},\"tid\":{},\"ph\":\"{}\",\"name\":\"{}\"",
                e.seq,
                e.ts_ns,
                e.pid,
                e.tid,
                e.kind.phase(),
                e.name
            );
            if let Some((k, v)) = &e.arg {
                let _ = write!(s, ",\"arg_name\":\"{k}\",\"arg_value\":{v}");
            }
            s.push_str("}\n");
        }
        s
    }

    /// Writes the merged JSONL timeline to `path` crash-safely (temp
    /// file + rename), like [`Journal::export_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the temp file cannot be
    /// written or renamed.
    pub fn export_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        let stem = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "journal".to_string());
        let tmp = dir
            .unwrap_or_else(|| std::path::Path::new("."))
            .join(format!(".{stem}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, self.to_jsonl())?;
        std::fs::rename(&tmp, path)
    }

    /// Renders the timeline in the Chrome `trace_event` JSON format
    /// with one **process lane per pid** (unlike the single-process
    /// [`Journal::to_chrome_trace`], which pins everything to pid 1).
    /// `process_name` metadata labels each lane, so the E18 parent and
    /// its killed child show up as separate named tracks in Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[");
        let mut first = true;
        for pid in self.pids() {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"rescue pid {pid}\"}}}}"
            );
        }
        for e in &self.events {
            if !first {
                s.push(',');
            }
            first = false;
            let us = e.ts_ns as f64 / 1e3;
            let _ = write!(
                s,
                "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{us:.3},\"pid\":{},\"tid\":{}",
                e.name,
                e.kind.phase(),
                e.pid,
                e.tid
            );
            if e.kind == EventKind::Instant {
                s.push_str(",\"s\":\"t\"");
            }
            if let Some((k, v)) = &e.arg {
                let _ = write!(s, ",\"args\":{{\"{k}\":{v}}}");
            }
            s.push('}');
        }
        s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::validate_jsonl;
    use crate::{instant, span, TelemetryConfig};

    fn captured_journal() -> Journal {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = crate::journal::mark();
        {
            let _stage = span!("merge.stage", items = 4);
            instant!("merge.tick");
        }
        let j = Journal::take_since(m).current_thread();
        TelemetryConfig::off().install();
        j
    }

    #[test]
    fn merge_interleaves_by_timestamp_and_resequences() {
        let a = "{\"seq\":0,\"ts_ns\":10,\"tid\":0,\"ph\":\"i\",\"name\":\"a0\"}\n\
                 {\"seq\":1,\"ts_ns\":30,\"tid\":0,\"ph\":\"i\",\"name\":\"a1\"}\n";
        let b = "{\"seq\":0,\"ts_ns\":20,\"tid\":0,\"ph\":\"i\",\"name\":\"b0\"}\n";
        let m = merge(&[(1, a), (2, b)]).unwrap();
        let names: Vec<&str> = m.events().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a0", "b0", "a1"]);
        let seqs: Vec<u64> = m.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(m.pids(), vec![1, 2]);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let a = "{\"seq\":0,\"ts_ns\":10,\"tid\":0,\"ph\":\"B\",\"name\":\"s\"}\n\
                 {\"seq\":1,\"ts_ns\":40,\"tid\":0,\"ph\":\"E\",\"name\":\"s\"}\n";
        let b = "{\"seq\":0,\"ts_ns\":20,\"tid\":7,\"ph\":\"i\",\"name\":\"x\",\
                 \"arg_name\":\"n\",\"arg_value\":3}\n";
        let fwd = merge(&[(10, a), (20, b)]).unwrap();
        let rev = merge(&[(20, b), (10, a)]).unwrap();
        assert_eq!(fwd.signature(), rev.signature());
        assert_eq!(fwd.to_jsonl(), rev.to_jsonl());
    }

    #[test]
    fn merged_jsonl_round_trips_and_validates() {
        let j = captured_journal();
        let single = MergedJournal::from_journal(&j, 41);
        let text = single.to_jsonl();
        assert!(text.contains("\"pid\":41"));
        // Round trip: merging the export reproduces the timeline.
        let back = merge(&[(0, &text)]).unwrap();
        assert_eq!(back.signature(), single.signature());
        // The pid field wins over the default pid.
        assert_eq!(back.pids(), vec![41]);
        let check = validate_jsonl(&text).expect("merged journal validates");
        assert_eq!(check.events, j.len());
    }

    #[test]
    fn merge_tolerates_a_torn_tail_but_not_mid_file_damage() {
        let torn = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"i\",\"name\":\"ok\"}\n\
                    {\"seq\":1,\"ts_ns\":2,\"tid\":0,\"ph\":\"i\",\"na";
        let m = merge(&[(5, torn)]).unwrap();
        assert_eq!(m.len(), 1, "torn tail dropped, prefix kept");
        let mid = "{\"seq\":0,\"ts_ns\":1,\"ph\":\"B\"\n\
                   {\"seq\":1,\"ts_ns\":2,\"tid\":0,\"ph\":\"i\",\"name\":\"x\"}\n";
        let err = merge(&[(5, mid)]).unwrap_err();
        assert!(err.contains("pid 5"), "{err}");
    }

    #[test]
    fn chrome_trace_lanes_by_pid() {
        let a = "{\"seq\":0,\"ts_ns\":10,\"tid\":0,\"ph\":\"i\",\"name\":\"a\"}\n";
        let b = "{\"seq\":0,\"ts_ns\":20,\"tid\":0,\"ph\":\"i\",\"name\":\"b\"}\n";
        let m = merge(&[(100, a), (200, b)]).unwrap();
        let trace = m.to_chrome_trace();
        assert!(trace.contains("\"name\":\"rescue pid 100\""));
        assert!(trace.contains("\"name\":\"rescue pid 200\""));
        assert!(trace.contains("\"pid\":100"));
        assert!(trace.contains("\"pid\":200"));
        assert!(trace.starts_with("{\"traceEvents\":["));
    }
}
