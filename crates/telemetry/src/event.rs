//! Event emission: the per-thread buffer behind every span and instant.
//!
//! The hot path is append-only into a `thread_local!` vector — no lock,
//! no allocation beyond the vector's amortized growth. Buffers drain
//! into the global sink when they reach [`FLUSH_AT`] events and when
//! their thread exits (scoped campaign workers flush on scope exit, so
//! a drain after `Campaign::run_ranges` sees every worker's events).
//! Every event carries a globally unique sequence number, so the merged
//! stream has a total order even across threads.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The global on/off switch; see [`crate::TelemetryConfig::install`].
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Global event sequence counter (total order across threads).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// The global sink thread buffers drain into.
static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Next thread id to hand out; ids are registration-ordered, not OS ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Local buffers flush to the sink at this size.
pub const FLUSH_AT: usize = 1024;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// The most recent open span of the same thread closed.
    End,
    /// A single point in time.
    Instant,
}

impl EventKind {
    /// The Chrome `trace_event` phase letter for this kind.
    pub fn phase(&self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        }
    }
}

/// One timestamped telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Globally unique, monotonically assigned sequence number.
    pub seq: u64,
    /// Nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Registration-ordered id of the emitting thread.
    pub tid: u64,
    /// Static event name, dot-namespaced (`"flow.atpg"`).
    pub name: &'static str,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Optional single integer argument (`("gate", 17)`).
    pub arg: Option<(&'static str, i64)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the telemetry epoch (first use in this process).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct LocalBuf {
    tid: u64,
    events: Vec<Event>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_into_sink(&mut self.events);
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn flush_into_sink(events: &mut Vec<Event>) {
    if events.is_empty() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.append(events);
}

/// The calling thread's telemetry id (assigned on first use).
pub fn current_tid() -> u64 {
    BUF.with(|b| b.borrow().tid)
}

/// Emits one event (no-op while telemetry is disabled).
pub fn emit(name: &'static str, kind: EventKind, arg: Option<(&'static str, i64)>) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_ns = now_ns();
    let pushed = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        let tid = b.tid;
        b.events.push(Event {
            seq,
            ts_ns,
            tid,
            name,
            kind,
            arg,
        });
        if b.events.len() >= FLUSH_AT {
            let mut full = std::mem::take(&mut b.events);
            flush_into_sink(&mut full);
        }
    });
    if pushed.is_err() {
        // Thread-local storage already torn down (late drop during
        // thread exit): write through to the sink directly.
        flush_into_sink(&mut vec![Event {
            seq,
            ts_ns,
            tid: u64::MAX,
            name,
            kind,
            arg,
        }]);
    }
}

/// Emits a point event; prefer the [`crate::instant!`] macro.
pub fn instant(name: &'static str, arg: Option<(&'static str, i64)>) {
    emit(name, EventKind::Instant, arg);
}

/// Flushes the calling thread's buffer into the global sink.
pub fn flush_current_thread() {
    let _ = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        let mut events = std::mem::take(&mut b.events);
        flush_into_sink(&mut events);
    });
}

/// Current value of the global sequence counter (see
/// [`crate::journal::mark`]).
pub(crate) fn seq_mark() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// Takes every sink event with `seq >= mark` out of the global sink
/// (after flushing the calling thread), sorted by sequence number.
pub(crate) fn take_since(mark: u64) -> Vec<Event> {
    flush_current_thread();
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut taken: Vec<Event> = Vec::new();
    sink.retain(|e| {
        if e.seq >= mark {
            taken.push(*e);
            false
        } else {
            true
        }
    });
    taken.sort_unstable_by_key(|e| e.seq);
    taken
}

/// Clones every sink event with `seq >= mark` (after flushing the
/// calling thread), sorted by sequence number. Non-destructive: other
/// observers still see the events.
pub(crate) fn clone_since(mark: u64) -> Vec<Event> {
    flush_current_thread();
    let sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut events: Vec<Event> = sink.iter().filter(|e| e.seq >= mark).copied().collect();
    events.sort_unstable_by_key(|e| e.seq);
    events
}

/// RAII span guard: `Begin` on [`Span::enter`], `End` on drop.
///
/// Construct through the [`crate::span!`] macro. While telemetry is
/// disabled the guard is inert (a `None` name) and drop does nothing.
#[derive(Debug)]
#[must_use = "binding the guard is what delimits the span"]
pub struct Span {
    name: Option<&'static str>,
}

impl Span {
    /// Opens the span (emits `Begin`) if telemetry is enabled.
    pub fn enter(name: &'static str, arg: Option<(&'static str, i64)>) -> Span {
        if !ENABLED.load(Ordering::Relaxed) {
            return Span { name: None };
        }
        emit(name, EventKind::Begin, arg);
        Span { name: Some(name) }
    }

    /// Whether this guard will emit an `End` event on drop.
    pub fn is_active(&self) -> bool {
        self.name.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            emit(name, EventKind::End, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{mark, Journal};
    use crate::TelemetryConfig;

    #[test]
    fn sequence_numbers_are_strictly_increasing() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = mark();
        for _ in 0..10 {
            instant("seq.test", None);
        }
        let j = Journal::snapshot_since(m).current_thread();
        TelemetryConfig::off().install();
        let seqs: Vec<u64> = j.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 10);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn worker_thread_events_flush_on_scope_exit() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = mark();
        let main_tid = current_tid();
        let worker_tid = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _s = Span::enter("worker.span", Some(("worker", 3)));
                    current_tid()
                })
                .join()
                .expect("worker")
        });
        let j = Journal::snapshot_since(m);
        TelemetryConfig::off().install();
        assert_ne!(main_tid, worker_tid);
        let worker = j.thread(worker_tid);
        assert_eq!(worker.spans().len(), 1, "scope exit flushed the buffer");
        assert_eq!(worker.spans()[0].arg, Some(("worker", 3)));
    }

    #[test]
    fn overflow_flushes_before_thread_exit() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = mark();
        for _ in 0..(FLUSH_AT + 8) {
            instant("overflow.test", None);
        }
        // Inspect the raw sink without flushing this thread: overflow
        // alone must already have moved FLUSH_AT events across.
        let in_sink = {
            let sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.iter()
                .filter(|e| e.seq >= m && e.name == "overflow.test")
                .count()
        };
        // Drain fully so later tests start clean.
        let j = Journal::take_since(m).current_thread();
        TelemetryConfig::off().install();
        assert!(in_sink >= FLUSH_AT, "{in_sink} events flushed by overflow");
        assert_eq!(j.len(), FLUSH_AT + 8);
    }
}
