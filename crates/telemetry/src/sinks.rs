//! Journal exporters: JSONL, Chrome `trace_event`, markdown.
//!
//! All sinks are pure string renderers over a captured
//! [`Journal`] — callers decide where the bytes go. The JSONL format is
//! the machine-readable run journal CI validates with
//! [`validate_jsonl`]; the Chrome trace opens in `chrome://tracing` /
//! Perfetto for flamegraph-style inspection of a campaign.

use crate::event::EventKind;
use crate::journal::Journal;
use std::fmt::Write as _;

impl Journal {
    /// Renders the journal as JSON Lines: one event object per line,
    /// fields `seq`, `ts_ns`, `tid`, `ph` (`"B"`/`"E"`/`"i"`), `name`,
    /// and optionally `arg_name`/`arg_value`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in self.events() {
            let _ = write!(
                s,
                "{{\"seq\":{},\"ts_ns\":{},\"tid\":{},\"ph\":\"{}\",\"name\":\"{}\"",
                e.seq,
                e.ts_ns,
                e.tid,
                e.kind.phase(),
                e.name
            );
            if let Some((k, v)) = e.arg {
                let _ = write!(s, ",\"arg_name\":\"{k}\",\"arg_value\":{v}");
            }
            s.push_str("}\n");
        }
        s
    }

    /// Writes the JSONL journal to `path` crash-safely: the bytes land
    /// in a sibling temp file first and are renamed into place, so a
    /// reader (or a validator in CI) never observes a torn export even
    /// if the writer dies mid-write — the path holds either the
    /// previous complete journal or the new one.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the temp file cannot be
    /// written or renamed.
    pub fn export_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
        let stem = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "journal".to_string());
        let tmp = dir
            .unwrap_or_else(|| std::path::Path::new("."))
            .join(format!(".{stem}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, self.to_jsonl())?;
        std::fs::rename(&tmp, path)
    }

    /// Renders the journal in the Chrome `trace_event` JSON format
    /// (object form, `traceEvents` array, timestamps in microseconds).
    /// Open the file in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let us = e.ts_ns as f64 / 1e3;
            let _ = write!(
                s,
                "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{us:.3},\"pid\":1,\"tid\":{}",
                e.name,
                e.kind.phase(),
                e.tid
            );
            if e.kind == EventKind::Instant {
                s.push_str(",\"s\":\"t\"");
            }
            if let Some((k, v)) = e.arg {
                let _ = write!(s, ",\"args\":{{\"{k}\":{v}}}");
            }
            s.push('}');
        }
        s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        s
    }

    /// Renders a markdown span summary: one row per span name with
    /// count, total time and share of the journal's span time. Reused
    /// by the flow sign-off report.
    pub fn to_markdown_summary(&self) -> String {
        let totals = self.span_totals();
        let mut s = String::new();
        let _ = writeln!(s, "| span | count | total | share |");
        let _ = writeln!(s, "|---|---|---|---|");
        let all: u64 = totals.iter().map(|(_, _, ns)| ns).sum();
        for (name, count, ns) in &totals {
            let _ = writeln!(
                s,
                "| {name} | {count} | {} | {:.1} % |",
                human_ns(*ns),
                100.0 * *ns as f64 / all.max(1) as f64
            );
        }
        s
    }
}

/// Human-readable duration for markdown tables.
pub fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Validation result of a JSONL run journal (see [`validate_jsonl`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalCheck {
    /// Parsed event lines.
    pub events: usize,
    /// `"B"` lines.
    pub begins: usize,
    /// `"E"` lines.
    pub ends: usize,
    /// `"i"` lines.
    pub instants: usize,
    /// Distinct thread ids seen.
    pub threads: usize,
    /// Distinct process ids seen. Single-process journals carry no
    /// `pid` field and count as one process (pid 0).
    pub processes: usize,
    /// The journal ends in a partial record (a writer died mid-line).
    /// The complete prefix validated clean; spans the crash left open
    /// are tolerated. Callers should surface this as a warning.
    pub truncated: bool,
}

/// Extracts the value of `"key":` in a single JSON object line; returns
/// the raw token (quotes stripped for strings). Shared with the
/// cross-process merge parser in [`crate::merge`].
pub(crate) fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Parse failure of one journal line: the shapes a torn tail can take.
/// Distinct from span-pairing errors, which are real structural damage
/// wherever they occur. The `pid` field is optional — single-process
/// exports omit it and parse as pid 0; merged multi-process journals
/// carry it per line.
fn parse_line(line: &str, n: usize) -> Result<(String, String, u32, u64), String> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(format!("line {n}: not a JSON object"));
    }
    let ph = field(line, "ph").ok_or_else(|| format!("line {n}: missing \"ph\""))?;
    if !matches!(ph, "B" | "E" | "i") {
        return Err(format!("line {n}: unknown phase \"{ph}\""));
    }
    let name = field(line, "name").ok_or_else(|| format!("line {n}: missing \"name\""))?;
    let tid: u64 = field(line, "tid")
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("line {n}: missing or non-integer \"tid\""))?;
    field(line, "ts_ns")
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| format!("line {n}: missing or non-integer \"ts_ns\""))?;
    let pid: u32 = match field(line, "pid") {
        Some(p) => p
            .parse()
            .map_err(|_| format!("line {n}: non-integer \"pid\""))?,
        None => 0,
    };
    Ok((ph.to_string(), name.to_string(), pid, tid))
}

/// Validates a JSONL run journal: every line parses (object with `ph`,
/// `name`, `tid`, `ts_ns`, optional `pid`), and per `(pid, tid)` lane
/// every `B` has a matching `E` with names pairing LIFO — the property
/// CI enforces on the quickstart journal artifact. Keying lanes on
/// `(pid, tid)` rather than bare `tid` is what lets merged
/// multi-process journals validate: two processes reuse the same small
/// thread ids, so their spans would otherwise look crossed.
///
/// A journal whose **final** line fails to parse is treated as the
/// torn tail of a crashed writer, not as corruption: the complete
/// prefix is validated, [`JournalCheck::truncated`] is set, and spans
/// the crash left open are tolerated. A malformed line anywhere else —
/// or a mismatched `E` on any line — still hard-fails.
///
/// # Errors
///
/// Returns a line-numbered description of the first malformed
/// non-final line, mismatched `End`, or (in a non-truncated journal)
/// span left open at end of input.
pub fn validate_jsonl(text: &str) -> Result<JournalCheck, String> {
    let mut check = JournalCheck::default();
    let mut stacks: Vec<((u32, u64), Vec<String>)> = Vec::new();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    for (pos, &(n, line)) in lines.iter().enumerate() {
        let (ph, name, pid, tid) = match parse_line(line, n) {
            Ok(parsed) => parsed,
            Err(_) if pos + 1 == lines.len() && pos > 0 => {
                // A writer died mid-line: the tail record is torn but
                // everything before it already validated.
                check.truncated = true;
                break;
            }
            Err(e) => return Err(e),
        };
        let lane = (pid, tid);
        let stack = match stacks.iter_mut().find(|(l, _)| *l == lane) {
            Some((_, s)) => s,
            None => {
                stacks.push((lane, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        check.events += 1;
        match ph.as_str() {
            "B" => {
                check.begins += 1;
                stack.push(name);
            }
            "E" => {
                check.ends += 1;
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "line {n}: end of \"{name}\" but \"{open}\" is open \
                             (pid {pid}, tid {tid})"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {n}: end of \"{name}\" with no open span \
                             (pid {pid}, tid {tid})"
                        ))
                    }
                }
            }
            _ => check.instants += 1,
        }
    }
    if !check.truncated {
        for ((pid, tid), stack) in &stacks {
            if let Some(open) = stack.last() {
                return Err(format!(
                    "span \"{open}\" never ended (pid {pid}, tid {tid})"
                ));
            }
        }
    }
    let mut tids: Vec<u64> = stacks.iter().map(|((_, t), _)| *t).collect();
    tids.sort_unstable();
    tids.dedup();
    check.threads = tids.len();
    let mut pids: Vec<u32> = stacks.iter().map(|((p, _), _)| *p).collect();
    pids.sort_unstable();
    pids.dedup();
    check.processes = pids.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instant, span, TelemetryConfig};

    fn sample_journal() -> Journal {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = crate::journal::mark();
        {
            let _stage = span!("stage.one", items = 10);
            instant!("stage.tick");
        }
        {
            let _stage = span!("stage.two");
        }
        let j = Journal::take_since(m).current_thread();
        TelemetryConfig::off().install();
        j
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let j = sample_journal();
        let text = j.to_jsonl();
        let check = validate_jsonl(&text).expect("journal is well-formed");
        assert_eq!(check.events, 5);
        assert_eq!(check.begins, 2);
        assert_eq!(check.ends, 2);
        assert_eq!(check.instants, 1);
        assert_eq!(check.threads, 1);
    }

    #[test]
    fn validator_rejects_malformed_journals() {
        assert!(validate_jsonl("not json").is_err());
        let unbalanced = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"B\",\"name\":\"a\"}\n";
        let err = validate_jsonl(unbalanced).unwrap_err();
        assert!(err.contains("never ended"), "{err}");
        let crossed = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"B\",\"name\":\"a\"}\n\
                       {\"seq\":1,\"ts_ns\":2,\"tid\":0,\"ph\":\"E\",\"name\":\"b\"}\n";
        let err = validate_jsonl(crossed).unwrap_err();
        assert!(err.contains("\"b\""), "{err}");
        let stray_end = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"E\",\"name\":\"x\"}\n";
        assert!(validate_jsonl(stray_end).is_err());
    }

    #[test]
    fn validator_lanes_merged_journals_by_pid() {
        // Two processes reuse tid 0; their spans interleave in the
        // merged timeline. Laned on (pid, tid) this is well-formed.
        let merged = "{\"seq\":0,\"ts_ns\":1,\"pid\":100,\"tid\":0,\"ph\":\"B\",\"name\":\"a\"}\n\
                      {\"seq\":1,\"ts_ns\":2,\"pid\":200,\"tid\":0,\"ph\":\"B\",\"name\":\"b\"}\n\
                      {\"seq\":2,\"ts_ns\":3,\"pid\":100,\"tid\":0,\"ph\":\"E\",\"name\":\"a\"}\n\
                      {\"seq\":3,\"ts_ns\":4,\"pid\":200,\"tid\":0,\"ph\":\"E\",\"name\":\"b\"}\n";
        let check = validate_jsonl(merged).expect("merged journal is well-formed");
        assert_eq!(check.events, 4);
        assert_eq!(check.processes, 2);
        assert_eq!(check.threads, 1, "both processes use tid 0");
        // Without the pid field the same interleaving is crossed spans.
        let flat = merged
            .replace("\"pid\":100,", "")
            .replace("\"pid\":200,", "");
        let err = validate_jsonl(&flat).unwrap_err();
        assert!(err.contains("\"a\""), "{err}");
        // A bad pid is corruption like any other bad field.
        let bad = "{\"seq\":0,\"ts_ns\":1,\"pid\":\"x\",\"tid\":0,\"ph\":\"i\",\"name\":\"a\"}\n\
                   {\"seq\":1,\"ts_ns\":2,\"pid\":1,\"tid\":0,\"ph\":\"i\",\"name\":\"b\"}\n";
        assert!(validate_jsonl(bad).is_err());
    }

    #[test]
    fn validator_tolerates_a_torn_tail() {
        let j = sample_journal();
        let text = j.to_jsonl();
        let clean = validate_jsonl(&text).unwrap();
        assert!(!clean.truncated);
        // Kill the writer mid-record: chop the final line in half.
        let torn = &text[..text.len() - 20];
        let check = validate_jsonl(torn).expect("torn tail is a warning, not an error");
        assert!(check.truncated);
        assert_eq!(check.events, clean.events - 1, "prefix fully counted");
        // A crash also leaves spans open — tolerated only with the torn
        // tail as evidence of the crash.
        let crashed = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"B\",\"name\":\"a\"}\n\
                       {\"seq\":1,\"ts_ns\":2,\"tid\":0,\"ph\":\"i\",\"na";
        let check = validate_jsonl(crashed).expect("open span plus torn tail");
        assert!(check.truncated);
        assert_eq!(check.begins, 1);
        // A torn line mid-journal is still corruption.
        let mid = "{\"seq\":0,\"ts_ns\":1,\"ph\":\"B\"\n\
                   {\"seq\":1,\"ts_ns\":2,\"tid\":0,\"ph\":\"i\",\"name\":\"x\"}\n";
        assert!(validate_jsonl(mid).is_err());
        // An all-garbage file has no valid prefix to salvage.
        assert!(validate_jsonl("not json").is_err());
    }

    #[test]
    fn export_jsonl_is_atomic_and_validates() {
        let j = sample_journal();
        let dir = std::env::temp_dir().join(format!("rescue-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        j.export_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, j.to_jsonl());
        assert!(validate_jsonl(&text).is_ok());
        // No temp file left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chrome_trace_has_the_expected_shape() {
        let j = sample_journal();
        let trace = j.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"args\":{\"items\":10}"));
        assert!(trace.contains("\"s\":\"t\""), "instants carry scope");
        assert!(trace.trim_end().ends_with("}"));
    }

    #[test]
    fn markdown_summary_lists_spans_with_share() {
        let j = sample_journal();
        let md = j.to_markdown_summary();
        assert!(md.contains("| span | count | total | share |"));
        assert!(md.contains("| stage.one | 1 |"));
        assert!(md.contains("| stage.two | 1 |"));
    }

    #[test]
    fn human_ns_scales_units() {
        assert_eq!(human_ns(12), "12 ns");
        assert_eq!(human_ns(1_500), "1.5 µs");
        assert_eq!(human_ns(2_500_000), "2.5 ms");
        assert_eq!(human_ns(3_200_000_000), "3.20 s");
    }
}
