//! Journal exporters: JSONL, Chrome `trace_event`, markdown.
//!
//! All sinks are pure string renderers over a captured
//! [`Journal`] — callers decide where the bytes go. The JSONL format is
//! the machine-readable run journal CI validates with
//! [`validate_jsonl`]; the Chrome trace opens in `chrome://tracing` /
//! Perfetto for flamegraph-style inspection of a campaign.

use crate::event::EventKind;
use crate::journal::Journal;
use std::fmt::Write as _;

impl Journal {
    /// Renders the journal as JSON Lines: one event object per line,
    /// fields `seq`, `ts_ns`, `tid`, `ph` (`"B"`/`"E"`/`"i"`), `name`,
    /// and optionally `arg_name`/`arg_value`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in self.events() {
            let _ = write!(
                s,
                "{{\"seq\":{},\"ts_ns\":{},\"tid\":{},\"ph\":\"{}\",\"name\":\"{}\"",
                e.seq,
                e.ts_ns,
                e.tid,
                e.kind.phase(),
                e.name
            );
            if let Some((k, v)) = e.arg {
                let _ = write!(s, ",\"arg_name\":\"{k}\",\"arg_value\":{v}");
            }
            s.push_str("}\n");
        }
        s
    }

    /// Renders the journal in the Chrome `trace_event` JSON format
    /// (object form, `traceEvents` array, timestamps in microseconds).
    /// Open the file in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let us = e.ts_ns as f64 / 1e3;
            let _ = write!(
                s,
                "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{us:.3},\"pid\":1,\"tid\":{}",
                e.name,
                e.kind.phase(),
                e.tid
            );
            if e.kind == EventKind::Instant {
                s.push_str(",\"s\":\"t\"");
            }
            if let Some((k, v)) = e.arg {
                let _ = write!(s, ",\"args\":{{\"{k}\":{v}}}");
            }
            s.push('}');
        }
        s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        s
    }

    /// Renders a markdown span summary: one row per span name with
    /// count, total time and share of the journal's span time. Reused
    /// by the flow sign-off report.
    pub fn to_markdown_summary(&self) -> String {
        let totals = self.span_totals();
        let mut s = String::new();
        let _ = writeln!(s, "| span | count | total | share |");
        let _ = writeln!(s, "|---|---|---|---|");
        let all: u64 = totals.iter().map(|(_, _, ns)| ns).sum();
        for (name, count, ns) in &totals {
            let _ = writeln!(
                s,
                "| {name} | {count} | {} | {:.1} % |",
                human_ns(*ns),
                100.0 * *ns as f64 / all.max(1) as f64
            );
        }
        s
    }
}

/// Human-readable duration for markdown tables.
pub fn human_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Validation result of a JSONL run journal (see [`validate_jsonl`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalCheck {
    /// Parsed event lines.
    pub events: usize,
    /// `"B"` lines.
    pub begins: usize,
    /// `"E"` lines.
    pub ends: usize,
    /// `"i"` lines.
    pub instants: usize,
    /// Distinct thread ids seen.
    pub threads: usize,
}

/// Extracts the value of `"key":` in a single JSON object line; returns
/// the raw token (quotes stripped for strings).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Validates a JSONL run journal: every line parses (object with `ph`,
/// `name`, `tid`, `ts_ns`), and per thread every `B` has a matching
/// `E` with names pairing LIFO — the property CI enforces on the
/// quickstart journal artifact.
///
/// # Errors
///
/// Returns a line-numbered description of the first malformed line,
/// mismatched `End`, or span left open at end of input.
pub fn validate_jsonl(text: &str) -> Result<JournalCheck, String> {
    let mut check = JournalCheck::default();
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {n}: not a JSON object"));
        }
        let ph = field(line, "ph").ok_or_else(|| format!("line {n}: missing \"ph\""))?;
        let name = field(line, "name").ok_or_else(|| format!("line {n}: missing \"name\""))?;
        let tid: u64 = field(line, "tid")
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {n}: missing or non-integer \"tid\""))?;
        field(line, "ts_ns")
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| format!("line {n}: missing or non-integer \"ts_ns\""))?;
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        check.events += 1;
        match ph {
            "B" => {
                check.begins += 1;
                stack.push(name.to_string());
            }
            "E" => {
                check.ends += 1;
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "line {n}: end of \"{name}\" but \"{open}\" is open (tid {tid})"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {n}: end of \"{name}\" with no open span (tid {tid})"
                        ))
                    }
                }
            }
            "i" => check.instants += 1,
            other => return Err(format!("line {n}: unknown phase \"{other}\"")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span \"{open}\" never ended (tid {tid})"));
        }
    }
    check.threads = stacks.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instant, span, TelemetryConfig};

    fn sample_journal() -> Journal {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = crate::journal::mark();
        {
            let _stage = span!("stage.one", items = 10);
            instant!("stage.tick");
        }
        {
            let _stage = span!("stage.two");
        }
        let j = Journal::take_since(m).current_thread();
        TelemetryConfig::off().install();
        j
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let j = sample_journal();
        let text = j.to_jsonl();
        let check = validate_jsonl(&text).expect("journal is well-formed");
        assert_eq!(check.events, 5);
        assert_eq!(check.begins, 2);
        assert_eq!(check.ends, 2);
        assert_eq!(check.instants, 1);
        assert_eq!(check.threads, 1);
    }

    #[test]
    fn validator_rejects_malformed_journals() {
        assert!(validate_jsonl("not json").is_err());
        let unbalanced = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"B\",\"name\":\"a\"}\n";
        let err = validate_jsonl(unbalanced).unwrap_err();
        assert!(err.contains("never ended"), "{err}");
        let crossed = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"B\",\"name\":\"a\"}\n\
                       {\"seq\":1,\"ts_ns\":2,\"tid\":0,\"ph\":\"E\",\"name\":\"b\"}\n";
        let err = validate_jsonl(crossed).unwrap_err();
        assert!(err.contains("\"b\""), "{err}");
        let stray_end = "{\"seq\":0,\"ts_ns\":1,\"tid\":0,\"ph\":\"E\",\"name\":\"x\"}\n";
        assert!(validate_jsonl(stray_end).is_err());
    }

    #[test]
    fn chrome_trace_has_the_expected_shape() {
        let j = sample_journal();
        let trace = j.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"args\":{\"items\":10}"));
        assert!(trace.contains("\"s\":\"t\""), "instants carry scope");
        assert!(trace.trim_end().ends_with("}"));
    }

    #[test]
    fn markdown_summary_lists_spans_with_share() {
        let j = sample_journal();
        let md = j.to_markdown_summary();
        assert!(md.contains("| span | count | total | share |"));
        assert!(md.contains("| stage.one | 1 |"));
        assert!(md.contains("| stage.two | 1 |"));
    }

    #[test]
    fn human_ns_scales_units() {
        assert_eq!(human_ns(12), "12 ns");
        assert_eq!(human_ns(1_500), "1.5 µs");
        assert_eq!(human_ns(2_500_000), "2.5 ms");
        assert_eq!(human_ns(3_200_000_000), "3.20 s");
    }
}
