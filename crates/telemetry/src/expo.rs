//! Prometheus text exposition of the metrics registry.
//!
//! [`MetricsSnapshot::to_prometheus`] renders a frozen registry in the
//! Prometheus text format (version 0.0.4) — the body a scraper receives
//! from the `rescue-observer` crate's `/metrics` endpoint. The encoding
//! is deliberately boring and deterministic:
//!
//! * metric families appear in snapshot (name-sorted) order, so two
//!   snapshots of the same registry state render byte-identically — the
//!   property the exposition proptests pin;
//! * every registry name is sanitized into the Prometheus grammar
//!   (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and prefixed `rescue_`, so
//!   `fault.cone_size` exposes as `rescue_fault_cone_size`;
//! * counters expose with the conventional `_total` suffix, histograms
//!   expose cumulative `_bucket{le="…"}` series plus `_sum`/`_count`,
//!   and the bucket-resolved p50/p99 quantiles from
//!   [`HistogramSnapshot::quantile`] ride along as `_p50`/`_p99`
//!   gauges (Prometheus histograms carry no server-side quantiles);
//! * two registry names that sanitize to the same family (`a.b` and
//!   `a_b`) keep the first and skip the rest — duplicate families are a
//!   parse error on the scraper side, a silently shadowed metric is
//!   not.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Sanitizes a registry metric name into the Prometheus name grammar
/// and prefixes the workspace namespace: `fault.cone_size` →
/// `rescue_fault_cone_size`. Every character outside
/// `[a-zA-Z0-9_:]` maps to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("rescue_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders one histogram family: cumulative buckets, sum, count and the
/// p50/p99 bucket-bound gauges.
fn write_histogram(s: &mut String, family: &str, h: &HistogramSnapshot) {
    let _ = writeln!(s, "# TYPE {family} histogram");
    let mut cumulative = 0u64;
    for (i, &count) in h.counts.iter().enumerate() {
        cumulative += count;
        match h.bounds.get(i) {
            Some(b) => {
                let _ = writeln!(s, "{family}_bucket{{le=\"{b}\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(s, "{family}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    let _ = writeln!(s, "{family}_sum {}", h.sum);
    let _ = writeln!(s, "{family}_count {}", h.total);
    for (suffix, q) in [("p50", 0.5), ("p99", 0.99)] {
        let v = h.quantile(q);
        let _ = writeln!(s, "# TYPE {family}_{suffix} gauge");
        if v == u64::MAX {
            let _ = writeln!(s, "{family}_{suffix} +Inf");
        } else {
            let _ = writeln!(s, "{family}_{suffix} {v}");
        }
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// Deterministic: the same snapshot always renders the same bytes.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for (name, v) in &self.counters {
            let family = format!("{}_total", prometheus_name(name));
            if !seen.insert(family.clone()) {
                continue;
            }
            let _ = writeln!(s, "# TYPE {family} counter");
            let _ = writeln!(s, "{family} {v}");
        }
        for (name, v) in &self.gauges {
            let family = prometheus_name(name);
            if !seen.insert(family.clone()) {
                continue;
            }
            let _ = writeln!(s, "# TYPE {family} gauge");
            let _ = writeln!(s, "{family} {v}");
        }
        for (name, h) in &self.histograms {
            let family = prometheus_name(name);
            if !seen.insert(family.clone()) {
                continue;
            }
            write_histogram(&mut s, &family, h);
        }
        s
    }
}

/// Structural check of a Prometheus text exposition body: every line is
/// a comment (`# …`) or a `name[{labels}] value` sample whose name fits
/// the grammar and whose value parses as a number (or `+Inf`), and no
/// `# TYPE` family is declared twice. Returns the number of sample
/// lines.
///
/// This is the scrape-side contract the exposition proptests (and the
/// E19 smoke probe) hold [`MetricsSnapshot::to_prometheus`] to.
///
/// # Errors
///
/// Returns a line-numbered description of the first malformed line or
/// duplicated family declaration.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut samples = 0usize;
    let mut families: BTreeSet<&str> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let family = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without a family name"))?;
                if !families.insert(family) {
                    return Err(format!("line {n}: family \"{family}\" declared twice"));
                }
            }
            continue;
        }
        // Sample line: name, optional {labels}, one value.
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let name = name_part.split('{').next().unwrap_or(name_part);
        if !valid_name(name) {
            return Err(format!("line {n}: invalid metric name \"{name}\""));
        }
        if value != "+Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {n}: non-numeric value \"{value}\""));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("fault.obs_walks".into(), 42)],
            gauges: vec![("seu.lane_width".into(), 4)],
            histograms: vec![(
                "fault.cone_size".into(),
                HistogramSnapshot {
                    bounds: vec![1, 2, 4, 8],
                    counts: vec![2, 1, 2, 0, 2],
                    total: 7,
                    sum: 119,
                },
            )],
        }
    }

    #[test]
    fn exposition_has_the_expected_families() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE rescue_fault_obs_walks_total counter"));
        assert!(text.contains("rescue_fault_obs_walks_total 42"));
        assert!(text.contains("# TYPE rescue_seu_lane_width gauge"));
        assert!(text.contains("rescue_seu_lane_width 4"));
        assert!(text.contains("# TYPE rescue_fault_cone_size histogram"));
        assert!(text.contains("rescue_fault_cone_size_bucket{le=\"1\"} 2"));
        assert!(text.contains("rescue_fault_cone_size_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("rescue_fault_cone_size_sum 119"));
        assert!(text.contains("rescue_fault_cone_size_count 7"));
        assert!(text.contains("rescue_fault_cone_size_p50 4"));
        assert!(text.contains("rescue_fault_cone_size_p99 +Inf"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let text = sample_snapshot().to_prometheus();
        let cumulative: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("rescue_fault_cone_size_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(cumulative, vec![2, 3, 5, 5, 7]);
    }

    #[test]
    fn exposition_is_deterministic_and_parse_clean() {
        let snap = sample_snapshot();
        let a = snap.to_prometheus();
        let b = snap.to_prometheus();
        assert_eq!(a, b);
        let samples = validate_exposition(&a).expect("parse-clean");
        // 1 counter + 1 gauge + (5 buckets + sum + count + 2 quantiles).
        assert_eq!(samples, 11);
    }

    #[test]
    fn names_are_sanitized_and_collisions_skipped() {
        assert_eq!(prometheus_name("fault.cone-size"), "rescue_fault_cone_size");
        assert_eq!(prometheus_name("π.metric"), "rescue___metric");
        let snap = MetricsSnapshot {
            counters: vec![("a.b".into(), 1), ("a_b".into(), 2)],
            gauges: vec![("a:b".into(), 3)],
            histograms: Vec::new(),
        };
        let text = snap.to_prometheus();
        assert_eq!(
            text.matches("# TYPE rescue_a_b_total counter").count(),
            1,
            "colliding counter family emitted once"
        );
        assert!(validate_exposition(&text).is_ok());
    }

    #[test]
    fn validator_rejects_malformed_bodies() {
        assert!(validate_exposition("rescue_ok 1\n").is_ok());
        assert!(validate_exposition("1bad_name 1\n").is_err());
        assert!(validate_exposition("rescue_x notanumber\n").is_err());
        assert!(validate_exposition("no_value\n").is_err());
        let dup = "# TYPE rescue_x counter\n# TYPE rescue_x counter\n";
        assert!(validate_exposition(dup).is_err());
    }
}
