//! Workspace-wide observability for RESCUE-rs campaigns and flows.
//!
//! The paper's holistic EDA flow (Section IV, Fig. 2) is a multi-stage
//! pipeline — fault universe, ATPG, classification, SET vulnerability,
//! PMHF sign-off — and every stage runs fault-injection campaigns whose
//! internal behaviour (cone sizes, lane occupancy, snapshot restores)
//! decides whether the flow scales. This crate is the one substrate all
//! of that reports through:
//!
//! * **Spans** — [`span!`] opens a guard object that emits a `Begin`
//!   event now and an `End` event when dropped; [`instant!`] emits a
//!   single point event. Events go to a lock-free-on-the-hot-path
//!   per-thread buffer ([`event`]) that drains into the global journal
//!   on overflow and on thread exit.
//! * **Metrics** — [`metrics`] is a process-wide registry of named
//!   counters, gauges and fixed-bucket histograms (e.g.
//!   `fault.cone_size`, `seu.lane_occupancy`) whose
//!   [`metrics::snapshot`] is a `PartialEq`-comparable report.
//! * **Journal + sinks** — [`journal::Journal`] captures the emitted
//!   event stream; [`sinks`] renders it as a JSONL run journal, a
//!   Chrome-trace (`trace_event`) file for flamegraph-style inspection,
//!   and a markdown summary reused by the flow sign-off report.
//! * **Observability plane** — [`expo`] renders the metrics registry in
//!   the Prometheus text exposition format (served live by
//!   `rescue-observer`'s `/metrics` endpoint), and [`merge`] stitches
//!   the per-process JSONL journals of a multi-process campaign into
//!   one pid-tagged, re-sequenced timeline with a pid-laned
//!   Chrome-trace sink.
//!
//! # Zero cost when disabled
//!
//! Telemetry is **off by default**. Every emission point first loads one
//! relaxed [`AtomicBool`](std::sync::atomic::AtomicBool); when it is
//! false, [`span!`] returns an inert guard and metric handles do
//! nothing. The `e14_telemetry_overhead` bench pins the enabled-path
//! overhead below 2 % on the E12/E13 campaign workloads.
//!
//! # Examples
//!
//! ```
//! use rescue_telemetry::{journal::Journal, span, instant, TelemetryConfig};
//!
//! let _serial = rescue_telemetry::exclusive(); // tests share global state
//! TelemetryConfig::on().install();
//! let mark = rescue_telemetry::journal::mark();
//! {
//!     let _stage = span!("flow.atpg", faults = 42);
//!     instant!("atpg.backtrack_limit");
//! }
//! let journal = Journal::snapshot_since(mark).current_thread();
//! TelemetryConfig::off().install();
//! let spans = journal.spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].name, "flow.atpg");
//! assert!(journal.to_jsonl().contains("\"name\":\"flow.atpg\""));
//! ```

pub mod event;
pub mod expo;
pub mod journal;
pub mod merge;
pub mod metrics;
pub mod sinks;

use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard};

pub use event::{Event, EventKind, Span};

/// Process-wide telemetry policy.
///
/// The struct is deliberately tiny and `Copy`: campaigns thread it
/// through to decide whether to pay for instrumentation, and
/// [`TelemetryConfig::install`] flips the single global switch every
/// emission point checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether spans, instants and metric mutations are recorded.
    pub enabled: bool,
}

impl TelemetryConfig {
    /// Telemetry fully disabled — the zero-cost default.
    pub fn off() -> Self {
        TelemetryConfig { enabled: false }
    }

    /// Telemetry enabled: events buffer per thread, metrics record.
    pub fn on() -> Self {
        TelemetryConfig { enabled: true }
    }

    /// Reads `RESCUE_TELEMETRY` (`"1"` enables) from the environment.
    pub fn from_env() -> Self {
        match std::env::var("RESCUE_TELEMETRY") {
            Ok(v) if v == "1" => Self::on(),
            _ => Self::off(),
        }
    }

    /// Applies this policy to the global switch.
    pub fn install(&self) {
        event::ENABLED.store(self.enabled, Ordering::Relaxed);
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Whether telemetry is currently enabled (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    event::ENABLED.load(Ordering::Relaxed)
}

/// Serializes tests (and other short critical sections) that flip the
/// global telemetry switch or drain the global journal.
///
/// Rust runs tests of one binary on concurrent threads; a test that
/// enables telemetry and asserts on the journal would otherwise race
/// with its siblings. Hold the returned guard for the duration of such
/// a test. Poisoning is ignored on purpose — an unrelated panicking
/// test must not cascade.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Opens a tracing span: emits a `Begin` event now and an `End` event
/// when the returned [`Span`] guard drops.
///
/// Bind the guard (`let _stage = span!("...");`) — an unbound guard
/// drops immediately and times nothing. An optional `key = value` pair
/// attaches one integer argument to the `Begin` event:
/// `span!("atpg.podem", gate = id)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::event::Span::enter($name, None)
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::event::Span::enter($name, Some((stringify!($key), $val as i64)))
    };
}

/// Emits a single point (`Instant`) event, optionally with one integer
/// `key = value` argument: `instant!("slicing.pattern", index = pi)`.
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::event::instant($name, None)
    };
    ($name:expr, $key:ident = $val:expr) => {
        $crate::event::instant($name, Some((stringify!($key), $val as i64)))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let _serial = exclusive();
        TelemetryConfig::off().install();
        let mark = journal::mark();
        {
            let _s = span!("off.span");
            instant!("off.instant");
        }
        let j = Journal::snapshot_since(mark).current_thread();
        assert!(j.is_empty(), "disabled telemetry must not record");
    }

    #[test]
    fn config_round_trips_env_convention() {
        assert_eq!(TelemetryConfig::off(), TelemetryConfig::default());
        assert!(TelemetryConfig::on().enabled);
        assert!(!TelemetryConfig::off().enabled);
    }

    #[test]
    fn span_guard_times_nested_regions() {
        let _serial = exclusive();
        TelemetryConfig::on().install();
        let mark = journal::mark();
        {
            let _outer = span!("outer");
            let _inner = span!("inner", depth = 1);
        }
        let j = Journal::snapshot_since(mark).current_thread();
        TelemetryConfig::off().install();
        let spans = j.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first (drop order), outer encloses it.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert!(spans[1].dur_ns >= spans[0].dur_ns);
        assert_eq!(spans[0].arg, Some(("depth", 1)));
    }
}
