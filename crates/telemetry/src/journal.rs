//! The run journal: a captured, totally ordered event stream.
//!
//! A [`Journal`] is a snapshot of the global event sink — either
//! destructive ([`Journal::take_since`], [`Journal::drain`]) for
//! exporters that own the stream, or non-destructive
//! ([`Journal::snapshot_since`]) for readers like the flow report that
//! must not steal events from a concurrent observer. Events are ordered
//! by their global sequence number, so per-thread sub-streams are exact
//! and deterministic for seeded serial runs.

use crate::event::{self, Event, EventKind};

/// Returns a mark (the current global sequence number) delimiting
/// "events from here on". Pass it to [`Journal::snapshot_since`] /
/// [`Journal::take_since`] to scope a capture to one run.
pub fn mark() -> u64 {
    event::seq_mark()
}

/// The timestamp-free shape of one event: `(name, kind, arg)`. See
/// [`Journal::signature`].
pub type EventSignature = (&'static str, EventKind, Option<(&'static str, i64)>);

/// One matched `Begin`/`End` pair from a journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (the `Begin` event's name).
    pub name: &'static str,
    /// Emitting thread.
    pub tid: u64,
    /// Begin timestamp, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// End minus begin timestamp.
    pub dur_ns: u64,
    /// The `Begin` event's argument, if any.
    pub arg: Option<(&'static str, i64)>,
}

/// A captured, seq-ordered slice of the telemetry event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    events: Vec<Event>,
}

impl Journal {
    /// Takes every event recorded so far out of the global sink.
    pub fn drain() -> Journal {
        Journal::take_since(0)
    }

    /// Takes events with `seq >= mark` out of the global sink (the
    /// calling thread's buffer is flushed first). Destructive: a second
    /// call returns only newer events.
    pub fn take_since(mark: u64) -> Journal {
        Journal {
            events: event::take_since(mark),
        }
    }

    /// Clones events with `seq >= mark` from the global sink without
    /// removing them (the calling thread's buffer is flushed first).
    pub fn snapshot_since(mark: u64) -> Journal {
        Journal {
            events: event::clone_since(mark),
        }
    }

    /// Wraps an explicit event list (sorted by caller).
    pub fn from_events(events: Vec<Event>) -> Journal {
        Journal { events }
    }

    /// The captured events, ordered by sequence number.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sub-journal of one thread.
    pub fn thread(&self, tid: u64) -> Journal {
        Journal {
            events: self
                .events
                .iter()
                .filter(|e| e.tid == tid)
                .copied()
                .collect(),
        }
    }

    /// The sub-journal of the calling thread — the tool for tests and
    /// flow reports that must ignore concurrent emitters.
    pub fn current_thread(&self) -> Journal {
        self.thread(event::current_tid())
    }

    /// The sub-journal of events whose name starts with `prefix`.
    pub fn with_prefix(&self, prefix: &str) -> Journal {
        Journal {
            events: self
                .events
                .iter()
                .filter(|e| e.name.starts_with(prefix))
                .copied()
                .collect(),
        }
    }

    /// The timestamp-free signature of the stream: `(name, kind, arg)`
    /// per event, in order. Two runs of the same seeded serial campaign
    /// produce identical signatures — the determinism property the
    /// radiation test-suite pins down.
    pub fn signature(&self) -> Vec<EventSignature> {
        self.events
            .iter()
            .map(|e| (e.name, e.kind, e.arg))
            .collect()
    }

    /// Matches `Begin`/`End` pairs into [`SpanRecord`]s using one open
    /// stack per thread (events of different threads interleave freely;
    /// within a thread spans nest). Records are returned in completion
    /// (`End`) order. Unmatched events are skipped — count them with
    /// [`Journal::unmatched_begins`].
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut open: Vec<(u64, Vec<&Event>)> = Vec::new();
        let mut out = Vec::new();
        for e in &self.events {
            let stack = match open.iter_mut().find(|(tid, _)| *tid == e.tid) {
                Some((_, stack)) => stack,
                None => {
                    open.push((e.tid, Vec::new()));
                    &mut open.last_mut().expect("just pushed").1
                }
            };
            match e.kind {
                EventKind::Begin => stack.push(e),
                EventKind::End => {
                    if let Some(b) = stack.pop() {
                        out.push(SpanRecord {
                            name: b.name,
                            tid: b.tid,
                            start_ns: b.ts_ns,
                            dur_ns: e.ts_ns.saturating_sub(b.ts_ns),
                            arg: b.arg,
                        });
                    }
                }
                EventKind::Instant => {}
            }
        }
        out
    }

    /// `Begin` events that never saw a matching `End` (e.g. a campaign
    /// that panicked mid-span). A well-formed run journal reports 0.
    pub fn unmatched_begins(&self) -> usize {
        let mut depth: Vec<(u64, isize)> = Vec::new();
        let mut unmatched = 0isize;
        for e in &self.events {
            let d = match depth.iter_mut().find(|(tid, _)| *tid == e.tid) {
                Some((_, d)) => d,
                None => {
                    depth.push((e.tid, 0));
                    &mut depth.last_mut().expect("just pushed").1
                }
            };
            match e.kind {
                EventKind::Begin => {
                    *d += 1;
                    unmatched += 1;
                }
                EventKind::End => {
                    if *d > 0 {
                        *d -= 1;
                        unmatched -= 1;
                    }
                }
                EventKind::Instant => {}
            }
        }
        unmatched.max(0) as usize
    }

    /// The sub-journal with unmatched events removed: `Begin`s that
    /// never ended and `End`s with no open span are dropped, matched
    /// pairs and instants kept. A mid-run snapshot
    /// ([`Journal::snapshot_since`] while spans are still open) fails
    /// strict validation; filtered through this it exports clean —
    /// the tool behind live journal exports from inside a campaign.
    pub fn without_open_spans(&self) -> Journal {
        let mut keep = vec![false; self.events.len()];
        let mut open: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            let stack = match open.iter_mut().find(|(tid, _)| *tid == e.tid) {
                Some((_, stack)) => stack,
                None => {
                    open.push((e.tid, Vec::new()));
                    &mut open.last_mut().expect("just pushed").1
                }
            };
            match e.kind {
                EventKind::Begin => stack.push(i),
                EventKind::End => {
                    if let Some(b) = stack.pop() {
                        keep[b] = true;
                        keep[i] = true;
                    }
                }
                EventKind::Instant => keep[i] = true,
            }
        }
        Journal {
            events: self
                .events
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(e, _)| *e)
                .collect(),
        }
    }

    /// Aggregates matched spans by name: `(name, count, total_ns)`,
    /// sorted by descending total time. The stage-breakdown primitive
    /// behind the flow report and the markdown sink.
    pub fn span_totals(&self) -> Vec<(&'static str, usize, u64)> {
        let mut totals: Vec<(&'static str, usize, u64)> = Vec::new();
        for s in self.spans() {
            match totals.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, count, ns)) => {
                    *count += 1;
                    *ns += s.dur_ns;
                }
                None => totals.push((s.name, 1, s.dur_ns)),
            }
        }
        totals.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;
    use crate::{instant, span};

    #[test]
    fn signature_ignores_time_but_keeps_order_and_args() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let capture = || {
            let m = mark();
            {
                let _a = span!("sig.a", x = 1);
                instant!("sig.mid");
            }
            Journal::take_since(m).current_thread().signature()
        };
        let first = capture();
        let second = capture();
        TelemetryConfig::off().install();
        assert_eq!(first, second, "identical work, identical signature");
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].0, "sig.a");
        assert_eq!(first[0].2, Some(("x", 1)));
    }

    #[test]
    fn spans_match_nested_and_report_unmatched() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = mark();
        let leak = Box::new(span!("leaky"));
        {
            let _ok = span!("closed");
        }
        let j = Journal::snapshot_since(m).current_thread();
        assert_eq!(j.unmatched_begins(), 1, "leaky is still open");
        assert_eq!(j.spans().len(), 1);
        drop(leak);
        let j = Journal::take_since(m).current_thread();
        TelemetryConfig::off().install();
        assert_eq!(j.unmatched_begins(), 0);
        assert_eq!(j.spans().len(), 2);
    }

    #[test]
    fn without_open_spans_drops_only_unmatched_events() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = mark();
        let leak = Box::new(span!("live.open"));
        {
            let _ok = span!("live.closed");
            instant!("live.tick");
        }
        let snap = Journal::snapshot_since(m).current_thread();
        assert_eq!(snap.unmatched_begins(), 1);
        let clean = snap.without_open_spans();
        assert_eq!(clean.unmatched_begins(), 0);
        // closed B + closed E + instant survive; the open B is gone.
        assert_eq!(clean.len(), 3);
        assert!(clean.events().iter().all(|e| e.name != "live.open"));
        drop(leak);
        let _ = Journal::take_since(m);
        TelemetryConfig::off().install();
    }

    #[test]
    fn span_totals_aggregate_by_name() {
        let _serial = crate::exclusive();
        TelemetryConfig::on().install();
        let m = mark();
        for _ in 0..3 {
            let _s = span!("totals.stage");
        }
        let j = Journal::take_since(m).current_thread();
        TelemetryConfig::off().install();
        let totals = j.span_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, "totals.stage");
        assert_eq!(totals[0].1, 3);
    }

    #[test]
    fn prefix_filter_scopes_to_a_namespace() {
        let j = Journal::from_events(vec![
            Event {
                seq: 0,
                ts_ns: 0,
                tid: 0,
                name: "flow.atpg",
                kind: EventKind::Instant,
                arg: None,
            },
            Event {
                seq: 1,
                ts_ns: 1,
                tid: 0,
                name: "fault.cone",
                kind: EventKind::Instant,
                arg: None,
            },
        ]);
        assert_eq!(j.with_prefix("flow.").len(), 1);
        assert_eq!(j.with_prefix("").len(), 2);
    }
}
