//! Property-based tests for the observability plane: Prometheus
//! exposition and cross-process journal merging.
//!
//! Two families of invariants:
//!
//! * **Exposition** — for an arbitrary registry state (counters, gauges
//!   and histograms under names that stress the sanitizer), rendering
//!   is deterministic (two snapshots of an unchanged registry produce
//!   byte-identical bodies) and the body always passes
//!   [`validate_exposition`] — a scraper never sees a malformed line,
//!   whatever the campaign recorded.
//! * **Merge** — [`merge::merge`] is order-insensitive: feeding the
//!   same per-process journals in any argument order yields an
//!   identical timeline (byte-identical JSONL, identical signature),
//!   and a merged timeline re-merges to itself (round-trip).

use proptest::prelude::*;
use rescue_telemetry::expo::validate_exposition;
use rescue_telemetry::{merge, metrics, TelemetryConfig};

/// Counter/gauge/histogram names indexed by generated integers — the
/// shim has no string strategies, so arbitrary names come from this
/// table. Deliberately includes sanitizer corner cases: dots, spaces,
/// leading digits, non-ASCII, and pairs that collide after
/// sanitization (`claim age` / `claim_age`).
const COUNTER_NAMES: &[&str] = &[
    "prop.hits",
    "prop.store puts",
    "prop.9lives",
    "prop.été",
    "prop.claim age",
    "prop.claim_age",
    "prop.a--b",
    "prop.x:y",
];
const GAUGE_NAMES: &[&str] = &[
    "propg.level",
    "propg.depth now",
    "propg.7seas",
    "propg.naïve",
    "propg.claim age",
    "propg.claim_age",
];
const HIST_NAMES: &[&str] = &["proph.lat ms", "proph.size", "proph.0day", "proph.über"];

const EVENT_NAMES: &[&str] = &[
    "flow.atpg",
    "fault.unit",
    "seu.window",
    "store.put",
    "campaign.store",
    "e18.child_put",
];
const ARG_NAMES: &[&str] = &["units", "bytes", "grain"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rendering an arbitrary registry state is deterministic and
    /// always yields a parse-clean exposition body.
    #[test]
    fn exposition_deterministic_and_parse_clean(
        counters in proptest::collection::vec((0usize..8, 0u64..1_000_000), 0..8),
        gauges in proptest::collection::vec((0usize..6, -500_000i64..500_000), 0..6),
        hists in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(0u64..2_000_000, 0..12)),
            0..4,
        ),
    ) {
        // The registry is process-global: serialize against every other
        // test that flips the telemetry switch, and reset values so the
        // asserted state is this case's own.
        let _serial = rescue_telemetry::exclusive();
        TelemetryConfig::on().install();
        metrics::reset();
        for &(ni, v) in &counters {
            metrics::counter(COUNTER_NAMES[ni]).add(v);
        }
        for &(ni, v) in &gauges {
            metrics::gauge(GAUGE_NAMES[ni]).set(v);
        }
        for (ni, values) in &hists {
            let h = metrics::histogram(HIST_NAMES[*ni], &metrics::pow2_bounds(12));
            for &v in values {
                h.record(v);
            }
        }
        let first = metrics::snapshot().to_prometheus();
        let second = metrics::snapshot().to_prometheus();
        TelemetryConfig::off().install();

        prop_assert_eq!(&first, &second, "unchanged registry renders identically");
        let samples = validate_exposition(&first);
        prop_assert!(samples.is_ok(), "exposition must parse: {:?}", samples);
        // Anything recorded must surface: at least one sample per
        // distinct live family (collided names fold into one).
        if !counters.is_empty() {
            prop_assert!(first.contains("_total"));
        }
        for (ni, values) in &hists {
            if !values.is_empty() {
                let family = format!(
                    "rescue_{}_count",
                    HIST_NAMES[*ni].replace(['.', ' '], "_")
                );
                let _ = family; // family name sanitization is expo's own test surface
                prop_assert!(first.contains("_bucket{le=\"+Inf\"}"));
            }
        }
    }

    /// Merging the same per-process journals in any argument order
    /// yields an identical timeline, and the merged timeline re-merges
    /// to itself.
    #[test]
    fn merge_is_order_insensitive(
        parts in proptest::collection::vec(
            proptest::collection::vec(
                (
                    0u64..64,                                    // ts_ns
                    0usize..3,                                   // kind
                    0usize..6,                                   // name index
                    0u64..3,                                     // tid
                    proptest::option::of((0usize..3, -100i64..100)), // arg
                ),
                0..10,
            ),
            1..4,
        ),
        rot in 0usize..4,
    ) {
        // Render each generated process journal as exported JSONL.
        let texts: Vec<String> = parts
            .iter()
            .map(|events| {
                let mut s = String::new();
                for (seq, &(ts, kind, name, tid, arg)) in events.iter().enumerate() {
                    let ph = ["B", "E", "i"][kind];
                    s.push_str(&format!(
                        "{{\"seq\":{seq},\"ts_ns\":{ts},\"tid\":{tid},\"ph\":\"{ph}\",\"name\":\"{}\"",
                        EVENT_NAMES[name]
                    ));
                    if let Some((an, av)) = arg {
                        s.push_str(&format!(",\"arg_name\":\"{}\",\"arg_value\":{av}", ARG_NAMES[an]));
                    }
                    s.push_str("}\n");
                }
                s
            })
            .collect();
        let lanes: Vec<(u32, &str)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (100 + i as u32, t.as_str()))
            .collect();

        let forward = merge::merge(&lanes).expect("well-formed journals merge");

        let mut reversed = lanes.clone();
        reversed.reverse();
        let backward = merge::merge(&reversed).expect("reversed order merges");

        let mut rotated = lanes.clone();
        let turn = rot % rotated.len().max(1);
        rotated.rotate_left(turn);
        let spun = merge::merge(&rotated).expect("rotated order merges");

        prop_assert_eq!(forward.signature(), backward.signature());
        prop_assert_eq!(forward.signature(), spun.signature());
        prop_assert_eq!(forward.to_jsonl(), backward.to_jsonl());

        // Round-trip: a merged timeline carries pid fields, so feeding
        // it back through merge under any default pid reproduces it.
        let rendered = forward.to_jsonl();
        let again = merge::merge(&[(7, &rendered)]).expect("merged output re-parses");
        prop_assert_eq!(again.signature(), forward.signature());
        prop_assert_eq!(again.to_jsonl(), rendered);
        prop_assert_eq!(again.pids(), forward.pids());
    }
}
