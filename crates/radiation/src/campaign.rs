//! Statistical-versus-exhaustive fault-injection planning.
//!
//! Glues the sampling theory of [`rescue_faults::sample`] to the SEU
//! engine: plan a sampled campaign for a given error margin, execute it,
//! and (on designs small enough) validate against the exhaustive answer —
//! paper Section III.B's core cost/accuracy argument.

use crate::seu_analysis::{SeuCampaign, SeuReport};
use rescue_campaign::{Campaign, CampaignStats};
use rescue_faults::sample::{achieved_margin, sample_size, Confidence};
use rescue_faults::FaultError;
use rescue_netlist::Netlist;

/// A planned statistical injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Total population of (flop, cycle) injection points.
    pub population: usize,
    /// Planned sample size.
    pub sample: usize,
    /// Requested error margin.
    pub error_margin: f64,
    /// Confidence level.
    pub confidence: Confidence,
    /// Relative cost versus exhaustive (`sample / population`).
    pub cost_ratio: f64,
}

/// Plans a sampled SEU campaign for `netlist` with `warmup` injection
/// cycles per flop.
///
/// # Errors
///
/// Propagates [`FaultError::BadSamplingParameter`] for invalid margins.
///
/// # Examples
///
/// ```
/// use rescue_faults::sample::Confidence;
/// use rescue_netlist::generate;
/// use rescue_radiation::campaign::plan;
///
/// let lfsr = generate::lfsr(16, &[15, 13, 12, 10]);
/// let p = plan(&lfsr, 1000, 0.05, Confidence::C95)?;
/// assert!(p.sample < p.population);
/// assert!(p.cost_ratio < 0.1);
/// # Ok::<(), rescue_faults::FaultError>(())
/// ```
pub fn plan(
    netlist: &Netlist,
    warmup: usize,
    error_margin: f64,
    confidence: Confidence,
) -> Result<CampaignPlan, FaultError> {
    let population = netlist.dffs().len() * warmup.max(1);
    let sample = sample_size(population, error_margin, confidence, 0.5)?;
    Ok(CampaignPlan {
        population,
        sample,
        error_margin,
        confidence,
        cost_ratio: if population == 0 {
            0.0
        } else {
            sample as f64 / population as f64
        },
    })
}

/// Executes a planned campaign and reports the AVF with its achieved
/// margin.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledResult {
    /// The underlying SEU report.
    pub report: SeuReport,
    /// Estimated AVF.
    pub avf: f64,
    /// Achieved error margin at the plan's confidence.
    pub margin: Option<f64>,
    /// Observability record of the injection run (throughput, lane
    /// occupancy, outcome tally).
    pub stats: CampaignStats,
}

/// Runs the sampled campaign described by `plan` on the bit-parallel
/// engine. Serial convenience wrapper over [`execute_on`].
///
/// # Panics
///
/// Panics if `inputs` has the wrong width or the design has no DFFs.
pub fn execute(
    netlist: &Netlist,
    inputs: &[bool],
    plan: &CampaignPlan,
    warmup: usize,
    horizon: usize,
    seed: u64,
) -> SampledResult {
    execute_on(
        netlist,
        inputs,
        plan,
        warmup,
        horizon,
        seed,
        &Campaign::serial(),
    )
}

/// [`execute`] on the shared [`Campaign`] driver: the estimate is
/// identical for every worker count.
///
/// # Panics
///
/// Panics if `inputs` has the wrong width or the design has no DFFs.
pub fn execute_on(
    netlist: &Netlist,
    inputs: &[bool],
    plan: &CampaignPlan,
    warmup: usize,
    horizon: usize,
    seed: u64,
    campaign: &Campaign,
) -> SampledResult {
    // Wide-word front-end: 4 limbs = 256 lock-stepped machines per
    // batch. Verdicts are width-independent, so the estimate is
    // unchanged.
    let seu = SeuCampaign::new(warmup, horizon).with_lane_width(4);
    let run = seu.run_sampled_on(netlist, inputs, plan.sample, seed, campaign);
    let avf = run.report.avf();
    let margin = achieved_margin(plan.population, plan.sample, plan.confidence, 0.5);
    SampledResult {
        report: run.report,
        avf,
        margin,
        stats: run.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    #[test]
    fn sampled_estimate_within_margin_of_exhaustive() {
        // Small design: exhaustive ground truth is feasible.
        let net = generate::lfsr(10, &[9, 6]);
        let warmup = 30;
        let horizon = 12;
        let exhaustive = SeuCampaign::new(warmup, horizon).run_exhaustive(&net, &[]);
        let truth = exhaustive.avf();

        let p = plan(&net, warmup, 0.05, Confidence::C95).unwrap();
        assert!(p.population == 300);
        let result = execute(&net, &[], &p, warmup, horizon, 99);
        let margin = result.margin.unwrap();
        assert!(
            (result.avf - truth).abs() <= margin + 0.05,
            "estimate {} vs truth {} (margin {margin})",
            result.avf,
            truth
        );
        assert!(p.cost_ratio <= 1.0);
    }

    #[test]
    fn tighter_margin_costs_more() {
        let net = generate::lfsr(16, &[15, 13, 12, 10]);
        let loose = plan(&net, 2000, 0.05, Confidence::C95).unwrap();
        let tight = plan(&net, 2000, 0.01, Confidence::C95).unwrap();
        assert!(tight.sample > loose.sample);
        assert!(tight.cost_ratio > loose.cost_ratio);
    }

    #[test]
    fn plan_rejects_bad_margin() {
        let net = generate::lfsr(4, &[3, 1]);
        assert!(plan(&net, 10, 0.0, Confidence::C95).is_err());
        assert!(plan(&net, 10, -0.3, Confidence::C95).is_err());
        assert!(plan(&net, 10, 1.0, Confidence::C99).is_err());
        assert!(plan(&net, 10, 1.7, Confidence::C99).is_err());
    }

    #[test]
    fn c99_margin_holds_on_multi_hundred_flop_design() {
        // 300 flops, 2 injection cycles: population 600, exhaustive
        // ground truth still tractable on the bit-parallel engine.
        let net = generate::lfsr(300, &[299, 7]);
        let warmup = 2;
        let horizon = 10;
        let truth = SeuCampaign::new(warmup, horizon)
            .run_exhaustive(&net, &[])
            .avf();

        let p = plan(&net, warmup, 0.05, Confidence::C99).unwrap();
        assert_eq!(p.population, 600);
        assert!(p.sample < p.population);
        for seed in [3u64, 17, 2024] {
            let result = execute(&net, &[], &p, warmup, horizon, seed);
            let margin = result.margin.unwrap();
            assert!(
                (result.avf - truth).abs() <= margin + 0.05,
                "seed {seed}: estimate {} vs truth {truth} (margin {margin})",
                result.avf
            );
            assert_eq!(result.stats.injections, p.sample);
            assert_eq!(result.stats.tally.total(), p.sample);
        }
    }

    #[test]
    fn execute_on_is_worker_count_invariant() {
        let net = generate::lfsr(120, &[119, 5]);
        let warmup = 3;
        let p = plan(&net, warmup, 0.08, Confidence::C95).unwrap();
        let serial = execute(&net, &[], &p, warmup, 6, 11);
        for workers in [2usize, 4, 7] {
            let par = execute_on(&net, &[], &p, warmup, 6, 11, &Campaign::new(0, workers));
            assert_eq!(par.report, serial.report, "workers = {workers}");
            assert_eq!(par.avf, serial.avf);
            assert_eq!(par.margin, serial.margin);
        }
    }
}
