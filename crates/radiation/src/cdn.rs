//! Clock-distribution-network (CDN) SET analysis.
//!
//! Reproduces the methodology of \[54\] ("Functional Failure Rate Due to
//! Single-Event Transients in Clock Distribution Networks"): a particle
//! strike in a clock buffer creates a spurious clock pulse at the flip-
//! flops of the affected subtree. A spurious capture corrupts a flop only
//! when its `D` input differs from its stored value at strike time, and
//! only when the stretched pulse still exceeds the flop's minimum-width
//! threshold after attenuation through the remaining buffer stages.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A balanced binary clock tree with `levels` buffer levels driving
/// `2^levels` leaf flip-flop groups.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTree {
    levels: usize,
    flops_per_leaf: usize,
    /// Pulse-width attenuation per buffer stage (time units).
    attenuation: f64,
    /// Minimum pulse width a flop's clock pin reacts to.
    min_pulse: f64,
}

impl ClockTree {
    /// Builds a tree with `levels` levels and `flops_per_leaf` flops per
    /// leaf, default attenuation 0.5/stage and minimum pulse width 1.0.
    ///
    /// # Panics
    ///
    /// Panics when `levels == 0` or `flops_per_leaf == 0`.
    pub fn new(levels: usize, flops_per_leaf: usize) -> Self {
        assert!(levels > 0 && flops_per_leaf > 0, "non-trivial tree");
        ClockTree {
            levels,
            flops_per_leaf,
            attenuation: 0.5,
            min_pulse: 1.0,
        }
    }

    /// Overrides the per-stage attenuation.
    pub fn with_attenuation(mut self, attenuation: f64) -> Self {
        assert!(attenuation >= 0.0);
        self.attenuation = attenuation;
        self
    }

    /// Overrides the flop minimum-pulse threshold.
    pub fn with_min_pulse(mut self, min_pulse: f64) -> Self {
        assert!(min_pulse > 0.0);
        self.min_pulse = min_pulse;
        self
    }

    /// Number of buffer levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total buffers in the tree.
    pub fn buffer_count(&self) -> usize {
        (1 << self.levels) - 1
    }

    /// Total flip-flops driven by the tree.
    pub fn flop_count(&self) -> usize {
        (1 << self.levels) * self.flops_per_leaf
    }

    /// Number of flops in the subtree of a buffer at `level`
    /// (0 = root, `levels-1` = last buffer level).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    pub fn subtree_flops(&self, level: usize) -> usize {
        assert!(level < self.levels, "level out of range");
        (1 << (self.levels - level)) * self.flops_per_leaf
    }

    /// Residual pulse width at the flop clock pins for a strike of
    /// `width` at `level` (stages below attenuate the pulse).
    pub fn residual_width(&self, level: usize, width: f64) -> f64 {
        let stages = (self.levels - 1 - level) as f64;
        (width - stages * self.attenuation).max(0.0)
    }

    /// Probability a strike at `level` with pulse `width` corrupts at
    /// least one flop, with per-flop data-toggle probability
    /// `p_data_differs` (P(D != Q) at strike time).
    ///
    /// The spurious edge reaches every flop in the subtree; each flop is
    /// corrupted independently with probability `p_data_differs` if the
    /// residual pulse exceeds the threshold.
    ///
    /// # Panics
    ///
    /// Panics if `p_data_differs` is outside `[0, 1]`.
    pub fn failure_probability(&self, level: usize, width: f64, p_data_differs: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_data_differs));
        if self.residual_width(level, width) < self.min_pulse {
            return 0.0;
        }
        let n = self.subtree_flops(level) as f64;
        1.0 - (1.0 - p_data_differs).powf(n)
    }

    /// Monte-Carlo functional-failure-rate estimate: strikes hit a
    /// uniformly random buffer with widths uniform in
    /// `[w_min, w_max]`; returns the fraction of strikes corrupting at
    /// least one flop.
    pub fn monte_carlo_ffr(
        &self,
        strikes: usize,
        w_min: f64,
        w_max: f64,
        p_data_differs: f64,
        seed: u64,
    ) -> f64 {
        assert!(w_min <= w_max);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failures = 0usize;
        for _ in 0..strikes {
            // Buffers per level: 2^level; pick proportionally.
            let idx = rng.gen_range(0..self.buffer_count());
            let level = (usize::BITS - 1 - (idx + 1).leading_zeros()) as usize;
            let width = rng.gen_range(w_min..=w_max);
            let p = self.failure_probability(level, width, p_data_differs);
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                failures += 1;
            }
        }
        failures as f64 / strikes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let t = ClockTree::new(3, 4);
        assert_eq!(t.buffer_count(), 7);
        assert_eq!(t.flop_count(), 32);
        assert_eq!(t.subtree_flops(0), 32);
        assert_eq!(t.subtree_flops(1), 16);
        assert_eq!(t.subtree_flops(2), 8);
        assert_eq!(t.levels(), 3);
    }

    #[test]
    fn attenuation_kills_narrow_pulses() {
        let t = ClockTree::new(4, 2)
            .with_attenuation(1.0)
            .with_min_pulse(1.0);
        // Strike at the root: 3 stages below, width 3 fully attenuated.
        assert_eq!(t.residual_width(0, 3.0), 0.0);
        assert_eq!(t.failure_probability(0, 3.0, 0.5), 0.0);
        // Strike at the last level: no attenuation.
        assert_eq!(t.residual_width(3, 3.0), 3.0);
        assert!(t.failure_probability(3, 3.0, 0.5) > 0.0);
    }

    #[test]
    fn root_strikes_hit_more_flops() {
        let t = ClockTree::new(4, 2).with_attenuation(0.0);
        let root = t.failure_probability(0, 5.0, 0.1);
        let leaf = t.failure_probability(3, 5.0, 0.1);
        assert!(root > leaf, "{root} vs {leaf}");
    }

    #[test]
    fn ffr_increases_with_pulse_width() {
        let t = ClockTree::new(4, 4);
        let narrow = t.monte_carlo_ffr(4000, 0.5, 1.0, 0.3, 7);
        let wide = t.monte_carlo_ffr(4000, 3.0, 6.0, 0.3, 7);
        assert!(wide > narrow, "{wide} > {narrow}");
    }

    #[test]
    fn ffr_increases_with_data_activity() {
        let t = ClockTree::new(3, 4);
        let quiet = t.monte_carlo_ffr(4000, 2.0, 4.0, 0.05, 3);
        let busy = t.monte_carlo_ffr(4000, 2.0, 4.0, 0.5, 3);
        assert!(busy > quiet);
    }

    #[test]
    fn zero_toggle_never_fails() {
        let t = ClockTree::new(3, 4);
        assert_eq!(t.monte_carlo_ffr(1000, 2.0, 4.0, 0.0, 1), 0.0);
    }
}
