//! FIT / SER arithmetic and ASIL failure-rate budgets.
//!
//! "Standard flip-flops and SRAM memories … exhibit error rates of
//! hundreds of FITs … Complex circuits using such cells can easily
//! overshoot the 10 FIT target mandated by the ISO 26262 for an
//! automotive ASIL D application." (paper Section III.B)

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Mul};

/// A failure rate in FIT (failures per 10⁹ device-hours).
///
/// # Examples
///
/// ```
/// use rescue_radiation::Fit;
///
/// let per_mbit = Fit::new(300.0);          // raw cell technology rate
/// let chip = per_mbit * 12.0;              // 12 Mbit on chip
/// let effective = chip.derated(0.08);      // 8% of upsets matter
/// assert!(effective.value() > 100.0);
/// assert!(effective.mtbf_hours() < 1e8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fit(f64);

impl Fit {
    /// Creates a failure rate.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn new(fit: f64) -> Self {
        assert!(fit.is_finite() && fit >= 0.0, "FIT must be finite and >= 0");
        Fit(fit)
    }

    /// The raw FIT value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Mean time between failures in hours (`inf` for 0 FIT).
    pub fn mtbf_hours(self) -> f64 {
        if self.0 == 0.0 {
            f64::INFINITY
        } else {
            1e9 / self.0
        }
    }

    /// Applies a derating (masking) factor in `[0, 1]`: the fraction of
    /// raw events that produce an observable failure.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is outside `[0, 1]`.
    pub fn derated(self, factor: f64) -> Fit {
        assert!((0.0..=1.0).contains(&factor), "derating factor in [0,1]");
        Fit(self.0 * factor)
    }

    /// Converts an event *cross-section* (cm²/bit) and a particle flux
    /// (particles/cm²/h) into a per-bit FIT rate.
    pub fn from_cross_section(sigma_cm2: f64, flux_per_cm2_h: f64) -> Fit {
        Fit::new(sigma_cm2 * flux_per_cm2_h * 1e9)
    }
}

impl fmt::Display for Fit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} FIT", self.0)
    }
}

impl Add for Fit {
    type Output = Fit;
    fn add(self, rhs: Fit) -> Fit {
        Fit(self.0 + rhs.0)
    }
}

impl Mul<f64> for Fit {
    type Output = Fit;
    fn mul(self, rhs: f64) -> Fit {
        assert!(rhs >= 0.0, "FIT scaling must be non-negative");
        Fit(self.0 * rhs)
    }
}

impl Sum for Fit {
    fn sum<I: Iterator<Item = Fit>>(iter: I) -> Fit {
        iter.fold(Fit(0.0), Add::add)
    }
}

/// A failure-rate budget, e.g. the ISO 26262 ASIL-D 10 FIT target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerBudget {
    limit: Fit,
}

impl SerBudget {
    /// The ASIL-D random-hardware-failure budget (10 FIT).
    pub fn asil_d() -> Self {
        SerBudget {
            limit: Fit::new(10.0),
        }
    }

    /// The ASIL-C budget (100 FIT).
    pub fn asil_c() -> Self {
        SerBudget {
            limit: Fit::new(100.0),
        }
    }

    /// The ASIL-B budget (100 FIT).
    pub fn asil_b() -> Self {
        SerBudget {
            limit: Fit::new(100.0),
        }
    }

    /// A custom budget.
    pub fn custom(limit: Fit) -> Self {
        SerBudget { limit }
    }

    /// The budget limit.
    pub fn limit(self) -> Fit {
        self.limit
    }

    /// Does `rate` meet the budget?
    pub fn is_met(self, rate: Fit) -> bool {
        rate.value() <= self.limit.value()
    }

    /// The margin (negative when over budget).
    pub fn margin(self, rate: Fit) -> f64 {
        self.limit.value() - rate.value()
    }
}

/// A contribution breakdown: component name, raw rate and derating.
#[derive(Debug, Clone, PartialEq)]
pub struct SerContribution {
    /// Component label.
    pub name: String,
    /// Raw (undecorated) event rate.
    pub raw: Fit,
    /// Observable-failure fraction in `[0, 1]`.
    pub derating: f64,
}

impl SerContribution {
    /// The effective (derated) failure rate.
    pub fn effective(&self) -> Fit {
        self.raw.derated(self.derating)
    }
}

/// Sums contributions into a chip-level SER and checks a budget.
pub fn chip_ser(contributions: &[SerContribution]) -> Fit {
    contributions.iter().map(|c| c.effective()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Fit::new(3.0) + Fit::new(4.0);
        assert_eq!(a.value(), 7.0);
        assert_eq!((Fit::new(5.0) * 2.0).value(), 10.0);
        let total: Fit = [Fit::new(1.0), Fit::new(2.0)].into_iter().sum();
        assert_eq!(total.value(), 3.0);
        assert_eq!(format!("{}", Fit::new(1.5)), "1.500 FIT");
    }

    #[test]
    fn mtbf() {
        assert_eq!(Fit::new(100.0).mtbf_hours(), 1e7);
        assert!(Fit::new(0.0).mtbf_hours().is_infinite());
    }

    #[test]
    fn budgets() {
        let b = SerBudget::asil_d();
        assert!(b.is_met(Fit::new(9.9)));
        assert!(!b.is_met(Fit::new(10.1)));
        assert!(b.margin(Fit::new(4.0)) == 6.0);
        assert!(SerBudget::asil_c().limit().value() > b.limit().value());
        assert_eq!(SerBudget::asil_b().limit().value(), 100.0);
        assert!(SerBudget::custom(Fit::new(1.0)).is_met(Fit::new(0.5)));
    }

    #[test]
    fn paper_scenario_overshoots_asil_d() {
        // Hundreds of FIT per Mbit, a few Mbit of state, even with strong
        // masking the raw sum breaks the 10 FIT target without mitigation.
        let contributions = vec![
            SerContribution {
                name: "sram".into(),
                raw: Fit::new(300.0) * 4.0, // 4 Mbit at 300 FIT/Mbit
                derating: 0.1,
            },
            SerContribution {
                name: "flops".into(),
                raw: Fit::new(200.0),
                derating: 0.15,
            },
        ];
        let total = chip_ser(&contributions);
        assert!(!SerBudget::asil_d().is_met(total), "{total}");
        // ECC on the SRAM (99% of upsets corrected) brings it under.
        let mitigated = vec![
            SerContribution {
                name: "sram+ecc".into(),
                raw: Fit::new(300.0) * 4.0,
                derating: 0.1 * 0.01,
            },
            contributions[1].clone(),
        ];
        let total = chip_ser(&mitigated);
        // flops alone: 200*0.15 = 30 FIT -> still over; add flop hardening
        assert!(!SerBudget::asil_d().is_met(total));
        let hardened = vec![
            mitigated[0].clone(),
            SerContribution {
                name: "hardened flops".into(),
                raw: Fit::new(200.0),
                derating: 0.15 * 0.1,
            },
        ];
        assert!(SerBudget::asil_d().is_met(chip_ser(&hardened)));
    }

    #[test]
    fn cross_section() {
        let f = Fit::from_cross_section(1e-14, 13.0); // sea-level neutron flux
        assert!(f.value() > 0.0 && f.value() < 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        Fit::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "derating factor")]
    fn rejects_bad_derating() {
        Fit::new(1.0).derated(1.5);
    }
}
