//! Soft-error and transient-fault vulnerability analysis for RESCUE-rs.
//!
//! Covers paper Sections III.B and III.C:
//!
//! * [`fit`] — FIT/SER arithmetic, masking/derating factors, ISO 26262
//!   ASIL failure-rate budgets.
//! * [`set_analysis`] — Monte-Carlo single-event-transient campaigns over
//!   a netlist with the timed simulator (logical + electrical masking).
//! * [`seu_analysis`] — single-event-upset campaigns on sequential
//!   designs: masked / latent / failure classification and per-flip-flop
//!   vulnerability factors.
//! * [`cdn`] — clock-distribution-network SET study: spurious capture
//!   probability versus strike location and pulse width (\[54\]).
//! * [`campaign`] — statistical-versus-exhaustive injection planning
//!   built on [`rescue_faults::sample`].
//! * [`monitor`] — the SRAM-based SEU monitor \[38\] and the
//!   pulse-stretching inverter-chain particle detector \[39\].
//!
//! # Examples
//!
//! ```
//! use rescue_netlist::generate;
//! use rescue_radiation::set_analysis::{SetCampaign, SetOutcome};
//!
//! let adder = generate::adder(4);
//! let campaign = SetCampaign::new(&adder);
//! let report = campaign.run(&adder, 500, 42);
//! let masked = report.fraction(SetOutcome::LogicallyMasked)
//!     + report.fraction(SetOutcome::ElectricallyMasked);
//! assert!(masked > 0.0 && masked < 1.0, "some SETs masked, some not");
//! assert!((masked + report.derating() - 1.0).abs() < 1e-9);
//! ```

pub mod campaign;
pub mod cdn;
pub mod fit;
pub mod monitor;
pub mod set_analysis;
pub mod seu_analysis;

pub use fit::{Fit, SerBudget};
