//! Monte-Carlo single-event-transient (SET) campaigns.
//!
//! Each injection strikes a random combinational gate at a random time
//! with a random pulse width under a random input pattern, then the timed
//! simulator decides whether the pulse reaches a primary output or is
//! masked on the way — the classic masking mechanisms:
//!
//! * **logical masking** — a controlling value blocks the path;
//! * **electrical masking** — the pulse is narrower than a downstream
//!   inertial delay and is filtered;
//! * latching-window masking is layered on top via [`latch_probability`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescue_campaign::{Campaign, CampaignStats};
use rescue_netlist::{GateId, GateKind, Netlist};
use rescue_sim::timed::{SetPulse, TimedSimulator};

/// Outcome of one SET injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOutcome {
    /// The strike produced no transition beyond the struck gate: a
    /// controlling value blocked every path.
    LogicallyMasked,
    /// The pulse travelled but was filtered by inertial delays before
    /// reaching an output.
    ElectricallyMasked,
    /// At least one output pulsed.
    Propagated,
}

/// One injection record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetInjection {
    /// The struck gate.
    pub gate: GateId,
    /// Injected pulse width.
    pub width: u64,
    /// Classification.
    pub outcome: SetOutcome,
    /// Widest pulse observed at any output (0 when masked).
    pub output_width: u64,
}

/// Aggregated campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetReport {
    injections: Vec<SetInjection>,
}

impl SetReport {
    /// All injection records.
    pub fn injections(&self) -> &[SetInjection] {
        &self.injections
    }

    /// Fraction of injections with the given outcome.
    pub fn fraction(&self, outcome: SetOutcome) -> f64 {
        if self.injections.is_empty() {
            return 0.0;
        }
        self.injections
            .iter()
            .filter(|i| i.outcome == outcome)
            .count() as f64
            / self.injections.len() as f64
    }

    /// The SET derating factor: the fraction of strikes that propagate.
    /// Multiplying a raw strike rate by this factor yields the effective
    /// functional failure rate (see [`crate::fit::Fit::derated`]).
    pub fn derating(&self) -> f64 {
        self.fraction(SetOutcome::Propagated)
    }

    /// Per-gate strike statistics `(gate, struck, propagated)` — the
    /// ranking used to pick selective-hardening candidates.
    pub fn per_gate(&self) -> Vec<(GateId, usize, usize)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<GateId, (usize, usize)> = BTreeMap::new();
        for inj in &self.injections {
            let e = map.entry(inj.gate).or_insert((0, 0));
            e.0 += 1;
            if inj.outcome == SetOutcome::Propagated {
                e.1 += 1;
            }
        }
        map.into_iter().map(|(g, (s, p))| (g, s, p)).collect()
    }
}

/// A SET report plus the campaign observability record of the run that
/// produced it.
#[derive(Debug, Clone)]
pub struct SetRun {
    /// The (deterministic) strike records.
    pub report: SetReport,
    /// Throughput, worker timing and outcome tally (propagated strikes
    /// count as failures, masked ones as masked).
    pub stats: CampaignStats,
}

/// Monte-Carlo SET campaign runner over one combinational netlist.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_radiation::set_analysis::{SetCampaign, SetOutcome};
///
/// let adder = generate::adder(4);
/// let campaign = SetCampaign::new(&adder);
/// let report = campaign.run(&adder, 300, 42);
/// assert_eq!(report.injections().len(), 300);
/// let total = report.fraction(SetOutcome::LogicallyMasked)
///     + report.fraction(SetOutcome::ElectricallyMasked)
///     + report.fraction(SetOutcome::Propagated);
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SetCampaign {
    targets: Vec<GateId>,
    sim: TimedSimulator,
    min_width: u64,
    max_width: u64,
    settle: u64,
}

impl SetCampaign {
    /// Prepares a campaign with unit gate delays and pulse widths 1–8.
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_widths(netlist, 1, 8)
    }

    /// Prepares a campaign with an explicit pulse-width range.
    ///
    /// # Panics
    ///
    /// Panics when `min_width == 0` or `min_width > max_width`.
    pub fn with_widths(netlist: &Netlist, min_width: u64, max_width: u64) -> Self {
        assert!(min_width > 0 && min_width <= max_width, "bad width range");
        let targets: Vec<GateId> = netlist
            .iter()
            .filter(|(_, g)| {
                !matches!(
                    g.kind(),
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                )
            })
            .map(|(id, _)| id)
            .collect();
        let settle = 4 * (netlist.levelize().depth() as u64 + 2) * max_width.max(1);
        SetCampaign {
            targets,
            sim: TimedSimulator::new(netlist),
            min_width,
            max_width,
            settle,
        }
    }

    /// Uses explicit per-gate delays (electrical-masking strength).
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != netlist.len()` or any delay is zero.
    pub fn with_delays(mut self, netlist: &Netlist, delays: Vec<u64>) -> Self {
        self.sim = TimedSimulator::with_delays(netlist, delays);
        self
    }

    /// The strike-eligible gates.
    pub fn targets(&self) -> &[GateId] {
        &self.targets
    }

    /// Runs `injections` random strikes; deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no strike-eligible gates.
    pub fn run(&self, netlist: &Netlist, injections: usize, seed: u64) -> SetReport {
        self.run_on(netlist, injections, seed, |_| true)
    }

    /// Runs strikes restricted to gates passing `filter` (e.g. a single
    /// logic cone) — used by the CDN study and hardening what-ifs.
    ///
    /// # Panics
    ///
    /// Panics if no eligible gate passes the filter.
    pub fn run_on<F: Fn(GateId) -> bool>(
        &self,
        netlist: &Netlist,
        injections: usize,
        seed: u64,
        filter: F,
    ) -> SetReport {
        self.run_campaign(netlist, injections, seed, filter, &Campaign::serial())
            .report
    }

    /// [`Self::run_on`] on the shared [`Campaign`] driver: strike specs
    /// (gate, pulse width, input pattern) are drawn serially from `seed`
    /// in the exact order of the scalar path, then the timed-simulation
    /// classification is sharded over scoped workers. The report is
    /// byte-identical for every worker count.
    ///
    /// # Panics
    ///
    /// Panics if no eligible gate passes the filter.
    pub fn run_campaign<F: Fn(GateId) -> bool>(
        &self,
        netlist: &Netlist,
        injections: usize,
        seed: u64,
        filter: F,
        campaign: &Campaign,
    ) -> SetRun {
        let _campaign_span = rescue_telemetry::span!("set.campaign", injections = injections);
        let candidates: Vec<GateId> = self
            .targets
            .iter()
            .copied()
            .filter(|&g| filter(g))
            .collect();
        assert!(!candidates.is_empty(), "no strike-eligible gates");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_in = netlist.primary_inputs().len();
        let specs: Vec<(GateId, u64, Vec<bool>)> = (0..injections)
            .map(|_| {
                let gate = candidates[rng.gen_range(0..candidates.len())];
                let width = rng.gen_range(self.min_width..=self.max_width);
                let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen()).collect();
                (gate, width, inputs)
            })
            .collect();
        let run = campaign.run_sharded(
            &specs,
            |_| (),
            |_, _, (gate, width, inputs)| self.inject(netlist, *gate, *width, inputs),
        );
        let mut stats = CampaignStats::from_run(injections, &run);
        for inj in &run.results {
            if inj.outcome == SetOutcome::Propagated {
                stats.tally.failures += 1;
            } else {
                stats.tally.masked += 1;
            }
        }
        SetRun {
            report: SetReport {
                injections: run.results,
            },
            stats,
        }
    }

    /// Injects one strike and classifies the result.
    ///
    /// The logical/electrical distinction is operational: a masked strike
    /// is *electrically* masked when the same strike with a very wide
    /// pulse (immune to inertial filtering) does reach an output, and
    /// *logically* masked when even the wide pulse is blocked.
    pub fn inject(
        &self,
        netlist: &Netlist,
        gate: GateId,
        width: u64,
        inputs: &[bool],
    ) -> SetInjection {
        let output_width = self.output_pulse_width(netlist, gate, width, inputs);
        let outcome = if output_width > 0 {
            SetOutcome::Propagated
        } else {
            let wide = self.settle / 2;
            if self.output_pulse_width(netlist, gate, wide, inputs) > 0 {
                SetOutcome::ElectricallyMasked
            } else {
                SetOutcome::LogicallyMasked
            }
        };
        SetInjection {
            gate,
            width,
            outcome,
            output_width,
        }
    }

    /// Widest pulse any primary output sees for one strike (0 = none).
    fn output_pulse_width(
        &self,
        netlist: &Netlist,
        gate: GateId,
        width: u64,
        inputs: &[bool],
    ) -> u64 {
        let start = self.settle / 4;
        let wave = self
            .sim
            .run(
                netlist,
                inputs,
                &[SetPulse::new(gate, start, width)],
                2 * self.settle + start + width,
            )
            .expect("input width checked by caller");
        let mut output_width = 0u64;
        for (_, out) in netlist.primary_outputs() {
            for (_, w) in wave.pulses_of(*out) {
                output_width = output_width.max(w.max(1));
            }
        }
        output_width
    }
}

/// Latching-window masking: the probability a pulse of `pulse_width`
/// arriving at a flip-flop data input is captured, given the clock period
/// and the latching window (setup + hold) of the flop:
/// `P = min(1, (width + window) / period)`.
///
/// # Panics
///
/// Panics when `period == 0`.
pub fn latch_probability(pulse_width: u64, window: u64, period: u64) -> f64 {
    assert!(period > 0, "clock period must be positive");
    ((pulse_width + window) as f64 / period as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn latch_probability_model() {
        assert_eq!(latch_probability(0, 0, 10), 0.0);
        assert_eq!(latch_probability(5, 0, 10), 0.5);
        assert_eq!(latch_probability(20, 2, 10), 1.0);
        assert!(latch_probability(3, 1, 10) > latch_probability(2, 1, 10));
    }

    #[test]
    fn campaign_is_deterministic() {
        let c = generate::c17();
        let camp = SetCampaign::new(&c);
        let a = camp.run(&c, 100, 5);
        let b = camp.run(&c, 100, 5);
        assert_eq!(a, b);
        let c2 = camp.run(&c, 100, 6);
        assert_ne!(a, c2);
    }

    #[test]
    fn masking_fractions_partition() {
        let net = generate::random_logic(8, 60, 3, 3);
        let camp = SetCampaign::new(&net);
        let r = camp.run(&net, 400, 11);
        let sum = r.fraction(SetOutcome::LogicallyMasked)
            + r.fraction(SetOutcome::ElectricallyMasked)
            + r.fraction(SetOutcome::Propagated);
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.derating() > 0.0, "some strikes must propagate");
        assert!(r.derating() < 1.0, "some strikes must be masked");
    }

    #[test]
    fn buffered_path_always_propagates() {
        // A buffer chain has no logical masking and unit delays pass all
        // pulses >= 1.
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.buf(a);
        let y = b.buf(x);
        b.output("y", y);
        let net = b.finish();
        let camp = SetCampaign::new(&net);
        let r = camp.run(&net, 50, 2);
        assert_eq!(r.fraction(SetOutcome::Propagated), 1.0);
    }

    #[test]
    fn big_delays_mask_electrically() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.buf(a);
        let y = b.buf(x);
        let z = b.buf(y);
        b.output("z", z);
        let net = b.finish();
        // Last buffer has inertial delay 50, far above max pulse width 8.
        let mut delays = vec![1u64; net.len()];
        delays[z.index()] = 50;
        let camp = SetCampaign::new(&net).with_delays(&net, delays);
        let r = camp.run_on(&net, 50, 2, |g| g == x);
        assert_eq!(r.fraction(SetOutcome::ElectricallyMasked), 1.0);
    }

    #[test]
    fn sharded_set_campaign_matches_serial() {
        let net = generate::random_logic(8, 60, 3, 3);
        let camp = SetCampaign::new(&net);
        let serial = camp.run(&net, 200, 11);
        for workers in [2usize, 4] {
            let run = camp.run_campaign(&net, 200, 11, |_| true, &Campaign::new(0, workers));
            assert_eq!(run.report, serial, "workers = {workers}");
            assert_eq!(run.stats.injections, 200);
            assert_eq!(run.stats.tally.total(), 200);
            assert_eq!(
                run.stats.tally.failures,
                serial
                    .injections()
                    .iter()
                    .filter(|i| i.outcome == SetOutcome::Propagated)
                    .count()
            );
        }
    }

    #[test]
    fn per_gate_ranking_counts() {
        let c = generate::c17();
        let camp = SetCampaign::new(&c);
        let r = camp.run(&c, 200, 9);
        let per = r.per_gate();
        let total: usize = per.iter().map(|(_, s, _)| s).sum();
        assert_eq!(total, 200);
        for (_, struck, prop) in per {
            assert!(prop <= struck);
        }
    }
}
