//! Single-event-upset (SEU) campaigns on sequential designs.
//!
//! An SEU flips one flip-flop between two clock edges. The campaign runs
//! a golden and a faulty machine in lockstep and classifies each
//! injection:
//!
//! * **Masked** — outputs and state re-converge within the horizon;
//! * **Latent** — outputs match but state still differs at the horizon
//!   (a dormant error, ISO 26262's latent-fault concern);
//! * **Failure** — an output mismatch (silent data corruption when it is
//!   a data output).
//!
//! The per-flop failure fraction is the architectural vulnerability
//! factor used to weight raw upset rates into effective FIT.
//!
//! # Execution engine
//!
//! The default path is bit-parallel: the golden run is simulated **once**
//! into a [`GoldenTrace`], then injections targeting the same cycle are
//! packed one per lane of a [`LaneMachine`] word — 64 lanes on `u64`, up
//! to 512 on wide [`PackedWord`]s, selected per campaign with
//! [`SeuCampaign::with_lane_width`]. Every lane starts from the
//! snapshotted golden state with one flip-flop flipped, and all faulty
//! machines step together through the horizon, diffing against the
//! recorded golden outputs. Batches are sharded over a shared
//! [`Campaign`] driver, and the returned [`SeuRun`] carries a
//! [`CampaignStats`] record (throughput, lane occupancy, outcome tally).
//!
//! The scalar lockstep implementation is retained in [`mod@reference`] as the
//! equivalence oracle; property tests prove both paths produce identical
//! [`SeuReport`]s.

pub mod reference;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescue_campaign::{Campaign, CampaignStats};
use rescue_netlist::Netlist;
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::compiled_seq::{splat_inputs, GoldenTrace, LaneMachine};
use rescue_sim::wide::{PackedWord, SimWord, SUPPORTED_LANE_WIDTHS};
use rescue_telemetry::{metrics, span};

/// Outcome of one SEU injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeuOutcome {
    /// Fault effect vanished (state and outputs re-converged).
    Masked,
    /// Outputs clean but state differs at the observation horizon.
    Latent,
    /// At least one output cycle differed.
    Failure,
}

/// One SEU injection record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuInjection {
    /// Flip-flop index (into `netlist.dffs()`).
    pub dff: usize,
    /// Cycle at which the flip occurred.
    pub cycle: usize,
    /// Classification.
    pub outcome: SeuOutcome,
    /// Cycles from injection to first output mismatch (failures only).
    pub detection_latency: Option<usize>,
}

/// Aggregated SEU campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuReport {
    injections: Vec<SeuInjection>,
    dff_count: usize,
}

impl SeuReport {
    /// All records.
    pub fn injections(&self) -> &[SeuInjection] {
        &self.injections
    }

    /// Fraction with the given outcome.
    pub fn fraction(&self, outcome: SeuOutcome) -> f64 {
        if self.injections.is_empty() {
            return 0.0;
        }
        self.injections
            .iter()
            .filter(|i| i.outcome == outcome)
            .count() as f64
            / self.injections.len() as f64
    }

    /// Architectural vulnerability factor: failure fraction.
    pub fn avf(&self) -> f64 {
        self.fraction(SeuOutcome::Failure)
    }

    /// Per-flop `(injections, failures)` — the hardening priority list.
    pub fn per_dff(&self) -> Vec<(usize, usize)> {
        let mut v = vec![(0usize, 0usize); self.dff_count];
        for inj in &self.injections {
            v[inj.dff].0 += 1;
            if inj.outcome == SeuOutcome::Failure {
                v[inj.dff].1 += 1;
            }
        }
        v
    }

    /// Mean output-corruption latency over failures, in cycles.
    pub fn mean_failure_latency(&self) -> Option<f64> {
        let lats: Vec<usize> = self
            .injections
            .iter()
            .filter_map(|i| i.detection_latency)
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<usize>() as f64 / lats.len() as f64)
        }
    }
}

/// An SEU report plus the campaign observability record of the run that
/// produced it.
#[derive(Debug, Clone)]
pub struct SeuRun {
    /// The (deterministic) injection verdicts.
    pub report: SeuReport,
    /// Throughput, worker timing, lane occupancy and outcome tally.
    pub stats: CampaignStats,
}

/// SEU campaign runner.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_radiation::seu_analysis::SeuCampaign;
///
/// let lfsr = generate::lfsr(8, &[7, 5, 4, 3]);
/// let campaign = SeuCampaign::new(20, 10);
/// let report = campaign.run_exhaustive(&lfsr, &[]);
/// // An LFSR has no error correction: every upset corrupts the stream.
/// assert!(report.avf() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuCampaign {
    /// Cycles simulated before any injection can occur.
    pub warmup: usize,
    /// Cycles observed after the injection.
    pub horizon: usize,
    /// Machine-word width in 64-bit limbs: the engine packs
    /// `64 * lane_width` faulty machines per snapshot/step/diff walk.
    /// Must be one of [`SUPPORTED_LANE_WIDTHS`]; verdicts are identical
    /// for every width.
    pub lane_width: usize,
}

impl SeuCampaign {
    /// Creates a campaign configuration (64 lanes per word).
    pub fn new(warmup: usize, horizon: usize) -> Self {
        SeuCampaign {
            warmup,
            horizon,
            lane_width: 1,
        }
    }

    /// Selects a wide machine word of `lane_width` 64-bit limbs
    /// (`64 * lane_width` lock-stepped faulty machines per batch).
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width;
        self
    }

    /// Exhaustive campaign: every flip-flop, every injection cycle in
    /// `0..warmup`, constant `inputs` each cycle. Serial convenience
    /// wrapper over [`Self::run_exhaustive_on`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_exhaustive(&self, netlist: &Netlist, inputs: &[bool]) -> SeuReport {
        self.run_exhaustive_on(netlist, inputs, &Campaign::serial())
            .report
    }

    /// [`Self::run_exhaustive`] on the shared [`Campaign`] driver, with a
    /// [`CampaignStats`] record attached. Verdicts are identical for
    /// every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_exhaustive_on(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        campaign: &Campaign,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let cycles = self.warmup.max(1);
        let mut points = Vec::with_capacity(n_dff * cycles);
        for dff in 0..n_dff {
            for cycle in 0..cycles {
                points.push((dff, cycle));
            }
        }
        self.run_points(netlist, inputs, &points, campaign)
    }

    /// Random-sampled campaign of `count` injections (statistical FI).
    /// Serial convenience wrapper over [`Self::run_sampled_on`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_sampled(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
    ) -> SeuReport {
        self.run_sampled_on(netlist, inputs, count, seed, &Campaign::serial())
            .report
    }

    /// [`Self::run_sampled`] on the shared [`Campaign`] driver, with a
    /// [`CampaignStats`] record attached. The `(dff, cycle)` sample
    /// sequence is drawn serially from `seed` — identical to the scalar
    /// reference — before the injections are grouped by cycle, packed
    /// into lanes and sharded, so the report is byte-identical for every
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_sampled_on(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
        campaign: &Campaign,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<(usize, usize)> = (0..count)
            .map(|_| {
                let dff = rng.gen_range(0..n_dff);
                let cycle = rng.gen_range(0..self.warmup.max(1));
                (dff, cycle)
            })
            .collect();
        self.run_points(netlist, inputs, &points, campaign)
    }

    /// Injects one SEU at (`dff`, `cycle`) and classifies it, on the
    /// scalar lockstep path (see [`mod@reference`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or `dff` is out of range.
    pub fn inject(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        dff: usize,
        cycle: usize,
    ) -> SeuInjection {
        reference::inject_naive(self, netlist, inputs, dff, cycle)
    }

    /// Bit-parallel core: classifies every `(dff, cycle)` point of
    /// `points`, preserving order in the report. Dispatches the runtime
    /// [`Self::lane_width`] onto a concrete [`SimWord`] instantiation.
    fn run_points(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        points: &[(usize, usize)],
        campaign: &Campaign,
    ) -> SeuRun {
        match self.lane_width {
            1 => self.run_points_w::<u64>(netlist, inputs, points, campaign),
            2 => self.run_points_w::<PackedWord<2>>(netlist, inputs, points, campaign),
            4 => self.run_points_w::<PackedWord<4>>(netlist, inputs, points, campaign),
            8 => self.run_points_w::<PackedWord<8>>(netlist, inputs, points, campaign),
            w => panic!("unsupported lane width {w} (expected one of {SUPPORTED_LANE_WIDTHS:?})"),
        }
    }

    /// The width-generic engine behind [`Self::run_points`].
    fn run_points_w<Wd: SimWord>(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        points: &[(usize, usize)],
        campaign: &Campaign,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        let cycles = self.warmup.max(1);
        let _campaign_span = span!("seu.campaign", points = points.len());
        let compiled = CompiledNetlist::new(netlist);
        let trace = GoldenTrace::record(&compiled, inputs, cycles - 1 + self.horizon)
            .expect("input width checked by caller");
        let input_words = splat_inputs::<Wd>(inputs);

        // Group injections by cycle (all lanes of a word share the golden
        // snapshot) and pack up to `Wd::LANES` per batch.
        let mut by_cycle: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cycles];
        for (i, &(dff, cycle)) in points.iter().enumerate() {
            by_cycle[cycle].push((i, dff));
        }
        let mut batches: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for (cycle, list) in by_cycle.into_iter().enumerate() {
            for chunk in list.chunks(Wd::LANES) {
                batches.push((cycle, chunk.to_vec()));
            }
        }

        let run = campaign.run_ranges(
            &batches,
            |_| {
                // Metric handles are resolved once per worker (the
                // registry lookup takes a mutex) and only when telemetry
                // is on, so the disabled path carries no handle at all.
                // Bounds cover every supported width (64 * {1, 2, 4, 8})
                // so one histogram serves all lane widths.
                let occupancy = rescue_telemetry::enabled().then(|| {
                    metrics::histogram(
                        "seu.lane_occupancy",
                        &[8, 16, 24, 32, 40, 48, 56, 64, 128, 192, 256, 384, 512],
                    )
                });
                (LaneMachine::<Wd>::new(&compiled), occupancy)
            },
            |(machine, occupancy), _, range| {
                let out = range
                    .iter()
                    .map(|(cycle, lanes)| {
                        if let Some(h) = occupancy {
                            h.record(lanes.len() as u64);
                        }
                        self.run_batch(&compiled, &trace, &input_words, machine, *cycle, lanes)
                    })
                    .collect();
                // Shard-granularity flush: one registry touch per worker
                // range, never per batch or injection.
                let (restores, steps) = machine.take_counters();
                if rescue_telemetry::enabled() {
                    metrics::counter("sim.snapshot_restores").add(restores);
                    metrics::counter("sim.seq_steps").add(steps);
                    metrics::counter("seu.batches").add(range.len() as u64);
                }
                out
            },
        );
        if rescue_telemetry::enabled() {
            metrics::gauge("seu.lane_width").set(Wd::LANES as i64);
        }

        let mut stats = CampaignStats::from_run(points.len(), &run);
        let mut injections: Vec<Option<SeuInjection>> = vec![None; points.len()];
        for batch in &run.results {
            stats.record_lanes(batch.len() as u64, Wd::LANES as u64);
            for &(orig, inj) in batch {
                injections[orig] = Some(inj);
            }
        }
        let injections: Vec<SeuInjection> = injections
            .into_iter()
            .map(|o| o.expect("every injection point classified"))
            .collect();
        for inj in &injections {
            match inj.outcome {
                SeuOutcome::Masked => stats.tally.masked += 1,
                SeuOutcome::Latent => stats.tally.latent += 1,
                SeuOutcome::Failure => stats.tally.failures += 1,
            }
        }
        SeuRun {
            report: SeuReport {
                injections,
                dff_count: n_dff,
            },
            stats,
        }
    }

    /// Classifies up to `Wd::LANES` same-cycle injections in one word
    /// walk.
    fn run_batch<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        trace: &GoldenTrace,
        input_words: &[Wd],
        machine: &mut LaneMachine<Wd>,
        cycle: usize,
        lanes: &[(usize, usize)],
    ) -> Vec<(usize, SeuInjection)> {
        machine.load_broadcast(compiled, trace.snapshot(cycle));
        for (lane, &(_, dff)) in lanes.iter().enumerate() {
            machine.flip_lane(dff, lane);
        }
        let group = Wd::live_mask(lanes.len());
        let mut first: Vec<Option<usize>> = vec![None; lanes.len()];
        let mut failed = Wd::ZERO;
        for k in 0..self.horizon {
            machine
                .step(compiled, input_words)
                .expect("input width checked by caller");
            let fresh =
                machine.output_diff_mask(compiled, trace.outputs_at(cycle + k)) & group & !failed;
            failed |= fresh;
            fresh.for_each_lane(|lane| first[lane] = Some(k));
            if failed == group {
                break; // every lane already failed; latencies are fixed
            }
        }
        // State comparison matters only for lanes that never failed; when
        // the loop broke early there are none, so skip the (possibly
        // short) trace lookup.
        let latent = if failed == group {
            Wd::ZERO
        } else {
            machine.state_diff_mask(trace.snapshot(cycle + self.horizon)) & group
        };
        lanes
            .iter()
            .enumerate()
            .map(|(lane, &(orig, dff))| {
                let (outcome, detection_latency) = if failed.lane(lane) {
                    (SeuOutcome::Failure, first[lane])
                } else if latent.lane(lane) {
                    (SeuOutcome::Latent, None)
                } else {
                    (SeuOutcome::Masked, None)
                };
                (
                    orig,
                    SeuInjection {
                        dff,
                        cycle,
                        outcome,
                        detection_latency,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn lfsr_every_upset_fails() {
        let l = generate::lfsr(6, &[5, 3]);
        let c = SeuCampaign::new(8, 12);
        let r = c.run_exhaustive(&l, &[]);
        assert!(r.avf() > 0.9, "avf = {}", r.avf());
        assert!(r.mean_failure_latency().is_some());
    }

    #[test]
    fn unobserved_state_is_latent_or_masked() {
        // A counter whose outputs expose only bit 0: upsets in the top
        // bits never reach the output within a short horizon.
        let mut b = NetlistBuilder::new("hidden");
        let q: Vec<_> = (0..4).map(|_| b.dff_floating()).collect();
        let one = b.const1();
        let mut carry = one;
        for &qi in &q {
            let d = b.xor(qi, carry);
            let c2 = b.and(qi, carry);
            b.connect_dff(qi, d);
            carry = c2;
        }
        b.output("lsb", q[0]);
        let net = b.finish();
        let c = SeuCampaign::new(2, 3);
        let r = c.run_exhaustive(&net, &[]);
        // Upsets in bit 3 can't show on lsb within 3 cycles -> latent.
        assert!(r.fraction(SeuOutcome::Latent) > 0.0);
        let per = r.per_dff();
        assert_eq!(per.len(), 4);
        assert!(per[3].1 < per[0].1, "lsb upsets fail more than msb upsets");
    }

    #[test]
    fn shift_register_flush_masks() {
        // An upset in a shift register is flushed out; with the output
        // ignored (no output monitoring... it has sout) the upset reaches
        // sout and is a failure; after flushing, state re-converges.
        let s = generate::shift_register(4);
        let c = SeuCampaign::new(1, 10);
        let r = c.run_exhaustive(&s, &[false]);
        // Every upset eventually shifts to sout -> all failures.
        assert_eq!(r.avf(), 1.0);
        // Latency equals distance to the output register.
        let lat = r.mean_failure_latency().unwrap();
        assert!(lat > 0.0 && lat < 4.0);
    }

    #[test]
    fn sampled_matches_exhaustive_roughly() {
        let l = generate::lfsr(8, &[7, 5, 4, 3]);
        let c = SeuCampaign::new(10, 10);
        let ex = c.run_exhaustive(&l, &[]);
        let sa = c.run_sampled(&l, &[], 200, 77);
        assert!((ex.avf() - sa.avf()).abs() < 0.15);
    }

    #[test]
    fn deterministic_in_seed() {
        let l = generate::lfsr(5, &[4, 2]);
        let c = SeuCampaign::new(5, 5);
        assert_eq!(c.run_sampled(&l, &[], 50, 1), c.run_sampled(&l, &[], 50, 1));
    }

    #[test]
    fn stats_account_for_every_injection() {
        let l = generate::lfsr(9, &[8, 4]);
        let c = SeuCampaign::new(7, 9);
        let run = c.run_exhaustive_on(&l, &[], &Campaign::new(3, 4));
        let n = run.report.injections().len();
        assert_eq!(n, 9 * 7);
        assert_eq!(run.stats.injections, n);
        assert_eq!(run.stats.tally.total(), n);
        assert_eq!(
            run.stats.tally.failures,
            run.report
                .injections()
                .iter()
                .filter(|i| i.outcome == SeuOutcome::Failure)
                .count()
        );
        // 7 cycle groups of 9 lanes each: occupancy is 9/64 per word.
        assert!(run.stats.lane_occupancy() > 0.0 && run.stats.lane_occupancy() <= 1.0);
        assert!(run.stats.injections_per_sec() > 0.0);
    }

    #[test]
    fn engine_matches_reference_on_lfsr() {
        let l = generate::lfsr(10, &[9, 6]);
        let c = SeuCampaign::new(6, 8);
        assert_eq!(
            c.run_exhaustive(&l, &[]),
            reference::run_exhaustive(&c, &l, &[])
        );
        assert_eq!(
            c.run_sampled(&l, &[], 120, 5),
            reference::run_sampled(&c, &l, &[], 120, 5)
        );
    }
}
