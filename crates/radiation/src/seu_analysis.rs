//! Single-event-upset (SEU) campaigns on sequential designs.
//!
//! An SEU flips one flip-flop between two clock edges. The campaign runs
//! a golden and a faulty machine in lockstep and classifies each
//! injection:
//!
//! * **Masked** — outputs and state re-converge within the horizon;
//! * **Latent** — outputs match but state still differs at the horizon
//!   (a dormant error, ISO 26262's latent-fault concern);
//! * **Failure** — an output mismatch (silent data corruption when it is
//!   a data output).
//!
//! The per-flop failure fraction is the architectural vulnerability
//! factor used to weight raw upset rates into effective FIT.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescue_netlist::Netlist;
use rescue_sim::seq::SeqSimulator;

/// Outcome of one SEU injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeuOutcome {
    /// Fault effect vanished (state and outputs re-converged).
    Masked,
    /// Outputs clean but state differs at the observation horizon.
    Latent,
    /// At least one output cycle differed.
    Failure,
}

/// One SEU injection record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuInjection {
    /// Flip-flop index (into `netlist.dffs()`).
    pub dff: usize,
    /// Cycle at which the flip occurred.
    pub cycle: usize,
    /// Classification.
    pub outcome: SeuOutcome,
    /// Cycles from injection to first output mismatch (failures only).
    pub detection_latency: Option<usize>,
}

/// Aggregated SEU campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuReport {
    injections: Vec<SeuInjection>,
    dff_count: usize,
}

impl SeuReport {
    /// All records.
    pub fn injections(&self) -> &[SeuInjection] {
        &self.injections
    }

    /// Fraction with the given outcome.
    pub fn fraction(&self, outcome: SeuOutcome) -> f64 {
        if self.injections.is_empty() {
            return 0.0;
        }
        self.injections
            .iter()
            .filter(|i| i.outcome == outcome)
            .count() as f64
            / self.injections.len() as f64
    }

    /// Architectural vulnerability factor: failure fraction.
    pub fn avf(&self) -> f64 {
        self.fraction(SeuOutcome::Failure)
    }

    /// Per-flop `(injections, failures)` — the hardening priority list.
    pub fn per_dff(&self) -> Vec<(usize, usize)> {
        let mut v = vec![(0usize, 0usize); self.dff_count];
        for inj in &self.injections {
            v[inj.dff].0 += 1;
            if inj.outcome == SeuOutcome::Failure {
                v[inj.dff].1 += 1;
            }
        }
        v
    }

    /// Mean output-corruption latency over failures, in cycles.
    pub fn mean_failure_latency(&self) -> Option<f64> {
        let lats: Vec<usize> = self
            .injections
            .iter()
            .filter_map(|i| i.detection_latency)
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<usize>() as f64 / lats.len() as f64)
        }
    }
}

/// SEU campaign runner.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_radiation::seu_analysis::SeuCampaign;
///
/// let lfsr = generate::lfsr(8, &[7, 5, 4, 3]);
/// let campaign = SeuCampaign::new(20, 10);
/// let report = campaign.run_exhaustive(&lfsr, &[]);
/// // An LFSR has no error correction: every upset corrupts the stream.
/// assert!(report.avf() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuCampaign {
    /// Cycles simulated before any injection can occur.
    pub warmup: usize,
    /// Cycles observed after the injection.
    pub horizon: usize,
}

impl SeuCampaign {
    /// Creates a campaign configuration.
    pub fn new(warmup: usize, horizon: usize) -> Self {
        SeuCampaign { warmup, horizon }
    }

    /// Exhaustive campaign: every flip-flop, every injection cycle in
    /// `0..warmup`, constant `inputs` each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_exhaustive(&self, netlist: &Netlist, inputs: &[bool]) -> SeuReport {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let mut injections = Vec::new();
        for dff in 0..n_dff {
            for cycle in 0..self.warmup.max(1) {
                injections.push(self.inject(netlist, inputs, dff, cycle));
            }
        }
        SeuReport {
            injections,
            dff_count: n_dff,
        }
    }

    /// Random-sampled campaign of `count` injections (statistical FI).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_sampled(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
    ) -> SeuReport {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let mut rng = StdRng::seed_from_u64(seed);
        let injections = (0..count)
            .map(|_| {
                let dff = rng.gen_range(0..n_dff);
                let cycle = rng.gen_range(0..self.warmup.max(1));
                self.inject(netlist, inputs, dff, cycle)
            })
            .collect();
        SeuReport {
            injections,
            dff_count: n_dff,
        }
    }

    /// Injects one SEU at (`dff`, `cycle`) and classifies it.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or `dff` is out of range.
    pub fn inject(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        dff: usize,
        cycle: usize,
    ) -> SeuInjection {
        let mut golden = SeqSimulator::new(netlist);
        let mut faulty = SeqSimulator::new(netlist);
        for _ in 0..cycle {
            golden.step(netlist, inputs).expect("width checked");
            faulty.step(netlist, inputs).expect("width checked");
        }
        faulty.flip_state(dff);
        let mut first_mismatch = None;
        for k in 0..self.horizon {
            let go = golden.step(netlist, inputs).expect("width checked");
            let fo = faulty.step(netlist, inputs).expect("width checked");
            if go != fo && first_mismatch.is_none() {
                first_mismatch = Some(k);
            }
        }
        let outcome = if first_mismatch.is_some() {
            SeuOutcome::Failure
        } else if golden.state() != faulty.state() {
            SeuOutcome::Latent
        } else {
            SeuOutcome::Masked
        };
        SeuInjection {
            dff,
            cycle,
            outcome,
            detection_latency: first_mismatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn lfsr_every_upset_fails() {
        let l = generate::lfsr(6, &[5, 3]);
        let c = SeuCampaign::new(8, 12);
        let r = c.run_exhaustive(&l, &[]);
        assert!(r.avf() > 0.9, "avf = {}", r.avf());
        assert!(r.mean_failure_latency().is_some());
    }

    #[test]
    fn unobserved_state_is_latent_or_masked() {
        // A counter whose outputs expose only bit 0: upsets in the top
        // bits never reach the output within a short horizon.
        let mut b = NetlistBuilder::new("hidden");
        let q: Vec<_> = (0..4).map(|_| b.dff_floating()).collect();
        let one = b.const1();
        let mut carry = one;
        for &qi in &q {
            let d = b.xor(qi, carry);
            let c2 = b.and(qi, carry);
            b.connect_dff(qi, d);
            carry = c2;
        }
        b.output("lsb", q[0]);
        let net = b.finish();
        let c = SeuCampaign::new(2, 3);
        let r = c.run_exhaustive(&net, &[]);
        // Upsets in bit 3 can't show on lsb within 3 cycles -> latent.
        assert!(r.fraction(SeuOutcome::Latent) > 0.0);
        let per = r.per_dff();
        assert_eq!(per.len(), 4);
        assert!(per[3].1 < per[0].1, "lsb upsets fail more than msb upsets");
    }

    #[test]
    fn shift_register_flush_masks() {
        // An upset in a shift register is flushed out; with the output
        // ignored (no output monitoring... it has sout) the upset reaches
        // sout and is a failure; after flushing, state re-converges.
        let s = generate::shift_register(4);
        let c = SeuCampaign::new(1, 10);
        let r = c.run_exhaustive(&s, &[false]);
        // Every upset eventually shifts to sout -> all failures.
        assert_eq!(r.avf(), 1.0);
        // Latency equals distance to the output register.
        let lat = r.mean_failure_latency().unwrap();
        assert!(lat > 0.0 && lat < 4.0);
    }

    #[test]
    fn sampled_matches_exhaustive_roughly() {
        let l = generate::lfsr(8, &[7, 5, 4, 3]);
        let c = SeuCampaign::new(10, 10);
        let ex = c.run_exhaustive(&l, &[]);
        let sa = c.run_sampled(&l, &[], 200, 77);
        assert!((ex.avf() - sa.avf()).abs() < 0.15);
    }

    #[test]
    fn deterministic_in_seed() {
        let l = generate::lfsr(5, &[4, 2]);
        let c = SeuCampaign::new(5, 5);
        assert_eq!(c.run_sampled(&l, &[], 50, 1), c.run_sampled(&l, &[], 50, 1));
    }
}
