//! Single-event-upset (SEU) campaigns on sequential designs.
//!
//! An SEU flips one flip-flop between two clock edges. The campaign runs
//! a golden and a faulty machine in lockstep and classifies each
//! injection:
//!
//! * **Masked** — outputs and state re-converge within the horizon;
//! * **Latent** — outputs match but state still differs at the horizon
//!   (a dormant error, ISO 26262's latent-fault concern);
//! * **Failure** — an output mismatch (silent data corruption when it is
//!   a data output).
//!
//! The per-flop failure fraction is the architectural vulnerability
//! factor used to weight raw upset rates into effective FIT.
//!
//! # Execution engine
//!
//! The default path is bit-parallel: the golden run is simulated **once**
//! into a [`GoldenTrace`], then injections targeting the same cycle are
//! packed one per lane of a [`LaneMachine`] word — 64 lanes on `u64`, up
//! to 512 on wide [`PackedWord`]s, selected per campaign with
//! [`SeuCampaign::with_lane_width`]. Every lane starts from the
//! snapshotted golden state with one flip-flop flipped, and all faulty
//! machines step together through the horizon, diffing against the
//! recorded golden outputs. Batches are sharded over a shared
//! [`Campaign`] driver, and the returned [`SeuRun`] carries a
//! [`CampaignStats`] record (throughput, lane occupancy, outcome tally).
//!
//! The scalar lockstep implementation is retained in [`mod@reference`] as the
//! equivalence oracle; property tests prove both paths produce identical
//! [`SeuReport`]s.

pub mod reference;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescue_campaign::{
    Campaign, CampaignManifest, CampaignStats, CanonicalHasher, ResultStore, StatsDelta,
};
use rescue_netlist::Netlist;
use rescue_sim::compiled::CompiledNetlist;
use rescue_sim::compiled_seq::{splat_inputs, GoldenTrace, LaneMachine};
use rescue_sim::wide::{PackedWord, SimWord, SUPPORTED_LANE_WIDTHS};
use rescue_telemetry::{metrics, span};

/// Outcome of one SEU injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeuOutcome {
    /// Fault effect vanished (state and outputs re-converged).
    Masked,
    /// Outputs clean but state differs at the observation horizon.
    Latent,
    /// At least one output cycle differed.
    Failure,
}

/// One SEU injection record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuInjection {
    /// Flip-flop index (into `netlist.dffs()`).
    pub dff: usize,
    /// Cycle at which the flip occurred.
    pub cycle: usize,
    /// Classification.
    pub outcome: SeuOutcome,
    /// Cycles from injection to first output mismatch (failures only).
    pub detection_latency: Option<usize>,
}

/// Aggregated SEU campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeuReport {
    injections: Vec<SeuInjection>,
    dff_count: usize,
}

impl SeuReport {
    /// All records.
    pub fn injections(&self) -> &[SeuInjection] {
        &self.injections
    }

    /// Fraction with the given outcome.
    pub fn fraction(&self, outcome: SeuOutcome) -> f64 {
        if self.injections.is_empty() {
            return 0.0;
        }
        self.injections
            .iter()
            .filter(|i| i.outcome == outcome)
            .count() as f64
            / self.injections.len() as f64
    }

    /// Architectural vulnerability factor: failure fraction.
    pub fn avf(&self) -> f64 {
        self.fraction(SeuOutcome::Failure)
    }

    /// Per-flop `(injections, failures)` — the hardening priority list.
    pub fn per_dff(&self) -> Vec<(usize, usize)> {
        let mut v = vec![(0usize, 0usize); self.dff_count];
        for inj in &self.injections {
            v[inj.dff].0 += 1;
            if inj.outcome == SeuOutcome::Failure {
                v[inj.dff].1 += 1;
            }
        }
        v
    }

    /// Mean output-corruption latency over failures, in cycles.
    pub fn mean_failure_latency(&self) -> Option<f64> {
        let lats: Vec<usize> = self
            .injections
            .iter()
            .filter_map(|i| i.detection_latency)
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(lats.iter().sum::<usize>() as f64 / lats.len() as f64)
        }
    }
}

/// An SEU report plus the campaign observability record of the run that
/// produced it.
#[derive(Debug, Clone)]
pub struct SeuRun {
    /// The (deterministic) injection verdicts.
    pub report: SeuReport,
    /// Throughput, worker timing, lane occupancy and outcome tally.
    pub stats: CampaignStats,
}

/// SEU campaign runner.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_radiation::seu_analysis::SeuCampaign;
///
/// let lfsr = generate::lfsr(8, &[7, 5, 4, 3]);
/// let campaign = SeuCampaign::new(20, 10);
/// let report = campaign.run_exhaustive(&lfsr, &[]);
/// // An LFSR has no error correction: every upset corrupts the stream.
/// assert!(report.avf() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeuCampaign {
    /// Cycles simulated before any injection can occur.
    pub warmup: usize,
    /// Cycles observed after the injection.
    pub horizon: usize,
    /// Machine-word width in 64-bit limbs: the engine packs
    /// `64 * lane_width` faulty machines per snapshot/step/diff walk.
    /// Must be one of [`SUPPORTED_LANE_WIDTHS`]; verdicts are identical
    /// for every width.
    pub lane_width: usize,
}

impl SeuCampaign {
    /// Creates a campaign configuration (64 lanes per word).
    pub fn new(warmup: usize, horizon: usize) -> Self {
        SeuCampaign {
            warmup,
            horizon,
            lane_width: 1,
        }
    }

    /// Selects a wide machine word of `lane_width` 64-bit limbs
    /// (`64 * lane_width` lock-stepped faulty machines per batch).
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width;
        self
    }

    /// Exhaustive campaign: every flip-flop, every injection cycle in
    /// `0..warmup`, constant `inputs` each cycle. Serial convenience
    /// wrapper over [`Self::run_exhaustive_on`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_exhaustive(&self, netlist: &Netlist, inputs: &[bool]) -> SeuReport {
        self.run_exhaustive_on(netlist, inputs, &Campaign::serial())
            .report
    }

    /// [`Self::run_exhaustive`] on the shared [`Campaign`] driver, with a
    /// [`CampaignStats`] record attached. Verdicts are identical for
    /// every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_exhaustive_on(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        campaign: &Campaign,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let cycles = self.warmup.max(1);
        let mut points = Vec::with_capacity(n_dff * cycles);
        for dff in 0..n_dff {
            for cycle in 0..cycles {
                points.push((dff, cycle));
            }
        }
        self.run_points(netlist, inputs, &points, campaign)
    }

    /// Random-sampled campaign of `count` injections (statistical FI).
    /// Serial convenience wrapper over [`Self::run_sampled_on`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_sampled(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
    ) -> SeuReport {
        self.run_sampled_on(netlist, inputs, count, seed, &Campaign::serial())
            .report
    }

    /// [`Self::run_sampled`] on the shared [`Campaign`] driver, with a
    /// [`CampaignStats`] record attached. The `(dff, cycle)` sample
    /// sequence is drawn serially from `seed` — identical to the scalar
    /// reference — before the injections are grouped by cycle, packed
    /// into lanes and sharded, so the report is byte-identical for every
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or the design has no DFFs.
    pub fn run_sampled_on(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
        campaign: &Campaign,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<(usize, usize)> = (0..count)
            .map(|_| {
                let dff = rng.gen_range(0..n_dff);
                let cycle = rng.gen_range(0..self.warmup.max(1));
                (dff, cycle)
            })
            .collect();
        self.run_points(netlist, inputs, &points, campaign)
    }

    /// [`Self::run_sampled_on`] made durable: the point list becomes a
    /// deterministic plan of content-addressed units
    /// ([`Self::durable_plan`]) whose verdicts persist through `store`,
    /// and only missing units execute — killed runs resume, concurrent
    /// processes share one store via claims, and an identical
    /// re-submission executes zero units. The report is bit-identical to
    /// [`Self::run_sampled_on`] for every store state. The campaign key
    /// deliberately excludes [`SeuCampaign::lane_width`]: SEU verdicts
    /// are width-invariant, so a store warmed at one width answers
    /// campaigns at every other.
    ///
    /// `unit_points` is the unit grain in injection points (0 =
    /// [`DEFAULT_UNIT_POINTS`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width, the design has no DFFs,
    /// or a wedged peer holds claims past the wait limit.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sampled_durable(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
        campaign: &Campaign,
        store: &dyn ResultStore,
        unit_points: usize,
    ) -> SeuRun {
        let points = self.sample_points(netlist, count, seed);
        match self.lane_width {
            1 => self.durable_w::<u64>(netlist, inputs, &points, campaign, store, unit_points),
            2 => self.durable_w::<PackedWord<2>>(
                netlist,
                inputs,
                &points,
                campaign,
                store,
                unit_points,
            ),
            4 => self.durable_w::<PackedWord<4>>(
                netlist,
                inputs,
                &points,
                campaign,
                store,
                unit_points,
            ),
            8 => self.durable_w::<PackedWord<8>>(
                netlist,
                inputs,
                &points,
                campaign,
                store,
                unit_points,
            ),
            w => panic!("unsupported lane width {w} (expected one of {SUPPORTED_LANE_WIDTHS:?})"),
        }
    }

    /// The unit plan [`Self::run_sampled_durable`] executes for the same
    /// arguments (inspectable campaign evidence, and the way to check
    /// store completeness before running).
    pub fn durable_plan(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        count: usize,
        seed: u64,
        unit_points: usize,
    ) -> CampaignManifest {
        let points = self.sample_points(netlist, count, seed);
        self.manifest_for(&CompiledNetlist::new(netlist), inputs, &points, unit_points)
    }

    /// Draws the `(dff, cycle)` sample sequence serially from `seed` —
    /// identical to the scalar reference and to [`Self::run_sampled_on`].
    fn sample_points(&self, netlist: &Netlist, count: usize, seed: u64) -> Vec<(usize, usize)> {
        let n_dff = netlist.dffs().len();
        assert!(n_dff > 0, "SEU campaign needs flip-flops");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let dff = rng.gen_range(0..n_dff);
                let cycle = rng.gen_range(0..self.warmup.max(1));
                (dff, cycle)
            })
            .collect()
    }

    /// The durable-campaign key and unit partition. Keyed on the
    /// structural netlist, the input vector, the injection schedule and
    /// the observation window — not on lane width, workers, schedule or
    /// seed (the drawn points already encode the seed).
    fn manifest_for(
        &self,
        compiled: &CompiledNetlist,
        inputs: &[bool],
        points: &[(usize, usize)],
        unit_points: usize,
    ) -> CampaignManifest {
        let mut h = CanonicalHasher::new("rescue.seu.v1");
        h.write_u128(rescue_faults::content::hash_netlist(compiled).0);
        h.write_usize(inputs.len());
        for &b in inputs {
            h.write_bool(b);
        }
        h.write_usize(self.warmup);
        h.write_usize(self.horizon);
        h.write_usize(points.len());
        for &(dff, cycle) in points {
            h.write_usize(dff);
            h.write_usize(cycle);
        }
        let grain = if unit_points == 0 {
            DEFAULT_UNIT_POINTS
        } else {
            unit_points
        };
        CampaignManifest::build(h.finish(), points.len(), grain)
    }

    /// Width-generic body of [`Self::run_sampled_durable`].
    fn durable_w<Wd: SimWord>(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        points: &[(usize, usize)],
        campaign: &Campaign,
        store: &dyn ResultStore,
        unit_points: usize,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        let cycles = self.warmup.max(1);
        rescue_campaign::fleet::set_stage("seu.campaign_durable");
        let _campaign_span = span!("seu.campaign_durable", points = points.len());
        let compiled = CompiledNetlist::new(netlist);
        let trace = GoldenTrace::record(&compiled, inputs, cycles - 1 + self.horizon)
            .expect("input width checked by caller");
        let input_words = splat_inputs::<Wd>(inputs);
        let manifest = self.manifest_for(&compiled, inputs, points, unit_points);

        let run = campaign.run_store(
            points,
            &manifest,
            store,
            |_| LaneMachine::<Wd>::new(&compiled),
            |machine, _off, range: &[(usize, usize)]| {
                // Same cycle-grouped lane packing as the plain engine,
                // scoped to the unit: all lanes of a word share one
                // golden snapshot, and verdicts are lane-placement
                // independent, so the unit partition can't change them.
                let mut by_cycle: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cycles];
                for (i, &(dff, cycle)) in range.iter().enumerate() {
                    by_cycle[cycle].push((i, dff));
                }
                let mut out: Vec<Option<SeuInjection>> = vec![None; range.len()];
                for (cycle, list) in by_cycle.into_iter().enumerate() {
                    for chunk in list.chunks(Wd::LANES) {
                        for (i, inj) in
                            self.run_batch(&compiled, &trace, &input_words, machine, cycle, chunk)
                        {
                            out[i] = Some(inj);
                        }
                    }
                }
                let (restores, steps) = machine.take_counters();
                if rescue_telemetry::enabled() {
                    metrics::counter("sim.snapshot_restores").add(restores);
                    metrics::counter("sim.seq_steps").add(steps);
                }
                out.into_iter()
                    .map(|o| o.expect("every injection point classified"))
                    .collect()
            },
            encode_injections,
            decode_injections,
            seu_delta,
        );
        if rescue_telemetry::enabled() {
            metrics::gauge("seu.lane_width").set(Wd::LANES as i64);
        }

        let mut stats = CampaignStats {
            injections: points.len(),
            elapsed_ns: run.elapsed_ns,
            workers: run.worker_ns.len(),
            worker_ns: run.worker_ns.clone(),
            chunks_stolen: run.steals,
            faults_walked: points.len(),
            units_total: run.units_total,
            units_cached: run.units_cached + run.units_waited,
            units_executed: run.units_executed,
            ..CampaignStats::default()
        };
        // Lane occupancy recomputed from the plan, not from what this
        // process happened to execute — a resumed run reports the same
        // figures as an uninterrupted one.
        for unit in &manifest.units {
            let mut per_cycle = vec![0usize; cycles];
            for &(_, cycle) in &points[unit.range.clone()] {
                per_cycle[cycle] += 1;
            }
            for n in per_cycle {
                let mut left = n;
                while left > 0 {
                    let lanes = left.min(Wd::LANES);
                    stats.record_lanes(lanes as u64, Wd::LANES as u64);
                    left -= lanes;
                }
            }
        }
        for inj in &run.results {
            match inj.outcome {
                SeuOutcome::Masked => stats.tally.masked += 1,
                SeuOutcome::Latent => stats.tally.latent += 1,
                SeuOutcome::Failure => stats.tally.failures += 1,
            }
        }
        SeuRun {
            report: SeuReport {
                injections: run.results,
                dff_count: n_dff,
            },
            stats,
        }
    }

    /// Injects one SEU at (`dff`, `cycle`) and classifies it, on the
    /// scalar lockstep path (see [`mod@reference`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong width or `dff` is out of range.
    pub fn inject(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        dff: usize,
        cycle: usize,
    ) -> SeuInjection {
        reference::inject_naive(self, netlist, inputs, dff, cycle)
    }

    /// Bit-parallel core: classifies every `(dff, cycle)` point of
    /// `points`, preserving order in the report. Dispatches the runtime
    /// [`Self::lane_width`] onto a concrete [`SimWord`] instantiation.
    fn run_points(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        points: &[(usize, usize)],
        campaign: &Campaign,
    ) -> SeuRun {
        match self.lane_width {
            1 => self.run_points_w::<u64>(netlist, inputs, points, campaign),
            2 => self.run_points_w::<PackedWord<2>>(netlist, inputs, points, campaign),
            4 => self.run_points_w::<PackedWord<4>>(netlist, inputs, points, campaign),
            8 => self.run_points_w::<PackedWord<8>>(netlist, inputs, points, campaign),
            w => panic!("unsupported lane width {w} (expected one of {SUPPORTED_LANE_WIDTHS:?})"),
        }
    }

    /// The width-generic engine behind [`Self::run_points`].
    fn run_points_w<Wd: SimWord>(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        points: &[(usize, usize)],
        campaign: &Campaign,
    ) -> SeuRun {
        let n_dff = netlist.dffs().len();
        let cycles = self.warmup.max(1);
        let _campaign_span = span!("seu.campaign", points = points.len());
        let compiled = CompiledNetlist::new(netlist);
        let trace = GoldenTrace::record(&compiled, inputs, cycles - 1 + self.horizon)
            .expect("input width checked by caller");
        let input_words = splat_inputs::<Wd>(inputs);

        // Group injections by cycle (all lanes of a word share the golden
        // snapshot) and pack up to `Wd::LANES` per batch.
        let mut by_cycle: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cycles];
        for (i, &(dff, cycle)) in points.iter().enumerate() {
            by_cycle[cycle].push((i, dff));
        }
        let mut batches: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for (cycle, list) in by_cycle.into_iter().enumerate() {
            for chunk in list.chunks(Wd::LANES) {
                batches.push((cycle, chunk.to_vec()));
            }
        }

        let run = campaign.run_ranges(
            &batches,
            |_| {
                // Metric handles are resolved once per worker (the
                // registry lookup takes a mutex) and only when telemetry
                // is on, so the disabled path carries no handle at all.
                // Bounds cover every supported width (64 * {1, 2, 4, 8})
                // so one histogram serves all lane widths.
                let occupancy = rescue_telemetry::enabled().then(|| {
                    metrics::histogram(
                        "seu.lane_occupancy",
                        &[8, 16, 24, 32, 40, 48, 56, 64, 128, 192, 256, 384, 512],
                    )
                });
                (LaneMachine::<Wd>::new(&compiled), occupancy)
            },
            |(machine, occupancy), _, range| {
                let out = range
                    .iter()
                    .map(|(cycle, lanes)| {
                        if let Some(h) = occupancy {
                            h.record(lanes.len() as u64);
                        }
                        self.run_batch(&compiled, &trace, &input_words, machine, *cycle, lanes)
                    })
                    .collect();
                // Shard-granularity flush: one registry touch per worker
                // range, never per batch or injection.
                let (restores, steps) = machine.take_counters();
                if rescue_telemetry::enabled() {
                    metrics::counter("sim.snapshot_restores").add(restores);
                    metrics::counter("sim.seq_steps").add(steps);
                    metrics::counter("seu.batches").add(range.len() as u64);
                }
                out
            },
        );
        if rescue_telemetry::enabled() {
            metrics::gauge("seu.lane_width").set(Wd::LANES as i64);
        }

        let mut stats = CampaignStats::from_run(points.len(), &run);
        let mut injections: Vec<Option<SeuInjection>> = vec![None; points.len()];
        for batch in &run.results {
            stats.record_lanes(batch.len() as u64, Wd::LANES as u64);
            for &(orig, inj) in batch {
                injections[orig] = Some(inj);
            }
        }
        let injections: Vec<SeuInjection> = injections
            .into_iter()
            .map(|o| o.expect("every injection point classified"))
            .collect();
        for inj in &injections {
            match inj.outcome {
                SeuOutcome::Masked => stats.tally.masked += 1,
                SeuOutcome::Latent => stats.tally.latent += 1,
                SeuOutcome::Failure => stats.tally.failures += 1,
            }
        }
        SeuRun {
            report: SeuReport {
                injections,
                dff_count: n_dff,
            },
            stats,
        }
    }

    /// Classifies up to `Wd::LANES` same-cycle injections in one word
    /// walk.
    fn run_batch<Wd: SimWord>(
        &self,
        compiled: &CompiledNetlist,
        trace: &GoldenTrace,
        input_words: &[Wd],
        machine: &mut LaneMachine<Wd>,
        cycle: usize,
        lanes: &[(usize, usize)],
    ) -> Vec<(usize, SeuInjection)> {
        machine.load_broadcast(compiled, trace.snapshot(cycle));
        for (lane, &(_, dff)) in lanes.iter().enumerate() {
            machine.flip_lane(dff, lane);
        }
        let group = Wd::live_mask(lanes.len());
        let mut first: Vec<Option<usize>> = vec![None; lanes.len()];
        let mut failed = Wd::ZERO;
        for k in 0..self.horizon {
            machine
                .step(compiled, input_words)
                .expect("input width checked by caller");
            let fresh =
                machine.output_diff_mask(compiled, trace.outputs_at(cycle + k)) & group & !failed;
            failed |= fresh;
            fresh.for_each_lane(|lane| first[lane] = Some(k));
            if failed == group {
                break; // every lane already failed; latencies are fixed
            }
        }
        // State comparison matters only for lanes that never failed; when
        // the loop broke early there are none, so skip the (possibly
        // short) trace lookup.
        let latent = if failed == group {
            Wd::ZERO
        } else {
            machine.state_diff_mask(trace.snapshot(cycle + self.horizon)) & group
        };
        lanes
            .iter()
            .enumerate()
            .map(|(lane, &(orig, dff))| {
                let (outcome, detection_latency) = if failed.lane(lane) {
                    (SeuOutcome::Failure, first[lane])
                } else if latent.lane(lane) {
                    (SeuOutcome::Latent, None)
                } else {
                    (SeuOutcome::Masked, None)
                };
                (
                    orig,
                    SeuInjection {
                        dff,
                        cycle,
                        outcome,
                        detection_latency,
                    },
                )
            })
            .collect()
    }
}

/// Default durable-campaign unit grain, in injection points per unit.
pub const DEFAULT_UNIT_POINTS: usize = 256;

/// Persisted payload of one durable SEU unit: a `u64` count followed by
/// 25 bytes per injection — `dff` and `cycle` as little-endian `u64`, a
/// one-byte outcome code, and the detection latency as `u64` with
/// `u64::MAX` standing in for "none".
fn encode_injections(rs: &[SeuInjection]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rs.len() * 25);
    out.extend_from_slice(&(rs.len() as u64).to_le_bytes());
    for r in rs {
        out.extend_from_slice(&(r.dff as u64).to_le_bytes());
        out.extend_from_slice(&(r.cycle as u64).to_le_bytes());
        out.push(match r.outcome {
            SeuOutcome::Masked => 0,
            SeuOutcome::Latent => 1,
            SeuOutcome::Failure => 2,
        });
        out.extend_from_slice(
            &r.detection_latency
                .map_or(u64::MAX, |l| l as u64)
                .to_le_bytes(),
        );
    }
    out
}

/// Inverse of [`encode_injections`]; `None` marks the payload corrupt
/// (truncated, miscounted, or an unknown outcome code), forcing
/// re-execution of the unit.
fn decode_injections(bytes: &[u8]) -> Option<Vec<SeuInjection>> {
    if bytes.len() < 8 {
        return None;
    }
    let (head, body) = bytes.split_at(8);
    let n = u64::from_le_bytes(head.try_into().unwrap()) as usize;
    if body.len() != n.checked_mul(25)? {
        return None;
    }
    body.chunks_exact(25)
        .map(|rec| {
            let dff = u64::from_le_bytes(rec[0..8].try_into().unwrap()) as usize;
            let cycle = u64::from_le_bytes(rec[8..16].try_into().unwrap()) as usize;
            let outcome = match rec[16] {
                0 => SeuOutcome::Masked,
                1 => SeuOutcome::Latent,
                2 => SeuOutcome::Failure,
                _ => return None,
            };
            let lat = u64::from_le_bytes(rec[17..25].try_into().unwrap());
            Some(SeuInjection {
                dff,
                cycle,
                outcome,
                detection_latency: (lat != u64::MAX).then_some(lat as usize),
            })
        })
        .collect()
}

/// Deterministic stats contribution of one durable SEU unit.
fn seu_delta(rs: &[SeuInjection]) -> StatsDelta {
    let mut d = StatsDelta {
        injections: rs.len() as u64,
        ..StatsDelta::default()
    };
    for r in rs {
        match r.outcome {
            SeuOutcome::Masked => d.masked += 1,
            SeuOutcome::Latent => d.latent += 1,
            SeuOutcome::Failure => d.failures += 1,
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_campaign::MemStore;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn lfsr_every_upset_fails() {
        let l = generate::lfsr(6, &[5, 3]);
        let c = SeuCampaign::new(8, 12);
        let r = c.run_exhaustive(&l, &[]);
        assert!(r.avf() > 0.9, "avf = {}", r.avf());
        assert!(r.mean_failure_latency().is_some());
    }

    #[test]
    fn unobserved_state_is_latent_or_masked() {
        // A counter whose outputs expose only bit 0: upsets in the top
        // bits never reach the output within a short horizon.
        let mut b = NetlistBuilder::new("hidden");
        let q: Vec<_> = (0..4).map(|_| b.dff_floating()).collect();
        let one = b.const1();
        let mut carry = one;
        for &qi in &q {
            let d = b.xor(qi, carry);
            let c2 = b.and(qi, carry);
            b.connect_dff(qi, d);
            carry = c2;
        }
        b.output("lsb", q[0]);
        let net = b.finish();
        let c = SeuCampaign::new(2, 3);
        let r = c.run_exhaustive(&net, &[]);
        // Upsets in bit 3 can't show on lsb within 3 cycles -> latent.
        assert!(r.fraction(SeuOutcome::Latent) > 0.0);
        let per = r.per_dff();
        assert_eq!(per.len(), 4);
        assert!(per[3].1 < per[0].1, "lsb upsets fail more than msb upsets");
    }

    #[test]
    fn shift_register_flush_masks() {
        // An upset in a shift register is flushed out; with the output
        // ignored (no output monitoring... it has sout) the upset reaches
        // sout and is a failure; after flushing, state re-converges.
        let s = generate::shift_register(4);
        let c = SeuCampaign::new(1, 10);
        let r = c.run_exhaustive(&s, &[false]);
        // Every upset eventually shifts to sout -> all failures.
        assert_eq!(r.avf(), 1.0);
        // Latency equals distance to the output register.
        let lat = r.mean_failure_latency().unwrap();
        assert!(lat > 0.0 && lat < 4.0);
    }

    #[test]
    fn sampled_matches_exhaustive_roughly() {
        let l = generate::lfsr(8, &[7, 5, 4, 3]);
        let c = SeuCampaign::new(10, 10);
        let ex = c.run_exhaustive(&l, &[]);
        let sa = c.run_sampled(&l, &[], 200, 77);
        assert!((ex.avf() - sa.avf()).abs() < 0.15);
    }

    #[test]
    fn deterministic_in_seed() {
        let l = generate::lfsr(5, &[4, 2]);
        let c = SeuCampaign::new(5, 5);
        assert_eq!(c.run_sampled(&l, &[], 50, 1), c.run_sampled(&l, &[], 50, 1));
    }

    #[test]
    fn stats_account_for_every_injection() {
        let l = generate::lfsr(9, &[8, 4]);
        let c = SeuCampaign::new(7, 9);
        let run = c.run_exhaustive_on(&l, &[], &Campaign::new(3, 4));
        let n = run.report.injections().len();
        assert_eq!(n, 9 * 7);
        assert_eq!(run.stats.injections, n);
        assert_eq!(run.stats.tally.total(), n);
        assert_eq!(
            run.stats.tally.failures,
            run.report
                .injections()
                .iter()
                .filter(|i| i.outcome == SeuOutcome::Failure)
                .count()
        );
        // 7 cycle groups of 9 lanes each: occupancy is 9/64 per word.
        assert!(run.stats.lane_occupancy() > 0.0 && run.stats.lane_occupancy() <= 1.0);
        assert!(run.stats.injections_per_sec() > 0.0);
    }

    #[test]
    fn durable_matches_plain_and_warm_run_executes_nothing() {
        let l = generate::lfsr(8, &[7, 5, 4, 3]);
        let c = SeuCampaign::new(10, 10);
        let driver = Campaign::new(0, 2);
        let plain = c.run_sampled_on(&l, &[], 150, 9, &driver);
        let store = MemStore::new();
        let cold = c.run_sampled_durable(&l, &[], 150, 9, &driver, &store, 32);
        assert_eq!(cold.report, plain.report, "verdicts bit-identical");
        assert_eq!(cold.stats.units_total, 5);
        assert_eq!(cold.stats.units_executed, 5);
        assert_eq!(cold.stats.tally, plain.stats.tally);
        let warm = c.run_sampled_durable(&l, &[], 150, 9, &driver, &store, 32);
        assert_eq!(warm.report, plain.report);
        assert_eq!(warm.stats.units_executed, 0, "fully answered from store");
        assert_eq!(warm.stats.units_cached, 5);
        assert_eq!(warm.stats.tally, cold.stats.tally);
        assert_eq!(
            warm.stats.lane_occupancy(),
            cold.stats.lane_occupancy(),
            "occupancy recomputed from the plan, not from execution"
        );
    }

    #[test]
    fn durable_resumes_partial_store_bit_identically() {
        let l = generate::lfsr(7, &[6, 4]);
        let c = SeuCampaign::new(6, 8);
        let driver = Campaign::new(0, 3);
        let full = MemStore::new();
        let baseline = c.run_sampled_durable(&l, &[], 100, 3, &driver, &full, 16);
        // Keep only some units (a killed run's store), resume from it.
        let manifest = c.durable_plan(&l, &[], 100, 3, 16);
        let partial = MemStore::new();
        for ui in [0usize, 3, 5] {
            let id = manifest.units[ui].id;
            partial.put(id, &full.get(id).unwrap());
        }
        let resumed = c.run_sampled_durable(&l, &[], 100, 3, &driver, &partial, 16);
        assert_eq!(resumed.report, baseline.report, "verdicts bit-identical");
        assert_eq!(resumed.stats.units_cached, 3);
        assert_eq!(
            resumed.stats.units_executed,
            manifest.units.len() - 3,
            "only the missing units re-ran"
        );
        assert_eq!(resumed.stats.tally, baseline.stats.tally);
    }

    #[test]
    fn store_is_shared_across_lane_widths() {
        // SEU verdicts are width-invariant, so the campaign key excludes
        // lane width: a store warmed at W=1 must fully answer a W=4
        // campaign (and produce the same report).
        let l = generate::lfsr(6, &[5, 3]);
        let store = MemStore::new();
        let driver = Campaign::serial();
        let narrow = SeuCampaign::new(5, 6);
        let cold = narrow.run_sampled_durable(&l, &[], 80, 11, &driver, &store, 16);
        let wide = SeuCampaign::new(5, 6).with_lane_width(4);
        let warm = wide.run_sampled_durable(&l, &[], 80, 11, &driver, &store, 16);
        assert_eq!(warm.stats.units_executed, 0, "W=1 store answers W=4");
        assert_eq!(warm.report, cold.report);
    }

    #[test]
    fn engine_matches_reference_on_lfsr() {
        let l = generate::lfsr(10, &[9, 6]);
        let c = SeuCampaign::new(6, 8);
        assert_eq!(
            c.run_exhaustive(&l, &[]),
            reference::run_exhaustive(&c, &l, &[])
        );
        assert_eq!(
            c.run_sampled(&l, &[], 120, 5),
            reference::run_sampled(&c, &l, &[], 120, 5)
        );
    }
}
