//! Scalar reference SEU engine — the equivalence oracle for the
//! bit-parallel path.
//!
//! Two implementations live here:
//!
//! * [`inject_naive`] re-simulates the full warmup prefix for every
//!   injection with a golden/faulty [`SeqSimulator`] pair — the original,
//!   obviously-correct lockstep semantics;
//! * [`run_exhaustive`] / [`run_sampled`] record the golden run **once**
//!   and replay each injection from the snapshotted state, diffing
//!   against the recorded golden outputs. Same verdicts, one golden
//!   simulation instead of one per injection.
//!
//! A regression test pins snapshot-replay ≡ naive; the property tests in
//! `tests/seu_equivalence.rs` pin the bit-parallel engine ≡ this module.

use super::{SeuCampaign, SeuInjection, SeuOutcome, SeuReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescue_netlist::Netlist;
use rescue_sim::seq::SeqSimulator;

/// Golden run recorded once with the scalar simulator: `snapshots[c]` is
/// the state after `c` steps, `outputs[c]` the primary-output vector
/// produced during cycle `c`.
struct ScalarTrace {
    snapshots: Vec<Vec<bool>>,
    outputs: Vec<Vec<bool>>,
}

fn record(netlist: &Netlist, inputs: &[bool], cycles: usize) -> ScalarTrace {
    let mut sim = SeqSimulator::new(netlist);
    let mut snapshots = vec![sim.state().to_vec()];
    let mut outputs = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        outputs.push(sim.step(netlist, inputs).expect("width checked by caller"));
        snapshots.push(sim.state().to_vec());
    }
    ScalarTrace { snapshots, outputs }
}

fn inject_from(
    campaign: &SeuCampaign,
    netlist: &Netlist,
    trace: &ScalarTrace,
    inputs: &[bool],
    dff: usize,
    cycle: usize,
) -> SeuInjection {
    let mut faulty = SeqSimulator::new(netlist);
    faulty
        .load_state(&trace.snapshots[cycle])
        .expect("snapshot width matches");
    faulty.flip_state(dff);
    let mut first_mismatch = None;
    for k in 0..campaign.horizon {
        let fo = faulty.step(netlist, inputs).expect("width checked");
        if fo != trace.outputs[cycle + k] && first_mismatch.is_none() {
            first_mismatch = Some(k);
        }
    }
    let outcome = if first_mismatch.is_some() {
        SeuOutcome::Failure
    } else if faulty.state() != &trace.snapshots[cycle + campaign.horizon][..] {
        SeuOutcome::Latent
    } else {
        SeuOutcome::Masked
    };
    SeuInjection {
        dff,
        cycle,
        outcome,
        detection_latency: first_mismatch,
    }
}

/// Scalar exhaustive campaign: every flip-flop, every injection cycle in
/// `0..warmup`, replayed from one recorded golden trace.
///
/// # Panics
///
/// Panics if `inputs` has the wrong width or the design has no DFFs.
pub fn run_exhaustive(campaign: &SeuCampaign, netlist: &Netlist, inputs: &[bool]) -> SeuReport {
    let n_dff = netlist.dffs().len();
    assert!(n_dff > 0, "SEU campaign needs flip-flops");
    let cycles = campaign.warmup.max(1);
    let trace = record(netlist, inputs, cycles - 1 + campaign.horizon);
    let mut injections = Vec::with_capacity(n_dff * cycles);
    for dff in 0..n_dff {
        for cycle in 0..cycles {
            injections.push(inject_from(campaign, netlist, &trace, inputs, dff, cycle));
        }
    }
    SeuReport {
        injections,
        dff_count: n_dff,
    }
}

/// Scalar random-sampled campaign of `count` injections; the sample
/// sequence is identical to [`SeuCampaign::run_sampled`].
///
/// # Panics
///
/// Panics if `inputs` has the wrong width or the design has no DFFs.
pub fn run_sampled(
    campaign: &SeuCampaign,
    netlist: &Netlist,
    inputs: &[bool],
    count: usize,
    seed: u64,
) -> SeuReport {
    let n_dff = netlist.dffs().len();
    assert!(n_dff > 0, "SEU campaign needs flip-flops");
    let cycles = campaign.warmup.max(1);
    let trace = record(netlist, inputs, cycles - 1 + campaign.horizon);
    let mut rng = StdRng::seed_from_u64(seed);
    let injections = (0..count)
        .map(|_| {
            let dff = rng.gen_range(0..n_dff);
            let cycle = rng.gen_range(0..cycles);
            inject_from(campaign, netlist, &trace, inputs, dff, cycle)
        })
        .collect();
    SeuReport {
        injections,
        dff_count: n_dff,
    }
}

/// The original per-injection path: golden and faulty simulators both
/// step through the warmup prefix from reset, then run the horizon in
/// lockstep. Kept as ground truth for the snapshot-replay optimization.
///
/// # Panics
///
/// Panics if `inputs` has the wrong width or `dff` is out of range.
pub fn inject_naive(
    campaign: &SeuCampaign,
    netlist: &Netlist,
    inputs: &[bool],
    dff: usize,
    cycle: usize,
) -> SeuInjection {
    let mut golden = SeqSimulator::new(netlist);
    let mut faulty = SeqSimulator::new(netlist);
    for _ in 0..cycle {
        golden.step(netlist, inputs).expect("width checked");
        faulty.step(netlist, inputs).expect("width checked");
    }
    faulty.flip_state(dff);
    let mut first_mismatch = None;
    for k in 0..campaign.horizon {
        let go = golden.step(netlist, inputs).expect("width checked");
        let fo = faulty.step(netlist, inputs).expect("width checked");
        if go != fo && first_mismatch.is_none() {
            first_mismatch = Some(k);
        }
    }
    let outcome = if first_mismatch.is_some() {
        SeuOutcome::Failure
    } else if golden.state() != faulty.state() {
        SeuOutcome::Latent
    } else {
        SeuOutcome::Masked
    };
    SeuInjection {
        dff,
        cycle,
        outcome,
        detection_latency: first_mismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    /// S2 regression: snapshot-replay exhaustive produces exactly the
    /// verdicts of the original full-warmup-per-injection loop.
    #[test]
    fn snapshot_replay_equals_naive_exhaustive() {
        for (net, inputs) in [
            (generate::lfsr(7, &[6, 3]), vec![]),
            (generate::shift_register(5), vec![true]),
        ] {
            let campaign = SeuCampaign::new(6, 7);
            let fast = run_exhaustive(&campaign, &net, &inputs);
            let n_dff = net.dffs().len();
            let mut naive = Vec::new();
            for dff in 0..n_dff {
                for cycle in 0..campaign.warmup.max(1) {
                    naive.push(inject_naive(&campaign, &net, &inputs, dff, cycle));
                }
            }
            assert_eq!(fast.injections(), &naive[..]);
        }
    }

    #[test]
    fn zero_horizon_is_always_latent() {
        let net = generate::lfsr(5, &[4, 2]);
        let campaign = SeuCampaign::new(3, 0);
        let r = run_exhaustive(&campaign, &net, &[]);
        assert_eq!(r.fraction(SeuOutcome::Latent), 1.0);
    }
}
