//! Radiation monitors: the SRAM-based SEU monitor \[38\] and the
//! pulse-stretching inverter-chain particle detector \[39\].
//!
//! Both are RESCUE's "use what is already on the chip" sensing ideas
//! (paper Section III.C): spare SRAM doubles as a radiation dosimeter
//! when scrubbed with a known pattern, and a chain of skewed inverters
//! stretches particle-induced pulses until they are wide enough to latch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An SRAM block repurposed as an SEU monitor: filled with a checkerboard
/// pattern and scrubbed every `scrub_period` time units; every scrub
/// counts and corrects the flipped bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramSeuMonitor {
    bits: usize,
    scrub_period: u64,
}

/// Result of simulating a monitor exposure window.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReading {
    /// Upsets the monitor counted.
    pub detected: usize,
    /// Upsets that physically occurred.
    pub actual: usize,
    /// Upsets lost to double-flips of the same bit within one scrub
    /// period (the monitor's only blind spot).
    pub missed: usize,
}

impl MonitorReading {
    /// Detection efficiency (1.0 when nothing was missed).
    pub fn efficiency(&self) -> f64 {
        if self.actual == 0 {
            return 1.0;
        }
        self.detected as f64 / self.actual as f64
    }

    /// Estimated flux in upsets per bit per time unit.
    pub fn estimated_flux(&self, bits: usize, duration: u64) -> f64 {
        if bits == 0 || duration == 0 {
            return 0.0;
        }
        self.detected as f64 / bits as f64 / duration as f64
    }
}

impl SramSeuMonitor {
    /// Creates a monitor over `bits` memory bits scrubbed every
    /// `scrub_period` time units.
    ///
    /// # Panics
    ///
    /// Panics when `bits == 0` or `scrub_period == 0`.
    pub fn new(bits: usize, scrub_period: u64) -> Self {
        assert!(bits > 0 && scrub_period > 0, "non-trivial monitor");
        SramSeuMonitor { bits, scrub_period }
    }

    /// Monitored bit count.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Scrub interval.
    pub fn scrub_period(&self) -> u64 {
        self.scrub_period
    }

    /// Simulates an exposure of `duration` time units under a Poisson
    /// upset process with `flux` upsets/bit/time-unit.
    ///
    /// Each bit accumulates `k ~ Poisson(flux · scrub_period)` flips per
    /// scrub period; an odd `k` is counted (and corrected) at scrub
    /// time, an even `k` cancels invisibly. The bit×period population is
    /// sampled in aggregate (exact small-count sampling, normal
    /// approximation for large means) so year-long exposures of megabit
    /// monitors stay O(1) instead of O(bits × periods).
    ///
    /// Deterministic in `seed`.
    pub fn expose(&self, flux: f64, duration: u64, seed: u64) -> MonitorReading {
        assert!(flux >= 0.0, "flux must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let periods = duration.div_ceil(self.scrub_period);
        let lambda = flux * self.scrub_period as f64;
        let cells = self.bits as f64 * periods as f64; // bit-period slots
        let mean_events = cells * lambda;
        if mean_events <= 0.0 {
            return MonitorReading {
                detected: 0,
                actual: 0,
                missed: 0,
            };
        }
        // P(odd flip count in one slot) = (1 - e^{-2λ}) / 2.
        let p_odd = (1.0 - (-2.0 * lambda).exp()) / 2.0;
        let mean_detected = cells * p_odd;
        let actual = sample_count(&mut rng, mean_events);
        let detected = sample_count(&mut rng, mean_detected).min(actual);
        MonitorReading {
            detected,
            actual,
            missed: actual - detected,
        }
    }
}

/// Draws a Poisson-distributed count: exact (Knuth) for small means,
/// normal approximation beyond.
fn sample_count<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        0
    } else if mean < 30.0 {
        poisson(rng, mean)
    } else {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + mean.sqrt() * g).round().max(0.0) as usize
    }
}

fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    // Knuth's algorithm; fine for the small lambdas monitors see.
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological lambda
        }
    }
}

/// A pulse-stretching inverter chain particle detector \[39\]: each
/// skewed inverter stage stretches an incoming pulse by
/// `stretch_per_stage`; the stretched pulse is detected when it exceeds
/// `latch_threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseStretchDetector {
    stages: usize,
    stretch_per_stage: f64,
    latch_threshold: f64,
}

impl PulseStretchDetector {
    /// Creates a detector chain.
    ///
    /// # Panics
    ///
    /// Panics when `stages == 0`, or thresholds are non-positive.
    pub fn new(stages: usize, stretch_per_stage: f64, latch_threshold: f64) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(stretch_per_stage >= 0.0 && latch_threshold > 0.0);
        PulseStretchDetector {
            stages,
            stretch_per_stage,
            latch_threshold,
        }
    }

    /// Output pulse width for an input pulse of `width`.
    pub fn stretched(&self, width: f64) -> f64 {
        if width <= 0.0 {
            return 0.0;
        }
        width + self.stages as f64 * self.stretch_per_stage
    }

    /// Does a pulse of `width` get latched?
    pub fn detects(&self, width: f64) -> bool {
        width > 0.0 && self.stretched(width) >= self.latch_threshold
    }

    /// Minimum detectable input pulse width.
    pub fn threshold_width(&self) -> f64 {
        (self.latch_threshold - self.stages as f64 * self.stretch_per_stage).max(f64::MIN_POSITIVE)
    }

    /// Detection efficiency over a pulse-width population uniform in
    /// `[w_min, w_max]` (`strikes` Monte-Carlo samples).
    pub fn efficiency(&self, strikes: usize, w_min: f64, w_max: f64, seed: u64) -> f64 {
        assert!(w_min <= w_max && w_min >= 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let hits = (0..strikes)
            .filter(|_| self.detects(rng.gen_range(w_min..=w_max)))
            .count();
        hits as f64 / strikes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_counts_scale_with_flux() {
        let m = SramSeuMonitor::new(4096, 100);
        let low = m.expose(1e-6, 10_000, 1);
        let high = m.expose(1e-4, 10_000, 1);
        assert!(high.detected > low.detected);
        assert!(high.efficiency() <= 1.0);
        assert_eq!(m.bits(), 4096);
        assert_eq!(m.scrub_period(), 100);
    }

    #[test]
    fn faster_scrubbing_misses_fewer_double_flips() {
        let flux = 5e-4;
        let slow = SramSeuMonitor::new(2048, 2000).expose(flux, 20_000, 3);
        let fast = SramSeuMonitor::new(2048, 100).expose(flux, 20_000, 3);
        assert!(
            fast.efficiency() >= slow.efficiency(),
            "fast {} vs slow {}",
            fast.efficiency(),
            slow.efficiency()
        );
    }

    #[test]
    fn flux_estimate_tracks_truth() {
        let flux = 2e-5;
        let m = SramSeuMonitor::new(65_536, 50);
        let r = m.expose(flux, 5_000, 7);
        let est = r.estimated_flux(65_536, 5_000);
        assert!((est - flux).abs() / flux < 0.2, "est {est} vs {flux}");
    }

    #[test]
    fn zero_flux_reads_zero() {
        let m = SramSeuMonitor::new(128, 10);
        let r = m.expose(0.0, 1000, 9);
        assert_eq!(r.detected, 0);
        assert_eq!(r.actual, 0);
        assert_eq!(r.efficiency(), 1.0);
        assert_eq!(r.estimated_flux(128, 1000), 0.0);
    }

    #[test]
    fn stretcher_extends_narrow_pulses() {
        let d = PulseStretchDetector::new(8, 0.25, 3.0);
        assert_eq!(d.stretched(1.0), 3.0);
        assert!(d.detects(1.0));
        assert!(!d.detects(0.5));
        assert!(!d.detects(0.0));
        assert!((d.threshold_width() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_stages_better_efficiency() {
        let short = PulseStretchDetector::new(2, 0.25, 3.0);
        let long = PulseStretchDetector::new(12, 0.25, 3.0);
        let e_short = short.efficiency(5000, 0.1, 2.0, 5);
        let e_long = long.efficiency(5000, 0.1, 2.0, 5);
        assert!(e_long > e_short, "{e_long} > {e_short}");
        assert_eq!(long.efficiency(5000, 5.0, 9.0, 5), 1.0);
    }
}
