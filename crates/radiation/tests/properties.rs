//! Property-based tests for the radiation analyses.

use proptest::prelude::*;
use rescue_netlist::generate;
use rescue_radiation::cdn::ClockTree;
use rescue_radiation::fit::{chip_ser, Fit, SerBudget, SerContribution};
use rescue_radiation::set_analysis::{latch_probability, SetCampaign, SetOutcome};
use rescue_radiation::seu_analysis::{SeuCampaign, SeuOutcome};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIT arithmetic: sums are order-independent and derating never
    /// increases a rate.
    #[test]
    fn fit_algebra(rates in proptest::collection::vec(0.0f64..1000.0, 1..10), d in 0.0f64..1.0) {
        let total: Fit = rates.iter().map(|&r| Fit::new(r)).sum();
        let mut rev = rates.clone();
        rev.reverse();
        let total_rev: Fit = rev.iter().map(|&r| Fit::new(r)).sum();
        prop_assert!((total.value() - total_rev.value()).abs() < 1e-9);
        for &r in &rates {
            prop_assert!(Fit::new(r).derated(d).value() <= r + 1e-12);
        }
        let contributions: Vec<SerContribution> = rates
            .iter()
            .map(|&r| SerContribution {
                name: "x".into(),
                raw: Fit::new(r),
                derating: d,
            })
            .collect();
        prop_assert!((chip_ser(&contributions).value() - total.value() * d).abs() < 1e-6);
    }

    /// ASIL budgets: a rate that meets D meets every lower level too.
    #[test]
    fn asil_ordering(rate in 0.0f64..200.0) {
        let f = Fit::new(rate);
        if SerBudget::asil_d().is_met(f) {
            prop_assert!(SerBudget::asil_c().is_met(f));
            prop_assert!(SerBudget::asil_b().is_met(f));
        }
    }

    /// Latch probability is monotone in width and window and bounded.
    #[test]
    fn latch_probability_monotone(w in 0u64..50, win in 0u64..20, period in 1u64..100) {
        let p = latch_probability(w, win, period);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(latch_probability(w + 1, win, period) >= p);
        prop_assert!(latch_probability(w, win + 1, period) >= p);
    }

    /// SET campaign outcomes always partition to 1 and deterministic
    /// campaigns reproduce.
    #[test]
    fn set_campaign_partition(seed in 1u64..100) {
        let net = generate::random_logic(6, 30, 2, seed);
        let camp = SetCampaign::new(&net);
        let r = camp.run(&net, 120, seed);
        let sum = r.fraction(SetOutcome::LogicallyMasked)
            + r.fraction(SetOutcome::ElectricallyMasked)
            + r.fraction(SetOutcome::Propagated);
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(r, camp.run(&net, 120, seed));
    }

    /// SEU outcomes partition and the AVF is bounded by the failure+latent
    /// fraction.
    #[test]
    fn seu_outcome_consistency(n in 3usize..9, horizon in 2usize..10) {
        let net = generate::lfsr(n, &[n - 1, n / 2]);
        let c = SeuCampaign::new(4, horizon);
        let r = c.run_exhaustive(&net, &[]);
        let m = r.fraction(SeuOutcome::Masked);
        let l = r.fraction(SeuOutcome::Latent);
        let f = r.fraction(SeuOutcome::Failure);
        prop_assert!((m + l + f - 1.0).abs() < 1e-9);
        prop_assert!((r.avf() - f).abs() < 1e-12);
    }

    /// Longer observation horizons never decrease the failure fraction
    /// (latent errors can only surface, not un-surface).
    #[test]
    fn horizon_monotone(n in 3usize..8) {
        let net = generate::lfsr(n, &[n - 1, 1]);
        let short = SeuCampaign::new(3, 3).run_exhaustive(&net, &[]);
        let long = SeuCampaign::new(3, 15).run_exhaustive(&net, &[]);
        prop_assert!(long.avf() >= short.avf() - 1e-12);
    }

    /// CDN geometry: subtree sizes halve per level and failure
    /// probability is monotone in the toggle probability.
    #[test]
    fn cdn_invariants(levels in 2usize..6, fpl in 1usize..8, p in 0.0f64..1.0) {
        let t = ClockTree::new(levels, fpl);
        for l in 1..levels {
            prop_assert_eq!(t.subtree_flops(l - 1), 2 * t.subtree_flops(l));
        }
        let wide = 100.0;
        let p_low = t.failure_probability(0, wide, p * 0.5);
        let p_high = t.failure_probability(0, wide, p);
        prop_assert!(p_high >= p_low - 1e-12);
    }
}
