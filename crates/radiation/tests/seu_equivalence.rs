//! Bit-parallel SEU engine ≡ scalar reference, property-tested.
//!
//! The acceptance bar for the campaign-engine refactor: the lane-packed
//! engine behind [`SeuCampaign::run_exhaustive`] / [`run_sampled`] must
//! produce **outcome-identical** `SeuReport`s (same order, same
//! outcomes, same detection latencies) to the retained scalar path in
//! [`seu_analysis::reference`] — over random sequential designs,
//! multiple seeds and every worker count.

use proptest::prelude::*;
use rescue_campaign::Campaign;
use rescue_netlist::{generate, Netlist};
use rescue_radiation::seu_analysis::{reference, SeuCampaign};

/// A small zoo of state-holding designs driven by one seed.
fn design(seed: u64) -> (Netlist, Vec<bool>) {
    match seed % 3 {
        0 => {
            let width = 4 + (seed % 9) as usize; // 4..=12 flops
            let tap = 1 + (seed as usize % (width - 1));
            (generate::lfsr(width, &[width - 1, tap]), vec![])
        }
        1 => {
            let stages = 3 + (seed % 6) as usize;
            (
                generate::shift_register(stages),
                vec![seed.is_multiple_of(2)],
            )
        }
        _ => {
            let width = 5 + (seed % 7) as usize;
            (generate::lfsr(width, &[width - 1, 2, 1]), vec![])
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhaustive campaigns: bit-identical reports for every design,
    /// warmup/horizon shape and worker count.
    #[test]
    fn exhaustive_matches_reference(seed in 0u64..400, warmup in 0usize..9, horizon in 0usize..11) {
        let (net, inputs) = design(seed);
        let campaign = SeuCampaign::new(warmup, horizon);
        let oracle = reference::run_exhaustive(&campaign, &net, &inputs);
        prop_assert_eq!(&campaign.run_exhaustive(&net, &inputs), &oracle);
        for workers in [2usize, 3, 4] {
            let run = campaign.run_exhaustive_on(&net, &inputs, &Campaign::new(seed, workers));
            prop_assert_eq!(&run.report, &oracle, "workers = {}", workers);
            prop_assert_eq!(run.stats.tally.total(), oracle.injections().len());
        }
    }

    /// Wide machine words: every supported lane width packs 64×W faulty
    /// machines per batch and must reproduce the scalar oracle
    /// record-for-record, for every worker count.
    #[test]
    fn wide_words_match_reference(seed in 0u64..400, warmup in 0usize..7, horizon in 0usize..9) {
        let (net, inputs) = design(seed);
        let oracle = reference::run_exhaustive(&SeuCampaign::new(warmup, horizon), &net, &inputs);
        for lane_width in [2usize, 4, 8] {
            let campaign = SeuCampaign::new(warmup, horizon).with_lane_width(lane_width);
            prop_assert_eq!(
                &campaign.run_exhaustive(&net, &inputs),
                &oracle,
                "lane_width = {}",
                lane_width
            );
            let run = campaign.run_exhaustive_on(&net, &inputs, &Campaign::new(seed, 3));
            prop_assert_eq!(&run.report, &oracle, "lane_width = {} sharded", lane_width);
            prop_assert_eq!(run.stats.tally.total(), oracle.injections().len());
        }
    }

    /// Sampled campaigns: the engine draws the identical `(dff, cycle)`
    /// sequence, so reports match record-for-record across seeds and
    /// worker counts.
    #[test]
    fn sampled_matches_reference(seed in 0u64..400, rng_seed in 0u64..1000, count in 1usize..150) {
        let (net, inputs) = design(seed);
        let campaign = SeuCampaign::new(5, 6);
        let oracle = reference::run_sampled(&campaign, &net, &inputs, count, rng_seed);
        prop_assert_eq!(&campaign.run_sampled(&net, &inputs, count, rng_seed), &oracle);
        for workers in [2usize, 4] {
            let run = campaign.run_sampled_on(
                &net, &inputs, count, rng_seed, &Campaign::new(rng_seed, workers),
            );
            prop_assert_eq!(&run.report, &oracle, "workers = {}", workers);
        }
    }
}

/// Lane-boundary shapes: exactly 64 flops fills a word; 65 spills into a
/// second batch; both must still match the scalar oracle.
#[test]
fn lane_boundary_designs_match_reference() {
    for width in [63usize, 64, 65, 130] {
        let net = generate::lfsr(width, &[width - 1, 3]);
        let campaign = SeuCampaign::new(2, 5);
        let oracle = reference::run_exhaustive(&campaign, &net, &[]);
        let run = campaign.run_exhaustive_on(&net, &[], &Campaign::new(9, 3));
        assert_eq!(run.report, oracle, "width = {width}");
        assert_eq!(run.stats.lanes_capacity % 64, 0);
        assert_eq!(run.stats.lanes_used as usize, oracle.injections().len());
        // Wide words at the same boundaries: 130 flops is a ragged tail
        // for W=1 (3 words) yet a single word at W=4 (256 lanes).
        for lane_width in [2usize, 4, 8] {
            let wide = campaign.with_lane_width(lane_width);
            let run = wide.run_exhaustive_on(&net, &[], &Campaign::new(9, 3));
            assert_eq!(run.report, oracle, "width = {width}, lanes = {lane_width}");
            assert_eq!(run.stats.lanes_capacity % (64 * lane_width as u64), 0);
            assert_eq!(run.stats.lanes_used as usize, oracle.injections().len());
        }
    }
}
