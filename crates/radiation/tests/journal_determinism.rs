//! Journal determinism, property-tested (satellite of the telemetry
//! tentpole): two runs of the same seeded serial campaign emit the
//! **identical event sequence** — same span names, same nesting, same
//! integer arguments, in the same order. Only timestamps may differ,
//! and [`Journal::signature`] strips exactly those.
//!
//! Serial campaigns run inline on the calling thread, so the captured
//! stream can be pinned to `current_thread()` and compared exactly even
//! while the test harness runs sibling tests concurrently (the global
//! switch itself is serialized with [`rescue_telemetry::exclusive`]).

use proptest::prelude::*;
use rescue_campaign::Campaign;
use rescue_netlist::generate;
use rescue_radiation::seu_analysis::SeuCampaign;
use rescue_telemetry::journal::{self, EventSignature, Journal};
use rescue_telemetry::TelemetryConfig;

/// Runs one serial exhaustive SEU campaign with telemetry on and
/// returns the timestamp-free signature of this thread's event stream.
fn campaign_signature(seed: u64, warmup: usize, horizon: usize) -> Vec<EventSignature> {
    let width = 4 + (seed % 6) as usize;
    let net = generate::lfsr(width, &[width - 1, 1]);
    let inputs: Vec<bool> = vec![];
    let campaign = SeuCampaign::new(warmup, horizon);

    let _serial = rescue_telemetry::exclusive();
    TelemetryConfig::on().install();
    let mark = journal::mark();
    std::hint::black_box(campaign.run_exhaustive_on(&net, &inputs, &Campaign::serial()));
    let journal = Journal::take_since(mark).current_thread();
    TelemetryConfig::off().install();
    journal.signature()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seeded serial campaign, identical journal signature — the
    /// repro guarantee behind exported run journals.
    #[test]
    fn seeded_serial_campaigns_emit_identical_journals(
        seed in 0u64..200,
        warmup in 0usize..6,
        horizon in 1usize..8,
    ) {
        let first = campaign_signature(seed, warmup, horizon);
        let second = campaign_signature(seed, warmup, horizon);
        prop_assert!(!first.is_empty(), "enabled campaign must journal");
        prop_assert_eq!(first, second);
    }

    /// The signature is also well-formed: as many `End`s as `Begin`s
    /// (every span guard dropped), so exported journals always pass the
    /// CI validator.
    #[test]
    fn journals_are_balanced(seed in 0u64..200) {
        use rescue_telemetry::EventKind;
        let sig = campaign_signature(seed, 2, 4);
        let begins = sig.iter().filter(|(_, k, _)| *k == EventKind::Begin).count();
        let ends = sig.iter().filter(|(_, k, _)| *k == EventKind::End).count();
        prop_assert_eq!(begins, ends);
        prop_assert!(begins > 0);
    }
}
