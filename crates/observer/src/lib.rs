//! Live campaign observability endpoint: scrape a running RESCUE-rs
//! process over HTTP.
//!
//! This crate is the exposition half of the ROADMAP's
//! campaign-as-a-service item, landed as pure observability: a
//! dependency-free HTTP/1.1 listener on [`std::net::TcpListener`]
//! (keeping the hermetic no-external-deps build) that any campaign
//! process can opt into. Three endpoints:
//!
//! * `GET /metrics` — the `rescue-telemetry` metrics registry in the
//!   Prometheus text exposition format
//!   ([`rescue_telemetry::expo`]): counters, gauges and histograms
//!   with cumulative buckets and bucket-resolved p50/p99 quantiles.
//! * `GET /status` — the fleet status registry
//!   ([`rescue_campaign::fleet`]) as JSON: per-campaign units
//!   total/cached/executed/waited, rates, ETA, campaign content hash,
//!   the current flow stage, and live `FsStore` claims with owner pid,
//!   liveness and age.
//! * `GET /healthz` — `ok` (liveness probe).
//!
//! # Opt-in
//!
//! Nothing listens unless asked. [`serve_from_env`] reads
//! `RESCUE_OBSERVE` (e.g. `RESCUE_OBSERVE=127.0.0.1:9090`) and starts
//! an [`Observer`] when set; processes that never set it pay nothing.
//! [`Observer::bind`] does the same explicitly, binding port 0 for an
//! OS-assigned port when the address ends in `:0`.
//!
//! The listener runs on one background thread and serves requests
//! serially — scrape traffic, not an application server. Rendering a
//! scrape body touches only registry snapshots and the fleet registry
//! lock, never a campaign's hot path.
//!
//! ```
//! let observer = rescue_observer::Observer::bind("127.0.0.1:0").unwrap();
//! let body = rescue_observer::http_get(observer.addr(), "/healthz").unwrap();
//! assert_eq!(body, "ok");
//! observer.shutdown();
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable naming the listen address (`host:port`).
pub const OBSERVE_ENV: &str = "RESCUE_OBSERVE";

/// Per-connection socket timeout: a stalled scraper must not wedge the
/// serve loop.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A running observability endpoint: background listener thread plus
/// shutdown switch.
#[derive(Debug)]
pub struct Observer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Observer {
    /// Binds `addr` (e.g. `"127.0.0.1:9090"`, or port `0` for an
    /// OS-assigned one) and starts serving on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, bad
    /// address).
    pub fn bind(addr: &str) -> std::io::Result<Observer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_worker = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rescue-observer".to_string())
            .spawn(move || serve_loop(listener, &stop_worker))
            .expect("spawn observer thread");
        Ok(Observer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound listen address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread. Idempotent; also runs
    /// on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for Observer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Starts an [`Observer`] when `RESCUE_OBSERVE` names a listen address;
/// returns `None` (and does nothing) when it is unset or empty. A set
/// address that fails to bind prints one warning to stderr rather than
/// killing the campaign — observability must never take down the run
/// it observes.
pub fn serve_from_env() -> Option<Observer> {
    let addr = std::env::var(OBSERVE_ENV).ok()?;
    if addr.is_empty() {
        return None;
    }
    match Observer::bind(&addr) {
        Ok(observer) => Some(observer),
        Err(e) => {
            eprintln!("rescue-observer: cannot bind {OBSERVE_ENV}={addr}: {e}");
            None
        }
    }
}

/// Accept loop: serve connections serially until the stop flag flips.
fn serve_loop(listener: TcpListener, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let _ = handle(stream);
    }
}

/// Routes one request path to `(status line, content type, body)`.
fn respond(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            rescue_telemetry::metrics::snapshot().to_prometheus(),
        ),
        "/status" => (
            "200 OK",
            "application/json",
            rescue_campaign::fleet::status_json(),
        ),
        "/healthz" | "/" => ("200 OK", "text/plain; charset=utf-8", "ok".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

/// Serves one HTTP/1.1 request on `stream` and closes the connection.
fn handle(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block; scrape requests carry no body.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method == "GET" {
        respond(path)
    } else {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal HTTP GET over a std [`TcpStream`]: sends the request, strips
/// the response headers, returns the body. The scrape probe CI's
/// E19 gate (and the tests below) use against a live [`Observer`] —
/// no HTTP client dependency needed.
///
/// # Errors
///
/// Returns connect/read errors, and `InvalidData` when the response is
/// not a 200.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: rescue\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split")
    })?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{path}: {status_line}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_telemetry::expo::validate_exposition;
    use rescue_telemetry::{metrics, TelemetryConfig};

    #[test]
    fn endpoints_serve_metrics_status_and_health() {
        let _serial = rescue_telemetry::exclusive();
        TelemetryConfig::on().install();
        metrics::counter("observer.test_hits").add(3);
        metrics::gauge("observer.test_level").set(-2);
        metrics::histogram("observer.test_lat", &metrics::pow2_bounds(8)).record(5);
        TelemetryConfig::off().install();
        let fleet = rescue_campaign::fleet::register("observer.test", "beef", 4, None);
        fleet.add_cached(1);

        let observer = Observer::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = observer.addr();

        assert_eq!(http_get(addr, "/healthz").unwrap(), "ok");

        let metrics_body = http_get(addr, "/metrics").unwrap();
        assert!(metrics_body.contains("rescue_observer_test_hits_total 3"));
        assert!(metrics_body.contains("rescue_observer_test_level -2"));
        assert!(metrics_body.contains("rescue_observer_test_lat_bucket"));
        validate_exposition(&metrics_body).expect("scrape body parses");

        let status_body = http_get(addr, "/status").unwrap();
        assert!(status_body.contains("\"name\":\"observer.test\""));
        assert!(status_body.contains("\"campaign\":\"beef\""));
        assert!(status_body.contains("\"units_cached\":1"));

        assert!(http_get(addr, "/nope").is_err(), "404 on unknown path");
        observer.shutdown();
    }

    #[test]
    fn shutdown_stops_the_listener() {
        let observer = Observer::bind("127.0.0.1:0").unwrap();
        let addr = observer.addr();
        assert_eq!(http_get(addr, "/healthz").unwrap(), "ok");
        observer.shutdown();
        // The port stops answering (connect may still succeed briefly on
        // some hosts; a full request must fail).
        assert!(http_get(addr, "/healthz").is_err());
    }

    #[test]
    fn serve_from_env_requires_the_variable() {
        // Only asserts the unset path: mutating the environment would
        // race sibling tests.
        if std::env::var(OBSERVE_ENV).is_err() {
            assert!(serve_from_env().is_none());
        }
    }
}
