//! Property-based tests for the aging models.

use proptest::prelude::*;
use rescue_aging::bti::{BtiModel, HciModel, StressProfile};
use rescue_aging::decoder::{balance, AccessHistogram};
use rescue_aging::delay::{aged_timing, OperatingPoint};
use rescue_aging::rejuvenation::duty_of;
use rescue_netlist::generate;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ΔVth is monotone in duty, time and temperature, and zero at zero
    /// duty or zero time.
    #[test]
    fn bti_monotone(duty in 0.0f64..1.0, years in 0.0f64..30.0, t in 250.0f64..450.0) {
        let m = BtiModel::bulk_28nm();
        let s = StressProfile { duty, temperature_k: t };
        let v = m.delta_vth_mv(&s, years);
        prop_assert!(v >= 0.0);
        prop_assert!(m.delta_vth_mv(&s, years + 1.0) >= v);
        let s_hot = StressProfile { duty, temperature_k: t + 10.0 };
        prop_assert!(m.delta_vth_mv(&s_hot, years) >= v);
        let s_more = StressProfile { duty: (duty + 0.1).min(1.0), temperature_k: t };
        prop_assert!(m.delta_vth_mv(&s_more, years) >= v);
        prop_assert_eq!(m.delta_vth_mv(&StressProfile { duty: 0.0, temperature_k: t }, years), 0.0);
        prop_assert_eq!(m.delta_vth_mv(&s, 0.0), 0.0);
    }

    /// Recovery never increases the shift and never goes negative.
    #[test]
    fn recovery_bounded(duty in 0.01f64..1.0, stress_y in 0.1f64..20.0, rec_y in 0.0f64..20.0) {
        let m = BtiModel::finfet_14nm();
        let s = StressProfile { duty, temperature_k: 380.0 };
        let base = m.with_recovery_mv(&s, stress_y, 0.0);
        let rec = m.with_recovery_mv(&s, stress_y, rec_y);
        prop_assert!(rec <= base + 1e-12);
        prop_assert!(rec >= 0.0);
    }

    /// HCI shift is monotone in activity and time.
    #[test]
    fn hci_monotone(a in 0.0f64..1.0, years in 0.0f64..30.0) {
        let h = HciModel::default();
        let v = h.delta_vth_mv(a, years);
        prop_assert!(v >= 0.0);
        prop_assert!(h.delta_vth_mv(a, years + 1.0) >= v);
        prop_assert!(h.delta_vth_mv((a + 0.1).min(1.0), years) >= v);
    }

    /// Aged delay never beats fresh delay and grows with years.
    #[test]
    fn aged_timing_monotone(seed in 1u64..100, years in 1.0f64..15.0) {
        let net = generate::random_logic(6, 40, 3, seed);
        let p = vec![0.5; net.len()];
        let m = BtiModel::bulk_28nm();
        let t1 = aged_timing(&net, &p, &m, OperatingPoint::nominal(), years, 380.0);
        prop_assert!(t1.slowdown() >= 1.0);
        let t2 = aged_timing(&net, &p, &m, OperatingPoint::nominal(), years + 5.0, 380.0);
        prop_assert!(t2.slowdown() >= t1.slowdown());
    }

    /// Decoder balancing: the plan never exceeds its budget, and applying
    /// it never increases the imbalance.
    #[test]
    fn balancing_invariants(trace in proptest::collection::vec(0usize..16, 1..300), budget in 0u64..500) {
        let h = AccessHistogram::from_trace(16, &trace);
        let plan = balance(&h, Some(budget));
        prop_assert!(plan.overhead() <= budget);
        let after = plan.apply(&h);
        prop_assert!(after.imbalance() <= h.imbalance() + 1e-9);
        let full = balance(&h, None);
        let balanced = full.apply(&h);
        prop_assert!(balanced.imbalance() < 1e-9);
    }

    /// Duty statistics stay within bounds on arbitrary pattern sets.
    #[test]
    fn duty_bounds(seed in 1u64..100, n_pat in 1usize..40) {
        let net = generate::random_logic(6, 30, 2, seed);
        let mut s = seed;
        let pats: Vec<Vec<bool>> = (0..n_pat)
            .map(|_| {
                (0..6)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        s >> 40 & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let d = duty_of(&net, &pats);
        prop_assert!(d.mean_imbalance <= d.worst_imbalance + 1e-12);
        prop_assert!(d.worst_imbalance <= 1.0);
        for p in &d.p_one {
            prop_assert!((0.0..=1.0).contains(p));
        }
    }
}
