//! Mapping Vth drift to gate and path delay over netlists.
//!
//! The alpha-power law: gate delay `∝ Vdd / (Vdd − Vth)^α` with
//! `α ≈ 1.3`. Per-gate duty cycles come from signal probabilities
//! (a PMOS in a CMOS gate is stressed while the output is high, so the
//! output-one probability is the NBTI duty proxy).

use crate::bti::{BtiModel, StressProfile};
use rescue_netlist::{GateId, GateKind, Netlist};

/// Electrical operating point of the library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Fresh threshold voltage in volts.
    pub vth0: f64,
    /// Alpha-power exponent.
    pub alpha: f64,
}

impl OperatingPoint {
    /// A 28 nm-class operating point (0.9 V supply, 0.35 V threshold).
    pub fn nominal() -> Self {
        OperatingPoint {
            vdd: 0.9,
            vth0: 0.35,
            alpha: 1.3,
        }
    }

    /// Relative delay of a device whose threshold drifted by
    /// `delta_vth_mv` (1.0 = fresh).
    ///
    /// # Panics
    ///
    /// Panics when the aged threshold reaches the supply.
    pub fn delay_factor(&self, delta_vth_mv: f64) -> f64 {
        let vth = self.vth0 + delta_vth_mv / 1000.0;
        assert!(vth < self.vdd, "device no longer switches");
        ((self.vdd - self.vth0) / (self.vdd - vth)).powf(self.alpha)
    }
}

/// Aged timing analysis of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct AgedTiming {
    fresh_delay: f64,
    aged_delay: f64,
    critical_path: Vec<GateId>,
    worst_gate_shift_mv: f64,
}

impl AgedTiming {
    /// Fresh critical-path delay (unit-delay gates scaled by factor 1).
    pub fn fresh_delay(&self) -> f64 {
        self.fresh_delay
    }

    /// Aged critical-path delay.
    pub fn aged_delay(&self) -> f64 {
        self.aged_delay
    }

    /// Relative slowdown (`aged / fresh`).
    pub fn slowdown(&self) -> f64 {
        self.aged_delay / self.fresh_delay
    }

    /// Gates on the aged critical path.
    pub fn critical_path(&self) -> &[GateId] {
        &self.critical_path
    }

    /// Largest per-gate Vth shift seen, mV.
    pub fn worst_gate_shift_mv(&self) -> f64 {
        self.worst_gate_shift_mv
    }
}

/// Computes the aged critical path of a combinational netlist after
/// `years`, with per-gate one-probabilities `p_one` as NBTI duty proxies
/// and a junction temperature.
///
/// # Panics
///
/// Panics when `p_one.len() != netlist.len()`.
///
/// # Examples
///
/// ```
/// use rescue_aging::bti::BtiModel;
/// use rescue_aging::delay::{aged_timing, OperatingPoint};
/// use rescue_netlist::generate;
///
/// let net = generate::adder(8);
/// let p_one = vec![0.5; net.len()];
/// let t = aged_timing(
///     &net,
///     &p_one,
///     &BtiModel::bulk_28nm(),
///     OperatingPoint::nominal(),
///     10.0,
///     380.0,
/// );
/// assert!(t.slowdown() > 1.0, "aging slows the critical path");
/// assert!(t.slowdown() < 1.5, "but not catastrophically");
/// ```
pub fn aged_timing(
    netlist: &Netlist,
    p_one: &[f64],
    model: &BtiModel,
    op: OperatingPoint,
    years: f64,
    temperature_k: f64,
) -> AgedTiming {
    assert_eq!(p_one.len(), netlist.len(), "one probability per gate");
    let order = netlist.levelize().order().to_vec();
    let mut fresh = vec![0.0f64; netlist.len()];
    let mut aged = vec![0.0f64; netlist.len()];
    let mut pred: Vec<Option<GateId>> = vec![None; netlist.len()];
    let mut worst_shift = 0.0f64;
    for &id in &order {
        let g = netlist.gate(id);
        if matches!(
            g.kind(),
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff
        ) {
            continue;
        }
        let duty = p_one[id.index()].clamp(0.0, 1.0);
        let shift = model.delta_vth_mv(
            &StressProfile {
                duty,
                temperature_k,
            },
            years,
        );
        worst_shift = worst_shift.max(shift);
        let factor = op.delay_factor(shift);
        let (mut best_f, mut best_a, mut best_p) = (0.0, 0.0, None);
        for &p in g.inputs() {
            if fresh[p.index()] >= best_f {
                best_f = fresh[p.index()];
            }
            if aged[p.index()] >= best_a {
                best_a = aged[p.index()];
                best_p = Some(p);
            }
        }
        fresh[id.index()] = best_f + 1.0;
        aged[id.index()] = best_a + factor;
        pred[id.index()] = best_p;
    }
    // Find the worst aged output.
    let mut worst_out = None;
    let mut worst_aged = 0.0;
    let mut worst_fresh: f64 = 0.0;
    for (_, g) in netlist.primary_outputs() {
        if aged[g.index()] >= worst_aged {
            worst_aged = aged[g.index()];
            worst_out = Some(*g);
        }
        worst_fresh = worst_fresh.max(fresh[g.index()]);
    }
    let mut critical_path = Vec::new();
    let mut cur = worst_out;
    while let Some(g) = cur {
        critical_path.push(g);
        cur = pred[g.index()];
    }
    critical_path.reverse();
    AgedTiming {
        fresh_delay: worst_fresh.max(1.0),
        aged_delay: worst_aged.max(1.0),
        critical_path,
        worst_gate_shift_mv: worst_shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    #[test]
    fn delay_factor_monotone() {
        let op = OperatingPoint::nominal();
        assert_eq!(op.delay_factor(0.0), 1.0);
        assert!(op.delay_factor(50.0) > op.delay_factor(10.0));
        assert!(op.delay_factor(50.0) > 1.0);
    }

    #[test]
    #[should_panic(expected = "no longer switches")]
    fn extreme_shift_panics() {
        OperatingPoint::nominal().delay_factor(600.0);
    }

    #[test]
    fn asymmetric_duty_ages_unevenly() {
        let net = generate::parity(8);
        let model = BtiModel::bulk_28nm();
        // Skewed duty: half the gates heavily stressed.
        let skewed: Vec<f64> = (0..net.len())
            .map(|i| if i % 2 == 0 { 0.95 } else { 0.05 })
            .collect();
        let balanced = vec![0.5; net.len()];
        let t_skew = aged_timing(
            &net,
            &skewed,
            &model,
            OperatingPoint::nominal(),
            10.0,
            380.0,
        );
        let t_bal = aged_timing(
            &net,
            &balanced,
            &model,
            OperatingPoint::nominal(),
            10.0,
            380.0,
        );
        assert!(t_skew.worst_gate_shift_mv() > t_bal.worst_gate_shift_mv());
    }

    #[test]
    fn slowdown_grows_with_years() {
        let net = generate::multiplier(4);
        let p = vec![0.5; net.len()];
        let m = BtiModel::bulk_28nm();
        let t1 = aged_timing(&net, &p, &m, OperatingPoint::nominal(), 1.0, 380.0);
        let t10 = aged_timing(&net, &p, &m, OperatingPoint::nominal(), 10.0, 380.0);
        assert!(t10.slowdown() > t1.slowdown());
        assert!(!t10.critical_path().is_empty());
        assert!(t10.fresh_delay() >= 1.0);
        assert!(t10.aged_delay() > t10.fresh_delay());
    }
}
