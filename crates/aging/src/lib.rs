//! Transistor-aging models and mitigation for RESCUE-rs.
//!
//! Covers the time-dependent degradation work of paper Sections III.C
//! and III.E:
//!
//! * [`bti`] — NBTI/PBTI threshold-voltage drift (duty-cycle, time and
//!   temperature dependent) and HCI switching-activity stress.
//! * [`delay`] — mapping Vth drift to gate/path delay via the
//!   alpha-power law and computing aged critical paths over netlists.
//! * [`rejuvenation`] — evolutionary generation of stress-balancing
//!   stimuli ("Rejuvenation of NBTI-Impacted Processors Using
//!   Evolutionary Generation of Assembler Programs" \[7\], here at the
//!   pattern level).
//! * [`decoder`] — software-based mitigation of memory address-decoder
//!   aging \[24\]: access-histogram balancing via remapping and padding
//!   accesses.
//!
//! # Examples
//!
//! Ten years of NBTI on a half-duty PMOS at 400 K:
//!
//! ```
//! use rescue_aging::bti::{BtiModel, StressProfile};
//!
//! let model = BtiModel::bulk_28nm();
//! let stress = StressProfile { duty: 0.5, temperature_k: 400.0 };
//! let shift = model.delta_vth_mv(&stress, 10.0);
//! assert!(shift > 10.0 && shift < 120.0, "tens of mV after 10 years");
//! ```

pub mod bti;
pub mod decoder;
pub mod delay;
pub mod rejuvenation;

pub use bti::{BtiModel, StressProfile};
pub use delay::AgedTiming;
