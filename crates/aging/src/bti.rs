//! BTI (bias-temperature instability) and HCI stress models.
//!
//! The standard long-term reaction–diffusion fit:
//!
//! ```text
//! ΔVth = A · duty^0.5 · t^n · exp(-Ea / (k·T))·K
//! ```
//!
//! with time exponent `n ≈ 0.16–0.25` and activation energy
//! `Ea ≈ 0.05–0.1 eV`. Absolute values are technology-calibrated via the
//! prefactor; the *shape* (duty, time, temperature monotonicity) is what
//! the RESCUE mitigation work relies on.

/// Boltzmann constant in eV/K.
const K_B: f64 = 8.617e-5;

/// The static stress condition of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressProfile {
    /// Fraction of time under stress (gate biased), in `[0, 1]`.
    pub duty: f64,
    /// Junction temperature in kelvin.
    pub temperature_k: f64,
}

/// A calibrated BTI model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtiModel {
    /// Technology prefactor (mV at duty 1, 1 year, reference temp).
    pub prefactor_mv: f64,
    /// Time exponent (`~0.25` diffusion-limited).
    pub time_exponent: f64,
    /// Duty exponent (`~0.5`).
    pub duty_exponent: f64,
    /// Activation energy in eV.
    pub activation_ev: f64,
    /// Reference temperature for the prefactor, kelvin.
    pub reference_k: f64,
}

impl BtiModel {
    /// A bulk 28 nm-class NBTI calibration.
    pub fn bulk_28nm() -> Self {
        BtiModel {
            prefactor_mv: 30.0,
            time_exponent: 0.25,
            duty_exponent: 0.5,
            activation_ev: 0.06,
            reference_k: 300.0,
        }
    }

    /// A FinFET-class calibration (stronger self-heating: higher Ea).
    pub fn finfet_14nm() -> Self {
        BtiModel {
            prefactor_mv: 38.0,
            time_exponent: 0.22,
            duty_exponent: 0.5,
            activation_ev: 0.08,
            reference_k: 300.0,
        }
    }

    /// ΔVth in millivolts after `years` under `stress`.
    ///
    /// # Panics
    ///
    /// Panics when `duty` is outside `[0, 1]`, or years/temperature are
    /// non-positive (temperature must be > 0 K; years may be 0).
    pub fn delta_vth_mv(&self, stress: &StressProfile, years: f64) -> f64 {
        assert!((0.0..=1.0).contains(&stress.duty), "duty in [0,1]");
        assert!(stress.temperature_k > 0.0, "temperature in kelvin");
        assert!(years >= 0.0, "years >= 0");
        let arrhenius = (-self.activation_ev / (K_B * stress.temperature_k)).exp()
            / (-self.activation_ev / (K_B * self.reference_k)).exp();
        self.prefactor_mv
            * stress.duty.powf(self.duty_exponent)
            * years.powf(self.time_exponent)
            * arrhenius
    }

    /// Partial-recovery model: after `stress_years` under `stress`, the
    /// device rests (duty 0) for `recovery_years`; a fraction of the
    /// shift anneals out logarithmically.
    pub fn with_recovery_mv(
        &self,
        stress: &StressProfile,
        stress_years: f64,
        recovery_years: f64,
    ) -> f64 {
        let shift = self.delta_vth_mv(stress, stress_years);
        if recovery_years <= 0.0 {
            return shift;
        }
        // Universal relaxation: R = 1 / (1 + B·(t_rec/t_stress)^β)
        let ratio = recovery_years / stress_years.max(1e-9);
        let remaining = 1.0 / (1.0 + 0.35 * ratio.powf(0.2));
        shift * remaining
    }
}

/// Hot-carrier injection: switching-activity-driven drift,
/// `ΔVth = C · activity^0.5 · years^0.5` (worst at high toggle rates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HciModel {
    /// Prefactor in mV at activity 1 after 1 year.
    pub prefactor_mv: f64,
}

impl HciModel {
    /// Default calibration.
    pub fn new() -> Self {
        HciModel { prefactor_mv: 12.0 }
    }

    /// ΔVth in mV for a toggle `activity` (transitions per cycle,
    /// `[0, 1]`) after `years`.
    ///
    /// # Panics
    ///
    /// Panics when activity is outside `[0, 1]` or years negative.
    pub fn delta_vth_mv(&self, activity: f64, years: f64) -> f64 {
        assert!((0.0..=1.0).contains(&activity), "activity in [0,1]");
        assert!(years >= 0.0);
        self.prefactor_mv * activity.sqrt() * years.sqrt()
    }
}

impl Default for HciModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_everything() {
        let m = BtiModel::bulk_28nm();
        let base = StressProfile {
            duty: 0.5,
            temperature_k: 350.0,
        };
        let v0 = m.delta_vth_mv(&base, 5.0);
        assert!(m.delta_vth_mv(&base, 10.0) > v0);
        assert!(m.delta_vth_mv(&StressProfile { duty: 0.9, ..base }, 5.0) > v0);
        assert!(
            m.delta_vth_mv(
                &StressProfile {
                    temperature_k: 400.0,
                    ..base
                },
                5.0
            ) > v0
        );
    }

    #[test]
    fn zero_duty_zero_shift() {
        let m = BtiModel::bulk_28nm();
        let s = StressProfile {
            duty: 0.0,
            temperature_k: 350.0,
        };
        assert_eq!(m.delta_vth_mv(&s, 10.0), 0.0);
        assert_eq!(
            m.delta_vth_mv(
                &StressProfile {
                    duty: 0.5,
                    temperature_k: 350.0
                },
                0.0
            ),
            0.0
        );
    }

    #[test]
    fn recovery_reduces_shift() {
        let m = BtiModel::bulk_28nm();
        let s = StressProfile {
            duty: 0.8,
            temperature_k: 380.0,
        };
        let no_rec = m.with_recovery_mv(&s, 5.0, 0.0);
        let rec = m.with_recovery_mv(&s, 5.0, 5.0);
        assert!(rec < no_rec);
        assert!(rec > 0.4 * no_rec, "recovery is partial");
    }

    #[test]
    fn finfet_ages_faster_hot() {
        let bulk = BtiModel::bulk_28nm();
        let fin = BtiModel::finfet_14nm();
        let hot = StressProfile {
            duty: 0.5,
            temperature_k: 400.0,
        };
        assert!(fin.delta_vth_mv(&hot, 10.0) > bulk.delta_vth_mv(&hot, 10.0));
    }

    #[test]
    fn hci_scales_with_activity() {
        let h = HciModel::default();
        assert_eq!(h.delta_vth_mv(0.0, 10.0), 0.0);
        assert!(h.delta_vth_mv(0.5, 10.0) < h.delta_vth_mv(1.0, 10.0));
    }
}
