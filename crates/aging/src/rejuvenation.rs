//! Evolutionary generation of stress-balancing (rejuvenation) stimuli.
//!
//! The RESCUE baseline \[7\] showed that unbalanced logic can be
//! "rejuvenated" by running generated programs that invert the dominant
//! stress. At the netlist level the equivalent question is: *find input
//! patterns whose application drives every gate's one-probability
//! towards 0.5*. A small genetic algorithm evolves a pattern set that
//! minimizes the worst duty-cycle imbalance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rescue_campaign::{Campaign, CampaignStats};
use rescue_netlist::{GateKind, Netlist};
use rescue_sim::parallel::{pack_patterns, ParallelSimulator};
use std::time::Instant;

/// Duty statistics of a stimulus over a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct DutyStats {
    /// Per-gate one-probability under the stimulus.
    pub p_one: Vec<f64>,
    /// Worst-case imbalance `max |p - 0.5| * 2` in `[0, 1]`.
    pub worst_imbalance: f64,
    /// Mean imbalance.
    pub mean_imbalance: f64,
}

/// Measures per-gate duty cycles of `patterns` (combinational view).
///
/// # Panics
///
/// Panics when a pattern width mismatches.
pub fn duty_of(netlist: &Netlist, patterns: &[Vec<bool>]) -> DutyStats {
    let sim = ParallelSimulator::new(netlist);
    let mut ones = vec![0usize; netlist.len()];
    let mut total = 0usize;
    for chunk in patterns.chunks(64) {
        let words = pack_patterns(chunk);
        let values = sim.run(netlist, &words).expect("pattern width");
        let live = chunk.len();
        for (i, w) in values.iter().enumerate() {
            let masked = if live < 64 {
                w & ((1u64 << live) - 1)
            } else {
                *w
            };
            ones[i] += masked.count_ones() as usize;
        }
        total += live;
    }
    let eligible: Vec<usize> = netlist
        .iter()
        .filter(|(_, g)| {
            !matches!(
                g.kind(),
                GateKind::Const0 | GateKind::Const1 | GateKind::Dff
            )
        })
        .map(|(id, _)| id.index())
        .collect();
    let p_one: Vec<f64> = ones
        .iter()
        .map(|&o| o as f64 / total.max(1) as f64)
        .collect();
    let imbalances: Vec<f64> = eligible
        .iter()
        .map(|&i| (p_one[i] - 0.5).abs() * 2.0)
        .collect();
    let worst = imbalances.iter().copied().fold(0.0, f64::max);
    let mean = imbalances.iter().sum::<f64>() / imbalances.len().max(1) as f64;
    DutyStats {
        p_one,
        worst_imbalance: worst,
        mean_imbalance: mean,
    }
}

/// Result of the evolutionary search.
#[derive(Debug, Clone, PartialEq)]
pub struct RejuvenationResult {
    /// The evolved balancing patterns.
    pub patterns: Vec<Vec<bool>>,
    /// Duty statistics of a random baseline of the same size.
    pub baseline: DutyStats,
    /// Duty statistics of the evolved set.
    pub evolved: DutyStats,
    /// Generations executed.
    pub generations: usize,
    /// Observability record of the search: `injections` counts duty
    /// evaluations, lanes reflect the 64-pattern word packing of each.
    pub stats: CampaignStats,
}

impl RejuvenationResult {
    /// Relative improvement of mean imbalance (`0.3` = 30 % better).
    pub fn improvement(&self) -> f64 {
        if self.baseline.mean_imbalance == 0.0 {
            return 0.0;
        }
        1.0 - self.evolved.mean_imbalance / self.baseline.mean_imbalance
    }
}

/// Evolves `set_size` patterns over `generations` generations with a
/// (μ+λ) GA (population 16, tournament selection, bit-flip mutation).
/// Serial convenience wrapper over [`evolve_on`].
///
/// # Panics
///
/// Panics when `set_size == 0`.
pub fn evolve(
    netlist: &Netlist,
    set_size: usize,
    generations: usize,
    seed: u64,
) -> RejuvenationResult {
    evolve_on(netlist, set_size, generations, seed, &Campaign::serial())
}

/// [`evolve`] with the initial-population fitness evaluation sharded
/// over the shared [`Campaign`] driver. The GA main loop stays serial
/// (each child depends on the previous selection), so results are
/// identical for every worker count; the attached [`CampaignStats`]
/// reports duty-evaluation throughput either way.
///
/// # Panics
///
/// Panics when `set_size == 0`.
pub fn evolve_on(
    netlist: &Netlist,
    set_size: usize,
    generations: usize,
    seed: u64,
    campaign: &Campaign,
) -> RejuvenationResult {
    assert!(set_size > 0, "need at least one pattern");
    let start = Instant::now();
    let n_in = netlist.primary_inputs().len();
    let mut rng = StdRng::seed_from_u64(seed);
    let random_set = |rng: &mut StdRng| -> Vec<Vec<bool>> {
        (0..set_size)
            .map(|_| (0..n_in).map(|_| rng.gen()).collect())
            .collect()
    };
    let fitness = |set: &Vec<Vec<bool>>| -> f64 {
        let d = duty_of(netlist, set);
        // Lower is better: weighted mean + worst.
        d.mean_imbalance + 0.5 * d.worst_imbalance
    };
    let baseline_set = random_set(&mut rng);
    let baseline = duty_of(netlist, &baseline_set);

    let seeds: Vec<Vec<Vec<bool>>> = (0..16).map(|_| random_set(&mut rng)).collect();
    let sharded = campaign.run_sharded(&seeds, |_| (), |_, _, set| fitness(set));
    let mut stats = CampaignStats::from_run(seeds.len(), &sharded);
    let mut population: Vec<(Vec<Vec<bool>>, f64)> =
        seeds.into_iter().zip(sharded.results).collect();
    for _ in 0..generations {
        // Tournament pick two parents.
        let pick = |rng: &mut StdRng, pop: &[(Vec<Vec<bool>>, f64)]| -> usize {
            let a = rng.gen_range(0..pop.len());
            let b = rng.gen_range(0..pop.len());
            if pop[a].1 <= pop[b].1 {
                a
            } else {
                b
            }
        };
        let pa = pick(&mut rng, &population);
        let pb = pick(&mut rng, &population);
        // Uniform crossover at pattern granularity + bit mutation.
        let mut child: Vec<Vec<bool>> = (0..set_size)
            .map(|i| {
                if rng.gen() {
                    population[pa].0[i].clone()
                } else {
                    population[pb].0[i].clone()
                }
            })
            .collect();
        for pat in child.iter_mut() {
            for b in pat.iter_mut() {
                if rng.gen_bool(0.05) {
                    *b = !*b;
                }
            }
        }
        let f = fitness(&child);
        // Replace the worst individual if the child improves on it.
        let worst = population
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite fitness"))
            .map(|(i, _)| i)
            .expect("non-empty population");
        if f < population[worst].1 {
            population[worst] = (child, f);
        }
    }
    let best = population
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
        .expect("non-empty population");
    let evolved = duty_of(netlist, &best.0);
    // Baseline + 16 initial + one child per generation + final measure.
    let evaluations = 2 + 16 + generations;
    stats.injections = evaluations;
    stats.elapsed_ns = (start.elapsed().as_nanos() as u64).max(1);
    for _ in 0..evaluations {
        let mut remaining = set_size;
        while remaining > 0 {
            let live = remaining.min(64);
            stats.record_lanes(live as u64, 64);
            remaining -= live;
        }
    }
    RejuvenationResult {
        patterns: best.0,
        baseline,
        evolved,
        generations,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    #[test]
    fn duty_stats_bounds() {
        let net = generate::c17();
        let pats: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|i| p >> i & 1 == 1).collect())
            .collect();
        let d = duty_of(&net, &pats);
        assert!(d.worst_imbalance <= 1.0);
        assert!(d.mean_imbalance <= d.worst_imbalance);
        for p in &d.p_one {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn evolution_improves_balance() {
        // An AND-tree is naturally skewed (deep gates rarely 1): good
        // target for balancing.
        let mut b = rescue_netlist::NetlistBuilder::new("skewed");
        let ins = b.inputs("i", 8);
        let g1 = b.and_n(&ins[0..4]);
        let g2 = b.and_n(&ins[4..8]);
        let g = b.and(g1, g2);
        b.output("y", g);
        let net = b.finish();
        let r = evolve(&net, 16, 150, 42);
        assert!(
            r.evolved.mean_imbalance <= r.baseline.mean_imbalance,
            "evolved {} vs baseline {}",
            r.evolved.mean_imbalance,
            r.baseline.mean_imbalance
        );
        assert!(r.improvement() >= 0.0);
        assert_eq!(r.patterns.len(), 16);
        assert_eq!(r.generations, 150);
    }

    #[test]
    fn deterministic_in_seed() {
        let net = generate::parity(6);
        let a = evolve(&net, 8, 40, 7);
        let b = evolve(&net, 8, 40, 7);
        assert_eq!(a.patterns, b.patterns);
    }

    #[test]
    fn parallel_evolution_matches_serial() {
        let net = generate::parity(6);
        let serial = evolve(&net, 8, 40, 7);
        for workers in [2usize, 4] {
            let par = evolve_on(&net, 8, 40, 7, &Campaign::new(0, workers));
            assert_eq!(par.patterns, serial.patterns, "workers = {workers}");
            assert_eq!(par.evolved, serial.evolved);
        }
        assert_eq!(serial.stats.injections, 2 + 16 + 40);
        assert!(serial.stats.injections_per_sec() > 0.0);
        assert!(serial.stats.lane_occupancy() > 0.0);
    }
}
