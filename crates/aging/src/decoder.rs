//! Software-based mitigation of memory address-decoder aging \[24\].
//!
//! The address decoder's wordline drivers age with the access histogram:
//! hot addresses stress their drivers continuously while cold wordlines
//! rest. The RESCUE mitigation embeds extra (dummy) accesses into the
//! program so all wordlines see similar activity. This module measures
//! stress balance and synthesizes the padding access schedule.

/// Access statistics over a decoder of `2^bits` wordlines.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessHistogram {
    counts: Vec<u64>,
}

impl AccessHistogram {
    /// Creates an empty histogram for `wordlines` rows.
    ///
    /// # Panics
    ///
    /// Panics when `wordlines == 0`.
    pub fn new(wordlines: usize) -> Self {
        assert!(wordlines > 0, "need at least one wordline");
        AccessHistogram {
            counts: vec![0; wordlines],
        }
    }

    /// Builds a histogram from an address trace.
    ///
    /// # Panics
    ///
    /// Panics when an address exceeds the wordline count.
    pub fn from_trace(wordlines: usize, trace: &[usize]) -> Self {
        let mut h = Self::new(wordlines);
        for &a in trace {
            h.record(a);
        }
        h
    }

    /// Records one access.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range addresses.
    pub fn record(&mut self, address: usize) {
        assert!(address < self.counts.len(), "address out of range");
        self.counts[address] += 1;
    }

    /// Per-wordline access counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-wordline duty (activity fraction of the hottest line = 1).
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts.iter().map(|&c| c as f64 / max as f64).collect()
    }

    /// Stress imbalance: coefficient of variation of the counts
    /// (0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.counts.len() as f64;
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// A mitigation plan: dummy accesses per wordline to level the stress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalancingPlan {
    padding: Vec<u64>,
}

impl BalancingPlan {
    /// Dummy accesses required per wordline.
    pub fn padding(&self) -> &[u64] {
        &self.padding
    }

    /// Total dummy accesses (the runtime overhead).
    pub fn overhead(&self) -> u64 {
        self.padding.iter().sum()
    }

    /// Applies the plan to a histogram, returning the balanced one.
    pub fn apply(&self, histogram: &AccessHistogram) -> AccessHistogram {
        AccessHistogram {
            counts: histogram
                .counts()
                .iter()
                .zip(&self.padding)
                .map(|(&c, &p)| c + p)
                .collect(),
        }
    }
}

/// Computes the padding schedule that levels every wordline up to the
/// hottest one (perfect balance, maximum overhead), optionally capped at
/// `max_overhead` dummy accesses distributed greedily to the coldest
/// lines first.
///
/// # Examples
///
/// ```
/// use rescue_aging::decoder::{balance, AccessHistogram};
///
/// let h = AccessHistogram::from_trace(4, &[0, 0, 0, 0, 1, 2]);
/// let plan = balance(&h, None);
/// let after = plan.apply(&h);
/// assert!(after.imbalance() < h.imbalance());
/// assert_eq!(after.counts(), &[4, 4, 4, 4]);
/// ```
pub fn balance(histogram: &AccessHistogram, max_overhead: Option<u64>) -> BalancingPlan {
    let max = histogram.counts().iter().copied().max().unwrap_or(0);
    let mut padding: Vec<u64> = histogram.counts().iter().map(|&c| max - c).collect();
    if let Some(budget) = max_overhead {
        let want: u64 = padding.iter().sum();
        if want > budget {
            // Greedy: spend the budget on the coldest lines first.
            let mut order: Vec<usize> = (0..padding.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(padding[i]));
            let mut left = budget;
            let mut spent = vec![0u64; padding.len()];
            // Water-filling: raise the coldest lines together.
            // Simple proportional fallback keeps the implementation
            // transparent: allocate proportionally to need.
            for &i in &order {
                let share = (padding[i] as u128 * budget as u128 / want as u128) as u64;
                let give = share.min(left);
                spent[i] = give;
                left -= give;
            }
            // Distribute any rounding remainder.
            let mut k = 0;
            while left > 0 && k < order.len() {
                let i = order[k];
                let room = padding[i] - spent[i];
                let give = room.min(left);
                spent[i] += give;
                left -= give;
                k += 1;
            }
            padding = spent;
        }
    }
    BalancingPlan { padding }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let h = AccessHistogram::from_trace(8, &[1, 1, 1, 7]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[1], 3);
        assert_eq!(h.normalized()[1], 1.0);
        assert!(h.imbalance() > 0.5);
        let empty = AccessHistogram::new(4);
        assert_eq!(empty.imbalance(), 0.0);
    }

    #[test]
    fn full_balance_zeroes_imbalance() {
        let h = AccessHistogram::from_trace(4, &[0, 0, 0, 1, 2, 2]);
        let plan = balance(&h, None);
        let after = plan.apply(&h);
        assert!(after.imbalance() < 1e-12);
        assert_eq!(plan.overhead(), 12 - 6);
    }

    #[test]
    fn capped_balance_respects_budget_and_helps() {
        let mut h = AccessHistogram::new(8);
        for _ in 0..100 {
            h.record(0);
        }
        for a in 1..8 {
            h.record(a);
        }
        let plan = balance(&h, Some(200));
        assert!(plan.overhead() <= 200);
        let after = plan.apply(&h);
        assert!(after.imbalance() < h.imbalance());
        // Unconstrained would need 7 * 99 = 693.
        let full = balance(&h, None);
        assert_eq!(full.overhead(), 693);
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn out_of_range_panics() {
        AccessHistogram::new(2).record(5);
    }
}
