//! Property-based tests for the simulation engines.

use proptest::prelude::*;
use rescue_netlist::generate;
use rescue_sim::comb::{eval, eval_bool};
use rescue_sim::parallel::{pack_patterns, ParallelSimulator};
use rescue_sim::seq::SeqSimulator;
use rescue_sim::timed::{SetPulse, TimedSimulator};
use rescue_sim::Logic;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel-pattern simulation agrees with serial on every gate.
    #[test]
    fn parallel_matches_serial(seed in 1u64..500, pat_seed in 1u64..500) {
        let net = generate::random_logic(7, 50, 3, seed);
        let mut s = pat_seed;
        let patterns: Vec<Vec<bool>> = (0..32)
            .map(|_| {
                (0..7)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        s >> 33 & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let sim = ParallelSimulator::new(&net);
        let words = sim.run(&net, &pack_patterns(&patterns)).unwrap();
        for (p, pat) in patterns.iter().enumerate() {
            let serial = eval_bool(&net, pat).unwrap();
            for id in net.ids() {
                prop_assert_eq!(words[id.index()] >> p & 1 == 1, serial[id.index()]);
            }
        }
    }

    /// Four-valued evaluation with binary inputs matches two-valued.
    #[test]
    fn four_valued_agrees_on_binary(seed in 1u64..500, bits in 0u32..128) {
        let net = generate::random_logic(7, 40, 3, seed);
        let inputs: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
        let linputs: Vec<Logic> = inputs.iter().map(|&b| b.into()).collect();
        let b = eval_bool(&net, &inputs).unwrap();
        let l = eval(&net, &linputs).unwrap();
        for id in net.ids() {
            prop_assert_eq!(l[id.index()].to_bool(), Some(b[id.index()]), "gate {}", id);
        }
    }

    /// X inputs produce a sound abstraction: wherever the 4-valued result
    /// is binary, both completions of the X input agree with it.
    #[test]
    fn x_is_sound_abstraction(seed in 1u64..300, which in 0usize..7) {
        let net = generate::random_logic(7, 30, 2, seed);
        let mut linputs = vec![Logic::One; 7];
        linputs[which] = Logic::X;
        let l = eval(&net, &linputs).unwrap();
        for value in [false, true] {
            let mut binputs = vec![true; 7];
            binputs[which] = value;
            let b = eval_bool(&net, &binputs).unwrap();
            for id in net.ids() {
                if let Some(v) = l[id.index()].to_bool() {
                    prop_assert_eq!(v, b[id.index()], "gate {} under X={}", id, value);
                }
            }
        }
    }

    /// Timed simulation settles to the combinational steady state and a
    /// zero-pulse run never produces transitions.
    #[test]
    fn timed_steady_state(seed in 1u64..300, bits in 0u32..128) {
        let net = generate::random_logic(7, 40, 2, seed);
        let inputs: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
        let sim = TimedSimulator::new(&net);
        let wave = sim.run(&net, &inputs, &[], 50).unwrap();
        prop_assert!(wave.transitions().is_empty());
        let serial = eval_bool(&net, &inputs).unwrap();
        prop_assert_eq!(wave.initial(), &serial[..]);
    }

    /// A SET pulse always ends: the struck gate returns to its steady
    /// value after the forcing window (no permanent corruption).
    #[test]
    fn set_pulse_is_transient(seed in 1u64..200, site in 0usize..30, width in 1u64..6) {
        let net = generate::random_logic(6, 30, 2, seed);
        let gate = rescue_netlist::GateId(6 + site % 30);
        if gate.index() >= net.len() {
            return Ok(());
        }
        let sim = TimedSimulator::new(&net);
        let inputs = vec![false; 6];
        let wave = sim
            .run(&net, &inputs, &[SetPulse::new(gate, 20, width)], 500)
            .unwrap();
        let final_time = 400;
        for id in net.ids() {
            prop_assert_eq!(
                wave.value_at(id, final_time),
                wave.initial()[id.index()],
                "gate {} stuck after the pulse",
                id
            );
        }
    }

    /// Sequential simulation is deterministic and reset really resets.
    #[test]
    fn seq_reset_reproduces(n in 2usize..8, cycles in 1usize..30) {
        let net = generate::lfsr(n, &[n - 1, n / 2]);
        let mut sim = SeqSimulator::new(&net);
        let first: Vec<u64> = (0..cycles)
            .map(|_| {
                sim.step(&net, &[]).unwrap();
                sim.state_value()
            })
            .collect();
        sim.reset();
        let second: Vec<u64> = (0..cycles)
            .map(|_| {
                sim.step(&net, &[]).unwrap();
                sim.state_value()
            })
            .collect();
        prop_assert_eq!(first, second);
    }
}
