//! Configurable-width packed simulation words.
//!
//! Every packed path in the workspace — PPSFP observability/excitation
//! words, the bit-parallel sequential SEU machines, packed ATPG — was
//! originally hard-wired to one `u64` (64 lanes). [`SimWord`] abstracts
//! the word so the same kernels run over [`PackedWord<W>`], a `[u64; W]`
//! wrapper carrying `64 * W` lanes per evaluation. The wrapper's bitwise
//! ops are plain fixed-length array loops, which LLVM autovectorizes to
//! AVX2/AVX-512 on stable Rust — no intrinsics, no `unsafe`.
//!
//! `u64` itself implements [`SimWord`] with `LANES = 64`, so the default
//! lane width 1 is not a separate code path: it is the exact same generic
//! code instantiated at `u64`, bit-identical to the historical engines.
//!
//! Lane numbering is global: lane `l` of a [`PackedWord<W>`] lives in
//! limb `l / 64`, bit `l % 64` — i.e. limb 0 carries lanes 0..64, limb 1
//! lanes 64..128, and so on. Pattern `p` of a chunk therefore always maps
//! to lane `p`, whatever the width.
//!
//! The one shared tail helper is [`SimWord::live_mask`]: when a pattern
//! chunk does not fill the word, the dead upper lanes must be masked out
//! of every observability/excitation/detection word before popcounts or
//! first-lane scans — otherwise ragged tails silently over-count.

use std::fmt::Debug;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// A packed simulation word: `LANES` independent one-bit machines
/// evaluated by every bitwise op at once.
///
/// Implementors are plain-old-data bit vectors; all operations are
/// lane-wise. See the module docs for the lane numbering convention.
pub trait SimWord:
    Copy
    + Eq
    + Debug
    + Send
    + Sync
    + 'static
    + Not<Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + BitXorAssign
{
    /// Number of one-bit lanes carried per word.
    const LANES: usize;
    /// All lanes clear.
    const ZERO: Self;
    /// All lanes set.
    const ONES: Self;

    /// Broadcasts one bit to every lane.
    fn splat(bit: bool) -> Self;

    /// Mask with the first `n` lanes set (saturating at `LANES`): the
    /// shared ragged-tail helper. Any word derived from a chunk of
    /// `n < LANES` patterns must be ANDed with `live_mask(n)` before
    /// counting or scanning, or the dead lanes over-count.
    fn live_mask(n: usize) -> Self;

    /// Number of set lanes (popcount).
    fn count_ones(self) -> u32;

    /// Whether no lane is set.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Value of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn lane(self, lane: usize) -> bool;

    /// Sets lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn set_lane(&mut self, lane: usize);

    /// Flips lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn toggle_lane(&mut self, lane: usize);

    /// Index of the lowest set lane, or `None` when zero.
    fn first_lane(self) -> Option<usize>;

    /// Calls `f` with the index of every set lane, lowest first.
    fn for_each_lane(self, f: impl FnMut(usize));
}

impl SimWord for u64 {
    const LANES: usize = 64;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    #[inline]
    fn splat(bit: bool) -> Self {
        if bit {
            u64::MAX
        } else {
            0
        }
    }

    #[inline]
    fn live_mask(n: usize) -> Self {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn lane(self, lane: usize) -> bool {
        assert!(lane < 64, "lane {lane} out of range for u64");
        self >> lane & 1 == 1
    }

    #[inline]
    fn set_lane(&mut self, lane: usize) {
        assert!(lane < 64, "lane {lane} out of range for u64");
        *self |= 1u64 << lane;
    }

    #[inline]
    fn toggle_lane(&mut self, lane: usize) {
        assert!(lane < 64, "lane {lane} out of range for u64");
        *self ^= 1u64 << lane;
    }

    #[inline]
    fn first_lane(self) -> Option<usize> {
        if self == 0 {
            None
        } else {
            Some(self.trailing_zeros() as usize)
        }
    }

    #[inline]
    fn for_each_lane(self, mut f: impl FnMut(usize)) {
        let mut w = self;
        while w != 0 {
            f(w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// `64 * W` packed lanes as a flat `[u64; W]`. All ops are fixed-length
/// limb loops, written so LLVM autovectorizes them on stable Rust.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(transparent)]
pub struct PackedWord<const W: usize>(pub [u64; W]);

impl<const W: usize> Not for PackedWord<W> {
    type Output = Self;
    #[inline]
    fn not(mut self) -> Self {
        for limb in &mut self.0 {
            *limb = !*limb;
        }
        self
    }
}

macro_rules! packed_binop {
    ($trait:ident, $fn:ident, $assign_trait:ident, $assign_fn:ident, $op:tt) => {
        impl<const W: usize> $trait for PackedWord<W> {
            type Output = Self;
            #[inline]
            fn $fn(mut self, rhs: Self) -> Self {
                for i in 0..W {
                    self.0[i] $op rhs.0[i];
                }
                self
            }
        }
        impl<const W: usize> $assign_trait for PackedWord<W> {
            #[inline]
            fn $assign_fn(&mut self, rhs: Self) {
                for i in 0..W {
                    self.0[i] $op rhs.0[i];
                }
            }
        }
    };
}

packed_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
packed_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
packed_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

impl<const W: usize> SimWord for PackedWord<W> {
    const LANES: usize = 64 * W;
    const ZERO: Self = PackedWord([0; W]);
    const ONES: Self = PackedWord([u64::MAX; W]);

    #[inline]
    fn splat(bit: bool) -> Self {
        PackedWord([u64::splat(bit); W])
    }

    #[inline]
    fn live_mask(n: usize) -> Self {
        let mut w = [0u64; W];
        for (i, limb) in w.iter_mut().enumerate() {
            *limb = u64::live_mask(n.saturating_sub(i * 64));
        }
        PackedWord(w)
    }

    #[inline]
    fn count_ones(self) -> u32 {
        self.0.iter().map(|limb| limb.count_ones()).sum()
    }

    #[inline]
    fn is_zero(self) -> bool {
        self.0.iter().all(|&limb| limb == 0)
    }

    #[inline]
    fn lane(self, lane: usize) -> bool {
        assert!(
            lane < 64 * W,
            "lane {lane} out of range for PackedWord<{W}>"
        );
        self.0[lane / 64].lane(lane % 64)
    }

    #[inline]
    fn set_lane(&mut self, lane: usize) {
        assert!(
            lane < 64 * W,
            "lane {lane} out of range for PackedWord<{W}>"
        );
        self.0[lane / 64].set_lane(lane % 64);
    }

    #[inline]
    fn toggle_lane(&mut self, lane: usize) {
        assert!(
            lane < 64 * W,
            "lane {lane} out of range for PackedWord<{W}>"
        );
        self.0[lane / 64].toggle_lane(lane % 64);
    }

    #[inline]
    fn first_lane(self) -> Option<usize> {
        for (i, &limb) in self.0.iter().enumerate() {
            if limb != 0 {
                return Some(i * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }

    #[inline]
    fn for_each_lane(self, mut f: impl FnMut(usize)) {
        for (i, &limb) in self.0.iter().enumerate() {
            limb.for_each_lane(|l| f(i * 64 + l));
        }
    }
}

/// Packs up to [`SimWord::LANES`] patterns (outer: pattern, inner: input
/// position) into one word per primary input — the width-generic form of
/// [`crate::parallel::pack_patterns`]. Lane `p` of word `i` is the value
/// of input `i` in pattern `p`.
///
/// # Panics
///
/// Panics if more than `LANES` patterns are supplied or pattern widths
/// differ.
pub fn pack_patterns_wide<Wd: SimWord>(patterns: &[Vec<bool>]) -> Vec<Wd> {
    let mut words = Vec::new();
    pack_patterns_wide_into(patterns, &mut words);
    words
}

/// [`pack_patterns_wide`] into a caller-owned buffer (cleared and
/// refilled), so per-chunk packing in campaign setup reuses one
/// allocation instead of building a fresh `Vec` per golden chunk.
///
/// # Panics
///
/// Panics if more than `LANES` patterns are supplied or pattern widths
/// differ.
pub fn pack_patterns_wide_into<Wd: SimWord>(patterns: &[Vec<bool>], words: &mut Vec<Wd>) {
    assert!(
        patterns.len() <= Wd::LANES,
        "at most {} patterns per word",
        Wd::LANES
    );
    words.clear();
    let Some(first) = patterns.first() else {
        return;
    };
    let width = first.len();
    words.resize(width, Wd::ZERO);
    for (p, pat) in patterns.iter().enumerate() {
        assert_eq!(pat.len(), width, "pattern width mismatch");
        for (i, &bit) in pat.iter().enumerate() {
            if bit {
                words[i].set_lane(p);
            }
        }
    }
}

/// Lane widths the runtime dispatchers accept (`W` in multiples of
/// 64-lane limbs): 1 is the historical `u64` engine, 2/4/8 are the
/// autovectorized wide words (128/256/512 lanes).
pub const SUPPORTED_LANE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_mask(n: usize, lanes: usize) -> Vec<bool> {
        (0..lanes).map(|l| l < n).collect()
    }

    #[test]
    fn u64_live_mask_matches_reference() {
        for n in [0, 1, 3, 63, 64, 65, 200] {
            let m = <u64 as SimWord>::live_mask(n);
            for (l, &want) in reference_mask(n, 64).iter().enumerate() {
                assert_eq!(m.lane(l), want, "n={n} lane={l}");
            }
        }
    }

    #[test]
    fn packed_live_mask_matches_reference() {
        for n in [0, 1, 63, 64, 65, 127, 128, 129, 255, 256, 300] {
            let m = <PackedWord<4> as SimWord>::live_mask(n);
            for (l, &want) in reference_mask(n, 256).iter().enumerate() {
                assert_eq!(m.lane(l), want, "n={n} lane={l}");
            }
            assert_eq!(m.count_ones() as usize, n.min(256), "n={n}");
        }
    }

    #[test]
    fn packed_lane_ops_roundtrip() {
        let mut w = PackedWord::<2>::ZERO;
        assert!(w.is_zero());
        for lane in [0, 1, 63, 64, 100, 127] {
            w.set_lane(lane);
            assert!(w.lane(lane));
        }
        assert_eq!(w.count_ones(), 6);
        assert_eq!(w.first_lane(), Some(0));
        let mut seen = Vec::new();
        w.for_each_lane(|l| seen.push(l));
        assert_eq!(seen, vec![0, 1, 63, 64, 100, 127]);
        w.toggle_lane(0);
        w.toggle_lane(64);
        assert_eq!(w.first_lane(), Some(1));
        assert_eq!(w.count_ones(), 4);
    }

    #[test]
    fn packed_bitops_are_lanewise() {
        let mut a = PackedWord::<2>::ZERO;
        let mut b = PackedWord::<2>::ZERO;
        a.set_lane(3);
        a.set_lane(70);
        b.set_lane(70);
        b.set_lane(120);
        assert_eq!((a & b).count_ones(), 1);
        assert!((a & b).lane(70));
        assert_eq!((a | b).count_ones(), 3);
        assert_eq!((a ^ b).count_ones(), 2);
        assert_eq!((!PackedWord::<2>::ZERO), PackedWord::<2>::ONES);
        let mut c = a;
        c &= b;
        assert_eq!(c, a & b);
        c = a;
        c |= b;
        assert_eq!(c, a | b);
        c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn splat_fills_every_lane() {
        assert_eq!(PackedWord::<4>::splat(true), PackedWord::<4>::ONES);
        assert_eq!(PackedWord::<4>::splat(false), PackedWord::<4>::ZERO);
        assert_eq!(<u64 as SimWord>::splat(true), u64::MAX);
    }

    #[test]
    fn pack_patterns_wide_matches_u64_packing_per_limb() {
        // 130 patterns over 3 inputs: wide packing at W=4 must agree with
        // three successive u64-packed chunks limb-by-limb.
        let mut s = 0x1234_5678_9abc_def0u64;
        let patterns: Vec<Vec<bool>> = (0..130)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        s >> 40 & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let wide: Vec<PackedWord<4>> = pack_patterns_wide(&patterns);
        for (ci, chunk) in patterns.chunks(64).enumerate() {
            let narrow: Vec<u64> = pack_patterns_wide(chunk);
            for i in 0..3 {
                assert_eq!(wide[i].0[ci], narrow[i], "input {i}, limb {ci}");
            }
        }
    }

    #[test]
    fn pack_patterns_wide_agrees_with_legacy_packer() {
        let patterns = vec![vec![true, false], vec![false, true], vec![true, true]];
        let legacy = crate::parallel::pack_patterns(&patterns);
        let wide: Vec<u64> = pack_patterns_wide(&patterns);
        assert_eq!(wide, legacy);
    }

    #[test]
    #[should_panic(expected = "at most 128 patterns")]
    fn pack_patterns_wide_rejects_overflow() {
        let _ = pack_patterns_wide::<PackedWord<2>>(&vec![vec![true]; 129]);
    }
}
