//! Event-driven timed simulation with inertial delays and SET injection.
//!
//! Models single-event-transient (SET) pulses: a particle strike forces a
//! gate output to its complement for a given width; the pulse then races
//! through the combinational logic where it may be *logically masked*
//! (blocked by controlling values) or *electrically masked* (filtered by
//! inertial delays when narrower than a downstream gate delay). This is
//! the substrate of paper Section III.B and the CDN-SET study \[54\].

use crate::error::SimError;
use crate::logic::eval_gate_bool;
use rescue_netlist::{GateId, GateKind, Netlist};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A single-event-transient pulse forced onto one gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetPulse {
    /// The struck gate (its output is inverted).
    pub gate: GateId,
    /// Strike time.
    pub start: u64,
    /// Pulse width in time units; must be > 0.
    pub width: u64,
}

impl SetPulse {
    /// Creates a pulse at `gate` starting at `start` lasting `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(gate: GateId, start: u64, width: u64) -> Self {
        assert!(width > 0, "SET pulse width must be positive");
        SetPulse { gate, start, width }
    }
}

/// A recorded signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Simulation time of the change.
    pub time: u64,
    /// Signal that changed.
    pub gate: GateId,
    /// New value after the change.
    pub value: bool,
}

/// Result of a timed run: the settled initial values plus every transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waveform {
    initial: Vec<bool>,
    transitions: Vec<Transition>,
}

impl Waveform {
    /// The steady-state value of every gate before injection.
    pub fn initial(&self) -> &[bool] {
        &self.initial
    }

    /// All transitions in time order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions of one signal, in time order.
    pub fn transitions_of(&self, gate: GateId) -> Vec<Transition> {
        self.transitions
            .iter()
            .copied()
            .filter(|t| t.gate == gate)
            .collect()
    }

    /// Value of `gate` at time `t` (after applying all transitions `<= t`).
    pub fn value_at(&self, gate: GateId, t: u64) -> bool {
        let mut v = self.initial[gate.index()];
        for tr in &self.transitions {
            if tr.time > t {
                break;
            }
            if tr.gate == gate {
                v = tr.value;
            }
        }
        v
    }

    /// Returns `(start, width)` of every pulse observed on `gate`
    /// (pairs of opposite transitions; a trailing unclosed transition is
    /// reported with width 0 meaning "still deviated at end of run").
    pub fn pulses_of(&self, gate: GateId) -> Vec<(u64, u64)> {
        let trs = self.transitions_of(gate);
        let mut pulses = Vec::new();
        let mut open: Option<u64> = None;
        for tr in trs {
            match open {
                None => open = Some(tr.time),
                Some(start) => {
                    pulses.push((start, tr.time - start));
                    open = None;
                }
            }
        }
        if let Some(start) = open {
            pulses.push((start, 0));
        }
        pulses
    }
}

/// Event-driven timed simulator with per-gate inertial delays.
///
/// # Examples
///
/// Propagate a SET through a buffer chain:
///
/// ```
/// use rescue_netlist::NetlistBuilder;
/// use rescue_sim::timed::{SetPulse, TimedSimulator};
///
/// let mut b = NetlistBuilder::new("chain");
/// let a = b.input("a");
/// let x = b.buf(a);
/// let y = b.buf(x);
/// b.output("y", y);
/// let net = b.finish();
///
/// let sim = TimedSimulator::new(&net);
/// let wave = sim.run(&net, &[false], &[SetPulse::new(x, 10, 5)], 100)?;
/// let pulses = wave.pulses_of(y);
/// assert_eq!(pulses, vec![(11, 5)]); // arrives 1 delay later, same width
/// # Ok::<(), rescue_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimedSimulator {
    delays: Vec<u64>,
    order: Vec<GateId>,
}

impl TimedSimulator {
    /// Creates a simulator with unit delay on every combinational gate.
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_delays(netlist, vec![1; netlist.len()])
    }

    /// Creates a simulator with explicit per-gate delays (time units).
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != netlist.len()` or any delay is 0.
    pub fn with_delays(netlist: &Netlist, delays: Vec<u64>) -> Self {
        assert_eq!(delays.len(), netlist.len(), "one delay per gate");
        assert!(delays.iter().all(|&d| d > 0), "delays must be positive");
        TimedSimulator {
            delays,
            order: netlist.levelize().order().to_vec(),
        }
    }

    /// The inertial delay of `gate`.
    pub fn delay(&self, gate: GateId) -> u64 {
        self.delays[gate.index()]
    }

    /// Runs until `t_end`: settles the circuit at the given `inputs`,
    /// injects every pulse in `pulses`, and records all transitions.
    ///
    /// DFF outputs are frozen at 0 (single-cycle combinational analysis);
    /// latching-window analysis is layered on top by `rescue-radiation`.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when `inputs` has the wrong length.
    pub fn run(
        &self,
        netlist: &Netlist,
        inputs: &[bool],
        pulses: &[SetPulse],
        t_end: u64,
    ) -> Result<Waveform, SimError> {
        let pis = netlist.primary_inputs();
        if inputs.len() != pis.len() {
            return Err(SimError::InputWidthMismatch {
                expected: pis.len(),
                found: inputs.len(),
            });
        }
        // Steady state via levelized evaluation.
        let mut values = vec![false; netlist.len()];
        for (i, &pi) in pis.iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for &id in &self.order {
            let g = netlist.gate(id);
            match g.kind() {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    let ins: Vec<bool> = g.inputs().iter().map(|&p| values[p.index()]).collect();
                    values[id.index()] = eval_gate_bool(kind, &ins);
                }
            }
        }
        let initial = values.clone();
        let fanout = netlist.fanout();

        // Classic one-pending-event inertial-delay algorithm: gates are
        // evaluated the moment an input changes and the resulting value is
        // scheduled `delay` later; a contradictory re-evaluation inside
        // that window cancels the pending event (pulse filtering).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum Ev {
            ForceStart,
            ForceEnd,
            /// Apply a previously scheduled output value.
            Update(bool),
        }
        // Queue keys are (time, class, seq, gate): scheduled updates
        // (class 0) apply before force-window edges (class 1) at the same
        // instant, so a pulse exactly as wide as a downstream delay still
        // passes — inertial filtering drops only *narrower* pulses.
        type QueueKey = (u64, u8, u64, GateId, Ev);
        let mut queue: BinaryHeap<Reverse<QueueKey>> = BinaryHeap::new();
        let mut seq = 0u64;
        // pending[g] = (seq, scheduled value) of the one outstanding event.
        let mut pending: Vec<Option<(u64, bool)>> = vec![None; netlist.len()];
        let mut force: Vec<Option<bool>> = vec![None; netlist.len()];

        for p in pulses {
            queue.push(Reverse((p.start, 1, seq, p.gate, Ev::ForceStart)));
            seq += 1;
            queue.push(Reverse((p.start + p.width, 1, seq, p.gate, Ev::ForceEnd)));
            seq += 1;
        }

        let mut transitions: Vec<Transition> = Vec::new();
        // `initial` keeps the unforced steady-state values; Input/Dff gates
        // revert to it when a force window closes.
        let eval_now = |g: GateId, values: &[bool], force: &[Option<bool>], initial: &[bool]| {
            if let Some(f) = force[g.index()] {
                return f;
            }
            let gate = netlist.gate(g);
            match gate.kind() {
                GateKind::Input | GateKind::Dff => initial[g.index()],
                kind => {
                    let ins: Vec<bool> = gate.inputs().iter().map(|&p| values[p.index()]).collect();
                    eval_gate_bool(kind, &ins)
                }
            }
        };

        while let Some(Reverse((t, _, s, g, ev))) = queue.pop() {
            if t > t_end {
                break;
            }
            let mut changed = false;
            match ev {
                Ev::ForceStart => {
                    force[g.index()] = Some(!values[g.index()]);
                }
                Ev::ForceEnd => {
                    force[g.index()] = None;
                }
                Ev::Update(v) => {
                    match pending[g.index()] {
                        Some((ps, _)) if ps == s => pending[g.index()] = None,
                        _ => continue, // cancelled / superseded event
                    }
                    if values[g.index()] != v {
                        values[g.index()] = v;
                        transitions.push(Transition {
                            time: t,
                            gate: g,
                            value: v,
                        });
                        changed = true;
                    }
                }
            }
            if matches!(ev, Ev::ForceStart | Ev::ForceEnd) {
                // Forced transitions apply immediately (the strike itself
                // has no gate delay).
                pending[g.index()] = None;
                let nv = eval_now(g, &values, &force, &initial);
                if values[g.index()] != nv {
                    values[g.index()] = nv;
                    transitions.push(Transition {
                        time: t,
                        gate: g,
                        value: nv,
                    });
                    changed = true;
                }
            }
            if !changed {
                continue;
            }
            for &f in &fanout[g.index()] {
                if netlist.gate(f).kind().is_sequential() {
                    continue;
                }
                let v_new = eval_now(f, &values, &force, &initial);
                let projected = pending[f.index()]
                    .map(|(_, v)| v)
                    .unwrap_or(values[f.index()]);
                if v_new == projected {
                    continue; // already heading to that value
                }
                if pending[f.index()].is_some() {
                    // Contradicts the in-flight event: cancel it (inertial
                    // pulse filtering).
                    pending[f.index()] = None;
                    if v_new == values[f.index()] {
                        continue; // cancellation alone restores consistency
                    }
                }
                let due = t + self.delays[f.index()];
                queue.push(Reverse((due, 0, seq, f, Ev::Update(v_new))));
                pending[f.index()] = Some((seq, v_new));
                seq += 1;
            }
        }
        transitions.sort_by_key(|t| (t.time, t.gate));
        Ok(Waveform {
            initial,
            transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::NetlistBuilder;

    fn chain(n: usize) -> (rescue_netlist::Netlist, Vec<GateId>) {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut ids = vec![a];
        let mut prev = a;
        for _ in 0..n {
            prev = b.buf(prev);
            ids.push(prev);
        }
        b.output("y", prev);
        (b.finish(), ids)
    }

    #[test]
    fn pulse_propagates_down_chain() {
        let (net, ids) = chain(4);
        let sim = TimedSimulator::new(&net);
        let wave = sim
            .run(&net, &[false], &[SetPulse::new(ids[1], 10, 6)], 100)
            .unwrap();
        // Pulse on ids[1] at t=10 width 6 -> arrives at output (3 more bufs)
        // at t=13 with the same width.
        assert_eq!(wave.pulses_of(ids[4]), vec![(13, 6)]);
    }

    #[test]
    fn narrow_pulse_is_electrically_masked() {
        let (net, ids) = chain(3);
        // Give the second buffer a large inertial delay.
        let mut delays = vec![1u64; net.len()];
        delays[ids[2].index()] = 10;
        let sim = TimedSimulator::with_delays(&net, delays);
        let wave = sim
            .run(&net, &[false], &[SetPulse::new(ids[1], 10, 3)], 200)
            .unwrap();
        // Width-3 pulse cannot pass a 10-unit inertial stage.
        assert!(
            wave.pulses_of(ids[3]).is_empty(),
            "pulse must be filtered: {:?}",
            wave.transitions()
        );
    }

    #[test]
    fn logical_masking_blocks_pulse() {
        let mut b = NetlistBuilder::new("mask");
        let a = b.input("a");
        let en = b.input("en");
        let x = b.buf(a);
        let y = b.and(x, en);
        b.output("y", y);
        let net = b.finish();
        let sim = TimedSimulator::new(&net);
        // en=0 -> AND output is controlled; SET on x cannot pass.
        let wave = sim
            .run(&net, &[false, false], &[SetPulse::new(x, 5, 4)], 50)
            .unwrap();
        assert!(wave.pulses_of(y).is_empty());
        // en=1 -> pulse passes.
        let wave = sim
            .run(&net, &[false, true], &[SetPulse::new(x, 5, 4)], 50)
            .unwrap();
        assert_eq!(wave.pulses_of(y).len(), 1);
    }

    #[test]
    fn steady_state_matches_comb_eval() {
        let net = rescue_netlist::generate::random_logic(6, 40, 3, 5);
        let sim = TimedSimulator::new(&net);
        let ins = vec![true, false, true, true, false, true];
        let wave = sim.run(&net, &ins, &[], 10).unwrap();
        let serial = crate::comb::eval_bool(&net, &ins).unwrap();
        assert_eq!(wave.initial(), &serial[..]);
        assert!(wave.transitions().is_empty(), "no events without pulses");
    }

    #[test]
    fn value_at_follows_transitions() {
        let (net, ids) = chain(1);
        let sim = TimedSimulator::new(&net);
        let wave = sim
            .run(&net, &[false], &[SetPulse::new(ids[0], 10, 5)], 50)
            .unwrap();
        assert!(!wave.value_at(ids[0], 9));
        assert!(wave.value_at(ids[0], 10));
        assert!(wave.value_at(ids[0], 14));
        assert!(!wave.value_at(ids[0], 15));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_pulse_rejected() {
        SetPulse::new(GateId(0), 0, 0);
    }

    #[test]
    fn reconvergent_pulse_handling() {
        // x fans out to two paths of different length reconverging at XOR:
        // the pulse arrives twice, producing two output pulses.
        let mut b = NetlistBuilder::new("reconv");
        let a = b.input("a");
        let x = b.buf(a);
        let p1 = b.buf(x);
        let mut long = x;
        for _ in 0..5 {
            long = b.buf(long);
        }
        let y = b.xor(p1, long);
        b.output("y", y);
        let net = b.finish();
        let sim = TimedSimulator::new(&net);
        // Path skew (4) exceeds the pulse width (2): the pulse arrives at
        // the XOR twice with a gap and produces two output pulses.
        let wave = sim
            .run(&net, &[false], &[SetPulse::new(x, 10, 2)], 100)
            .unwrap();
        let pulses = wave.pulses_of(y);
        assert_eq!(pulses.len(), 2, "unequal path lengths split the pulse");
    }
}
