//! 64-way bit-parallel pattern simulation.
//!
//! Packs 64 input patterns into one `u64` per signal and evaluates the
//! whole batch with word-wide boolean ops — the classic parallel-pattern
//! single-fault propagation substrate used by the fault-simulation crate
//! for large statistical campaigns (paper Section III.B).

use crate::compiled::CompiledNetlist;
use crate::error::SimError;
use crate::wide::SimWord;
use rescue_netlist::{GateId, Netlist};

/// Mask selecting the `n` live pattern bits of a partially filled 64-wide
/// chunk (all ones for a full chunk). Guards the `n == 64` shift overflow
/// that every call site used to hand-roll. This is the `u64`
/// instantiation of [`SimWord::live_mask`], the one shared ragged-tail
/// helper for every packed engine.
///
/// # Examples
///
/// ```
/// use rescue_sim::parallel::live_mask;
/// assert_eq!(live_mask(3), 0b111);
/// assert_eq!(live_mask(64), u64::MAX);
/// assert_eq!(live_mask(0), 0);
/// ```
#[inline]
pub fn live_mask(n: usize) -> u64 {
    <u64 as SimWord>::live_mask(n)
}

/// Packs up to 64 bool patterns (outer: pattern, inner: input position)
/// into one word per primary input — the `u64` instantiation of
/// [`crate::wide::pack_patterns_wide`].
///
/// Bit `p` of word `i` is the value of input `i` in pattern `p`.
///
/// # Panics
///
/// Panics if more than 64 patterns are supplied or pattern widths differ.
pub fn pack_patterns(patterns: &[Vec<bool>]) -> Vec<u64> {
    crate::wide::pack_patterns_wide(patterns)
}

/// Reusable 64-way parallel-pattern evaluator.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_sim::parallel::{pack_patterns, ParallelSimulator};
///
/// let c = generate::c17();
/// let sim = ParallelSimulator::new(&c);
/// let pats = vec![vec![true; 5], vec![false; 5]];
/// let words = sim.run(&c, &pack_patterns(&pats))?;
/// assert_eq!(words.len(), c.len());
/// # Ok::<(), rescue_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSimulator {
    compiled: CompiledNetlist,
}

impl ParallelSimulator {
    /// Prepares an evaluator for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        ParallelSimulator {
            compiled: CompiledNetlist::new(netlist),
        }
    }

    /// The compiled arena backing this evaluator.
    pub fn compiled(&self) -> &CompiledNetlist {
        &self.compiled
    }

    /// Evaluates 64 packed patterns; `input_words[i]` carries input `i`.
    /// DFF outputs evaluate to all-zero words.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when the word count differs from
    /// the primary-input count.
    pub fn run(&self, netlist: &Netlist, input_words: &[u64]) -> Result<Vec<u64>, SimError> {
        self.run_with_forced(netlist, input_words, None)
    }

    /// Like [`ParallelSimulator::run`], but optionally forces the output
    /// of one gate to a fixed word — the hook used for stuck-at fault
    /// simulation (`force = Some((site, 0))` is stuck-at-0 across all 64
    /// patterns, `u64::MAX` stuck-at-1).
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when the word count differs from
    /// the primary-input count.
    pub fn run_with_forced(
        &self,
        _netlist: &Netlist,
        input_words: &[u64],
        force: Option<(GateId, u64)>,
    ) -> Result<Vec<u64>, SimError> {
        let mut values = Vec::new();
        self.compiled.eval_words_into(
            input_words,
            force.map(|(site, word)| (site.index() as u32, word)),
            &mut values,
        )?;
        Ok(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::eval_bool;
    use rescue_netlist::generate;

    #[test]
    fn parallel_matches_serial() {
        let net = generate::random_logic(8, 60, 4, 99);
        let sim = ParallelSimulator::new(&net);
        let mut patterns = Vec::new();
        let mut s = 12345u64;
        for _ in 0..64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            patterns.push((0..8).map(|i| s >> (i + 3) & 1 == 1).collect::<Vec<_>>());
        }
        let words = sim.run(&net, &pack_patterns(&patterns)).unwrap();
        for (p, pat) in patterns.iter().enumerate() {
            let serial = eval_bool(&net, pat).unwrap();
            for id in net.ids() {
                let bit = words[id.index()] >> p & 1 == 1;
                assert_eq!(bit, serial[id.index()], "pattern {p}, gate {id}");
            }
        }
    }

    #[test]
    fn forcing_injects_stuck_value() {
        let c = generate::c17();
        let sim = ParallelSimulator::new(&c);
        let pats = vec![vec![true; 5]];
        let packed = pack_patterns(&pats);
        let site = GateId(5); // G10 = nand(G1,G3), normally 0 on all-ones
        let good = sim.run(&c, &packed).unwrap();
        assert_eq!(good[site.index()] & 1, 0);
        let bad = sim
            .run_with_forced(&c, &packed, Some((site, u64::MAX)))
            .unwrap();
        assert_eq!(bad[site.index()] & 1, 1);
        // G22 = nand(G10, G16); flipping G10 must flip G22 here.
        assert_ne!(good[9] & 1, bad[9] & 1);
    }

    #[test]
    fn force_on_primary_input() {
        let c = generate::c17();
        let sim = ParallelSimulator::new(&c);
        let packed = pack_patterns(&[vec![true; 5]]);
        let pi = c.primary_inputs()[0];
        let v = sim.run_with_forced(&c, &packed, Some((pi, 0))).unwrap();
        assert_eq!(v[pi.index()], 0);
    }

    #[test]
    fn pack_patterns_layout() {
        let w = pack_patterns(&[vec![true, false], vec![false, true]]);
        assert_eq!(w, vec![0b01, 0b10]);
        assert!(pack_patterns(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn pack_rejects_too_many() {
        pack_patterns(&vec![vec![true]; 65]);
    }
}
