//! Single-pattern combinational evaluation (4-valued and 2-valued).

use crate::compiled::CompiledNetlist;
use crate::error::SimError;
use crate::logic::Logic;
use rescue_netlist::Netlist;

/// Reusable combinational evaluator holding the levelized order.
///
/// Amortizes levelization across many evaluations; for one-off calls use
/// [`eval`] / [`eval_bool`].
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_sim::comb::CombSimulator;
/// use rescue_sim::Logic;
///
/// let c = generate::c17();
/// let sim = CombSimulator::new(&c);
/// let vals = sim.run(&c, &[Logic::One; 5])?;
/// assert!(!vals.is_empty());
/// # Ok::<(), rescue_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CombSimulator {
    compiled: CompiledNetlist,
}

impl CombSimulator {
    /// Prepares an evaluator for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        CombSimulator {
            compiled: CompiledNetlist::new(netlist),
        }
    }

    /// Evaluates `netlist` with four-valued `inputs` (one per primary
    /// input, in declaration order). DFF outputs evaluate to `X`.
    ///
    /// Returns the value of every gate, indexed by [`rescue_netlist::GateId`].
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when `inputs` has the wrong length.
    pub fn run(&self, _netlist: &Netlist, inputs: &[Logic]) -> Result<Vec<Logic>, SimError> {
        let c = &self.compiled;
        let pis = c.primary_inputs();
        if inputs.len() != pis.len() {
            return Err(SimError::InputWidthMismatch {
                expected: pis.len(),
                found: inputs.len(),
            });
        }
        let mut values = vec![Logic::X; c.len()];
        for (i, &pi) in pis.iter().enumerate() {
            values[pi as usize] = inputs[i];
        }
        for &g in c.eval_order() {
            let v = c.eval_logic(g as usize, &values);
            values[g as usize] = v;
        }
        Ok(values)
    }
}

/// One-shot four-valued evaluation. See [`CombSimulator::run`].
///
/// # Errors
///
/// [`SimError::InputWidthMismatch`] when `inputs` has the wrong length.
pub fn eval(netlist: &Netlist, inputs: &[Logic]) -> Result<Vec<Logic>, SimError> {
    CombSimulator::new(netlist).run(netlist, inputs)
}

/// One-shot two-valued evaluation of a combinational netlist.
///
/// DFF outputs evaluate to `false`; for sequential designs use
/// [`crate::seq::SeqSimulator`].
///
/// # Errors
///
/// [`SimError::InputWidthMismatch`] when `inputs` has the wrong length.
pub fn eval_bool(netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
    let c = CompiledNetlist::new(netlist);
    let state = vec![false; c.dffs().len()];
    let mut values = Vec::new();
    c.eval_bools_into(inputs, &state, &mut values)?;
    Ok(values)
}

/// Extracts the primary-output values from a full value vector.
pub fn outputs_of<T: Copy>(netlist: &Netlist, values: &[T]) -> Vec<T> {
    netlist
        .primary_outputs()
        .iter()
        .map(|(_, g)| values[g.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::{generate, NetlistBuilder};

    #[test]
    fn c17_truth_spot_checks() {
        let c = generate::c17();
        // All-ones: G10=nand(1,1)=0, G11=0, G16=nand(1,0)=1, G19=nand(0,1)=1,
        // G22=nand(0,1)=1, G23=nand(1,1)=0
        let v = eval_bool(&c, &[true; 5]).unwrap();
        let outs = outputs_of(&c, &v);
        assert_eq!(outs, vec![true, false]);
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let a = generate::adder(4);
        for x in 0u32..16 {
            for y in 0u32..16 {
                for cin in 0..2u32 {
                    let mut ins = vec![false; 9];
                    for b in 0..4 {
                        ins[b] = x >> b & 1 == 1;
                        ins[4 + b] = y >> b & 1 == 1;
                    }
                    ins[8] = cin == 1;
                    let v = eval_bool(&a, &ins).unwrap();
                    let outs = outputs_of(&a, &v);
                    let got: u32 = outs.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
                    assert_eq!(got, x + y + cin, "{x}+{y}+{cin}");
                }
            }
        }
    }

    #[test]
    fn cla_adder_matches_ripple() {
        let ripple = generate::adder(5);
        let cla = generate::cla_adder(5);
        for x in 0u32..32 {
            for y in 0u32..32 {
                for cin in 0..2u32 {
                    let mut ins = vec![false; 11];
                    for b in 0..5 {
                        ins[b] = x >> b & 1 == 1;
                        ins[5 + b] = y >> b & 1 == 1;
                    }
                    ins[10] = cin == 1;
                    let vr = eval_bool(&ripple, &ins).unwrap();
                    let vc = eval_bool(&cla, &ins).unwrap();
                    let sum = |net: &rescue_netlist::Netlist, v: &[bool]| -> u32 {
                        outputs_of(net, v)
                            .iter()
                            .enumerate()
                            .map(|(i, &b)| (b as u32) << i)
                            .sum()
                    };
                    assert_eq!(sum(&ripple, &vr), sum(&cla, &vc), "{x}+{y}+{cin}");
                    assert_eq!(sum(&cla, &vc), x + y + cin);
                }
            }
        }
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let m = generate::multiplier(4);
        for x in 0u32..16 {
            for y in 0u32..16 {
                let mut ins = vec![false; 8];
                for b in 0..4 {
                    ins[b] = x >> b & 1 == 1;
                    ins[4 + b] = y >> b & 1 == 1;
                }
                let v = eval_bool(&m, &ins).unwrap();
                let got: u32 = outputs_of(&m, &v)
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (b as u32) << i)
                    .sum();
                assert_eq!(got, x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn alu_ops() {
        let a = generate::alu(4);
        let run = |x: u32, y: u32, op: u32| -> u32 {
            let mut ins = vec![false; 10];
            for b in 0..4 {
                ins[b] = x >> b & 1 == 1;
                ins[4 + b] = y >> b & 1 == 1;
            }
            ins[8] = op & 1 == 1;
            ins[9] = op >> 1 & 1 == 1;
            let v = eval_bool(&a, &ins).unwrap();
            outputs_of(&a, &v)
                .iter()
                .enumerate()
                .map(|(i, &b)| (b as u32) << i)
                .sum()
        };
        assert_eq!(run(5, 3, 0), 8); // add
        assert_eq!(run(5, 3, 1), 1); // and
        assert_eq!(run(5, 3, 2), 7); // or
        assert_eq!(run(5, 3, 3), 6); // xor
    }

    #[test]
    fn four_valued_x_propagation() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let c = b.input("c");
        let g = b.and(a, c);
        b.output("y", g);
        let n = b.finish();
        let v = eval(&n, &[Logic::X, Logic::Zero]).unwrap();
        assert_eq!(v[g.index()], Logic::Zero, "0 dominates X on AND");
        let v = eval(&n, &[Logic::X, Logic::One]).unwrap();
        assert_eq!(v[g.index()], Logic::X);
    }

    #[test]
    fn width_mismatch_error() {
        let c = generate::c17();
        assert!(matches!(
            eval_bool(&c, &[true; 3]),
            Err(SimError::InputWidthMismatch {
                expected: 5,
                found: 3
            })
        ));
        assert!(eval(&c, &[Logic::One; 6]).is_err());
    }

    #[test]
    fn dff_outputs_are_x_in_comb_eval() {
        let mut b = NetlistBuilder::new("s");
        let a = b.input("a");
        let q = b.dff(a);
        let y = b.buf(q);
        b.output("y", y);
        let n = b.finish();
        let v = eval(&n, &[Logic::One]).unwrap();
        assert_eq!(v[y.index()], Logic::X);
    }
}
