//! Logic simulation engines for RESCUE-rs.
//!
//! Four engines over the [`rescue_netlist`] IR, each serving different
//! RESCUE experiments:
//!
//! * [`comb::CombSimulator`] — single-pattern 4-valued (`0/1/X/Z`)
//!   combinational evaluation, the reference engine.
//! * [`comb::eval_bool`] / [`parallel::ParallelSimulator`] — 2-valued and
//!   64-way bit-parallel evaluation for fast fault simulation campaigns
//!   (paper Section III.B: random fault injection at scale).
//! * [`seq::SeqSimulator`] — multi-cycle sequential simulation with DFF
//!   state, used by SBST grading and SEU (bit-flip) injection.
//! * [`compiled_seq::SeqWordMachine`] — 64 packed sequential machines per
//!   `u64` word over a shared [`compiled_seq::GoldenTrace`] of per-cycle
//!   state snapshots, the substrate of bit-parallel SEU campaigns.
//! * [`wide::SimWord`] / [`wide::PackedWord`] — configurable lane width
//!   for every packed engine: the same kernels instantiate at `u64`
//!   (64 lanes, the default) or `[u64; W]` wide words (up to 512 lanes)
//!   that LLVM autovectorizes on stable Rust.
//! * [`timed::TimedSimulator`] — event-driven timed simulation with
//!   inertial delays, used to propagate SET pulses and model electrical
//!   masking (paper Sections III.B and the CDN-SET study \[54\]).
//!
//! The combinational, parallel-pattern and sequential engines share the
//! [`compiled::CompiledNetlist`] flat-arena representation (CSR pin
//! slices, baked-in levelized order, fanout CSR), compiled once per
//! design; the fault-simulation crate builds its incremental cone engine
//! on the same arena.
//!
//! # Examples
//!
//! ```
//! use rescue_netlist::generate;
//! use rescue_sim::comb::eval_bool;
//!
//! let adder = generate::adder(4);
//! // 3 + 5, cin=0 -> 8
//! let mut inputs = vec![false; 9];
//! inputs[0] = true; // a0
//! inputs[1] = true; // a1
//! inputs[4] = true; // b0
//! inputs[6] = true; // b2
//! let values = eval_bool(&adder, &inputs)?;
//! let sum: u32 = adder
//!     .primary_outputs()
//!     .iter()
//!     .take(4)
//!     .enumerate()
//!     .map(|(i, (_, g))| (values[g.index()] as u32) << i)
//!     .sum();
//! assert_eq!(sum, 8);
//! # Ok::<(), rescue_sim::SimError>(())
//! ```

pub mod codec;
pub mod comb;
pub mod compiled;
pub mod compiled_seq;
pub mod error;
pub mod logic;
pub mod parallel;
pub mod seq;
pub mod sweep;
pub mod timed;
pub mod wide;

pub use error::SimError;
pub use logic::Logic;
