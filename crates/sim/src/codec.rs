//! Little-endian byte codec helpers shared by the compiled-artifact wire
//! formats ([`crate::compiled::CompiledNetlist::to_bytes`] and the
//! campaign-plan codecs in `rescue-faults`).
//!
//! Arrays are length-prefixed with a `u64` element count; booleans pack
//! LSB-first into bytes. Readers return `None` on any malformed input so
//! corrupt cache entries degrade to a rebuild instead of a panic, and
//! length prefixes are validated against the remaining payload before any
//! allocation sized from untrusted bytes.

/// Appends a `u64` element-count prefix.
pub fn put_len(buf: &mut Vec<u8>, len: usize) {
    buf.extend_from_slice(&(len as u64).to_le_bytes());
}

/// Reads a `u64` element-count prefix.
pub fn take_len(bytes: &[u8], off: &mut usize) -> Option<usize> {
    let raw = u64::from_le_bytes(bytes.get(*off..*off + 8)?.try_into().ok()?);
    *off += 8;
    usize::try_from(raw).ok()
}

/// Appends a length-prefixed `u32` array.
pub fn put_u32s(buf: &mut Vec<u8>, xs: &[u32]) {
    put_len(buf, xs.len());
    buf.reserve(xs.len() * 4);
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// Reads a length-prefixed `u32` array.
pub fn take_u32s(bytes: &[u8], off: &mut usize) -> Option<Vec<u32>> {
    let len = take_len(bytes, off)?;
    let end = off.checked_add(len.checked_mul(4)?)?;
    let slice = bytes.get(*off..end)?;
    *off = end;
    Some(
        slice
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

/// Appends a length-prefixed `u64` array.
pub fn put_u64s(buf: &mut Vec<u8>, xs: &[u64]) {
    put_len(buf, xs.len());
    buf.reserve(xs.len() * 8);
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// Reads a length-prefixed `u64` array.
pub fn take_u64s(bytes: &[u8], off: &mut usize) -> Option<Vec<u64>> {
    let len = take_len(bytes, off)?;
    let end = off.checked_add(len.checked_mul(8)?)?;
    let slice = bytes.get(*off..end)?;
    *off = end;
    Some(
        slice
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

/// Appends a length-prefixed bit-packed bool array (LSB-first).
pub fn put_bits(buf: &mut Vec<u8>, bits: &[bool]) {
    put_len(buf, bits.len());
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i & 7);
        }
        if i & 7 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        buf.push(byte);
    }
}

/// Reads a length-prefixed bit-packed bool array.
pub fn take_bits(bytes: &[u8], off: &mut usize) -> Option<Vec<bool>> {
    let len = take_len(bytes, off)?;
    let nbytes = len.div_ceil(8);
    let end = off.checked_add(nbytes)?;
    let slice = bytes.get(*off..end)?;
    *off = end;
    Some((0..len).map(|i| slice[i / 8] >> (i & 7) & 1 != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        put_u32s(&mut buf, &[0, 1, u32::MAX, 42]);
        put_u32s(&mut buf, &[]);
        let mut off = 0;
        assert_eq!(take_u32s(&buf, &mut off).unwrap(), vec![0, 1, u32::MAX, 42]);
        assert_eq!(take_u32s(&buf, &mut off).unwrap(), Vec::<u32>::new());
        assert_eq!(off, buf.len());
    }

    #[test]
    fn bit_round_trip_at_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            put_bits(&mut buf, &bits);
            let mut off = 0;
            assert_eq!(take_bits(&buf, &mut off).unwrap(), bits, "len {len}");
            assert_eq!(off, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        put_u32s(&mut buf, &[1, 2, 3]);
        let mut off = 0;
        assert!(take_u32s(&buf[..buf.len() - 1], &mut off).is_none());
        // A length prefix far beyond the payload must not allocate.
        let huge = u64::MAX.to_le_bytes().to_vec();
        let mut off = 0;
        assert!(take_u32s(&huge, &mut off).is_none());
        let mut off = 0;
        assert!(take_bits(&huge, &mut off).is_none());
    }
}
