//! Bit-parallel sequential simulation: 64 independent machines per word.
//!
//! # Design: lane packing over a shared golden trace
//!
//! Sequential fault-injection campaigns (SEU analysis, transition tests)
//! repeat the same structure thousands of times: warm a machine up to
//! some cycle, perturb one state bit, then watch a short horizon. Two
//! observations make this embarrassingly word-parallel:
//!
//! 1. **The warmup prefix is shared.** Every injection at cycle `c`
//!    starts from the *same* golden state. [`GoldenTrace::record`] runs
//!    the scalar two-valued simulation once and keeps a per-cycle state
//!    snapshot plus the primary-output values of every cycle. An
//!    injection at `(dff, c)` never re-simulates cycles `0..c` — it
//!    starts from `snapshot(c)` directly, and the golden half of the
//!    lockstep comparison is a table lookup instead of a second machine.
//!
//! 2. **Faulty machines diverge independently.** Up to
//!    [`crate::wide::SimWord::LANES`] injections that share an injection
//!    cycle are packed into the bit lanes of a [`LaneMachine`]: each DFF
//!    holds a word whose lane `l` is machine `l`'s state ([`SeqWordMachine`]
//!    is the 64-lane `u64` default; [`crate::wide::PackedWord`] widens a
//!    machine word to `64 * W` lanes). The golden snapshot is broadcast
//!    into every lane, then each lane flips *its own* flop via
//!    [`LaneMachine::flip_lane`]. One [`LaneMachine::step`] then advances
//!    all lanes with the same gate kernels the scalar engine uses
//!    ([`crate::compiled::eval_word_from`]), so each lane's trajectory is
//!    bit-identical to a scalar run of that injection.
//!
//! Comparison against the golden trace is also word-wide:
//! [`LaneMachine::output_diff_mask`] XORs each output word with the
//! broadcast golden output bit and ORs the differences into a single
//! word — lane `l` set means machine `l` has failed. Campaigns early-exit
//! a batch once every live lane has failed (the mask equals the live
//! mask), which is what makes dense-failure designs like LFSRs finish in
//! a handful of steps.
//!
//! The word domain is strictly two-valued, matching
//! [`crate::seq::SeqSimulator`]'s reset-to-0 convention, so lane 0 of a
//! broadcast machine with no flips reproduces the scalar simulator
//! exactly — the property the `rescue-radiation` equivalence suite pins
//! down.

use crate::compiled::CompiledNetlist;
use crate::error::SimError;
use crate::wide::SimWord;

/// Broadcasts one bit across all 64 lanes.
#[inline]
pub fn broadcast(bit: bool) -> u64 {
    if bit {
        u64::MAX
    } else {
        0
    }
}

/// Broadcasts a scalar input pattern into per-input lane words.
pub fn broadcast_inputs(inputs: &[bool]) -> Vec<u64> {
    splat_inputs(inputs)
}

/// Width-generic form of [`broadcast_inputs`]: broadcasts a scalar input
/// pattern into per-input words of any [`SimWord`] lane width.
pub fn splat_inputs<Wd: SimWord>(inputs: &[bool]) -> Vec<Wd> {
    inputs.iter().map(|&b| Wd::splat(b)).collect()
}

/// Scalar golden trace with per-cycle state snapshots.
///
/// `snapshot(c)` is the flip-flop state *after* `c` clock cycles
/// (`snapshot(0)` is the reset state); `outputs_at(c)` are the primary
/// outputs observed *during* cycle `c` (the values
/// [`crate::seq::SeqSimulator::step`] number `c` returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenTrace {
    snapshots: Vec<Vec<bool>>,
    outputs: Vec<Vec<bool>>,
}

impl GoldenTrace {
    /// Simulates `cycles` clock cycles from reset with constant `inputs`,
    /// recording every intermediate state and output vector.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when `inputs` has the wrong
    /// length.
    pub fn record(
        compiled: &CompiledNetlist,
        inputs: &[bool],
        cycles: usize,
    ) -> Result<Self, SimError> {
        let mut state = vec![false; compiled.dffs().len()];
        let mut values = Vec::new();
        let mut snapshots = Vec::with_capacity(cycles + 1);
        let mut outputs = Vec::with_capacity(cycles);
        snapshots.push(state.clone());
        for _ in 0..cycles {
            compiled.eval_bools_into(inputs, &state, &mut values)?;
            outputs.push(
                compiled
                    .po_drivers()
                    .iter()
                    .map(|&g| values[g as usize])
                    .collect(),
            );
            for (i, &d) in compiled.dff_d().iter().enumerate() {
                state[i] = values[d as usize];
            }
            snapshots.push(state.clone());
        }
        Ok(GoldenTrace { snapshots, outputs })
    }

    /// Number of recorded clock cycles.
    pub fn cycles(&self) -> usize {
        self.outputs.len()
    }

    /// Flip-flop state after `cycle` clock cycles (0 = reset state).
    ///
    /// # Panics
    ///
    /// Panics when `cycle > cycles()`.
    pub fn snapshot(&self, cycle: usize) -> &[bool] {
        &self.snapshots[cycle]
    }

    /// Primary-output values observed during `cycle`.
    ///
    /// # Panics
    ///
    /// Panics when `cycle >= cycles()`.
    pub fn outputs_at(&self, cycle: usize) -> &[bool] {
        &self.outputs[cycle]
    }
}

/// [`SimWord::LANES`] independent sequential machines packed into the
/// lane words of one [`SimWord`] — 64 per `u64`, `64 * W` per
/// [`crate::wide::PackedWord`]. [`SeqWordMachine`] is the historical
/// 64-lane `u64` instantiation.
///
/// Reusable scratch: allocate once per worker, then
/// [`LaneMachine::load_broadcast`] + [`LaneMachine::flip_lane`] +
/// [`LaneMachine::step`] per injection batch — no per-batch
/// allocation.
///
/// # Examples
///
/// Lane 0 with no flip reproduces the scalar simulator:
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_sim::compiled::CompiledNetlist;
/// use rescue_sim::compiled_seq::{GoldenTrace, SeqWordMachine};
///
/// let lfsr = generate::lfsr(8, &[7, 5, 4, 3]);
/// let compiled = CompiledNetlist::new(&lfsr);
/// let trace = GoldenTrace::record(&compiled, &[], 6)?;
///
/// let mut m = SeqWordMachine::new(&compiled);
/// m.load_broadcast(&compiled, trace.snapshot(2));
/// m.flip_lane(3, 5); // lane 5 takes an SEU in flop 3; lane 0 stays golden
/// m.step(&compiled, &[])?;
/// let diff = m.output_diff_mask(&compiled, trace.outputs_at(2));
/// assert_eq!(diff & 1, 0, "unflipped lane tracks the golden trace");
/// # Ok::<(), rescue_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneMachine<Wd: SimWord> {
    state: Vec<Wd>,
    values: Vec<Wd>,
    /// Golden-snapshot restores ([`LaneMachine::load_broadcast`]
    /// calls) since construction / the last counter flush. Plain field:
    /// maintained unconditionally so enabled telemetry adds no branch
    /// to the batch loop.
    restores: u64,
    /// Clock cycles stepped since construction / the last counter flush.
    steps: u64,
}

/// The 64-lane `u64` [`LaneMachine`] every scalar-width campaign uses.
pub type SeqWordMachine = LaneMachine<u64>;

impl<Wd: SimWord> LaneMachine<Wd> {
    /// Creates a machine for `compiled` with all lanes reset to 0.
    pub fn new(compiled: &CompiledNetlist) -> Self {
        LaneMachine {
            state: vec![Wd::ZERO; compiled.dffs().len()],
            values: vec![Wd::ZERO; compiled.len()],
            restores: 0,
            steps: 0,
        }
    }

    /// Loads `state_bits` into every lane (broadcast) — the
    /// snapshot-restore primitive of golden-trace campaigns.
    ///
    /// # Panics
    ///
    /// Panics when `state_bits` has the wrong width.
    pub fn load_broadcast(&mut self, compiled: &CompiledNetlist, state_bits: &[bool]) {
        assert_eq!(state_bits.len(), compiled.dffs().len(), "state width");
        self.restores += 1;
        for (w, &b) in self.state.iter_mut().zip(state_bits) {
            *w = Wd::splat(b);
        }
    }

    /// Snapshot restores since construction or the last
    /// [`LaneMachine::take_counters`].
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// Clock cycles stepped since construction or the last
    /// [`LaneMachine::take_counters`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Returns `(restores, steps)` and zeroes both — campaigns flush
    /// these into the `sim.*` metrics at shard granularity.
    pub fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.restores, self.steps);
        self.restores = 0;
        self.steps = 0;
        out
    }

    /// Flips flop `dff` in lane `lane` only — the packed SEU primitive.
    ///
    /// # Panics
    ///
    /// Panics when `dff` or `lane` is out of range.
    pub fn flip_lane(&mut self, dff: usize, lane: usize) {
        assert!(lane < Wd::LANES, "lane out of range");
        self.state[dff].toggle_lane(lane);
    }

    /// Per-flop lane words of the current state.
    pub fn state_words(&self) -> &[Wd] {
        &self.state
    }

    /// Per-gate lane words of the last evaluated cycle.
    pub fn values(&self) -> &[Wd] {
        &self.values
    }

    /// Advances all lanes one clock cycle: evaluates the combinational
    /// logic with the present state, then captures each flop's `D` word.
    /// Gate values of the evaluated cycle stay readable via
    /// [`LaneMachine::values`] / the diff masks until the next step.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when `input_words` has the wrong
    /// length.
    pub fn step(&mut self, compiled: &CompiledNetlist, input_words: &[Wd]) -> Result<(), SimError> {
        if input_words.len() != compiled.primary_inputs().len() {
            return Err(SimError::InputWidthMismatch {
                expected: compiled.primary_inputs().len(),
                found: input_words.len(),
            });
        }
        self.steps += 1;
        for (i, &pi) in compiled.primary_inputs().iter().enumerate() {
            self.values[pi as usize] = input_words[i];
        }
        for (i, &dff) in compiled.dffs().iter().enumerate() {
            self.values[dff as usize] = self.state[i];
        }
        for &g in compiled.eval_order() {
            let v = compiled.eval_word(g as usize, &self.values);
            self.values[g as usize] = v;
        }
        for (i, &d) in compiled.dff_d().iter().enumerate() {
            self.state[i] = self.values[d as usize];
        }
        Ok(())
    }

    /// Lanes whose last evaluated outputs differ from the golden output
    /// vector `golden_po` (bit `l` set = lane `l` differs on ≥1 output).
    ///
    /// # Panics
    ///
    /// Panics when `golden_po` has the wrong width.
    pub fn output_diff_mask(&self, compiled: &CompiledNetlist, golden_po: &[bool]) -> Wd {
        assert_eq!(golden_po.len(), compiled.po_drivers().len(), "output width");
        compiled
            .po_drivers()
            .iter()
            .zip(golden_po)
            .fold(Wd::ZERO, |acc, (&g, &b)| {
                acc | (self.values[g as usize] ^ Wd::splat(b))
            })
    }

    /// Lanes whose current state differs from `golden_state`.
    ///
    /// # Panics
    ///
    /// Panics when `golden_state` has the wrong width.
    pub fn state_diff_mask(&self, golden_state: &[bool]) -> Wd {
        assert_eq!(golden_state.len(), self.state.len(), "state width");
        self.state
            .iter()
            .zip(golden_state)
            .fold(Wd::ZERO, |acc, (&w, &b)| acc | (w ^ Wd::splat(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqSimulator;
    use rescue_netlist::generate;

    #[test]
    fn trace_matches_scalar_simulator() {
        let net = generate::lfsr(8, &[7, 5, 4, 3]);
        let compiled = CompiledNetlist::new(&net);
        let trace = GoldenTrace::record(&compiled, &[], 12).unwrap();
        let mut sim = SeqSimulator::new(&net);
        assert_eq!(trace.snapshot(0), sim.state());
        for c in 0..12 {
            let out = sim.step(&net, &[]).unwrap();
            assert_eq!(trace.outputs_at(c), &out[..], "outputs cycle {c}");
            assert_eq!(trace.snapshot(c + 1), sim.state(), "state cycle {c}");
        }
    }

    #[test]
    fn broadcast_lanes_track_scalar_run() {
        let net = generate::counter(6);
        let compiled = CompiledNetlist::new(&net);
        let mut m = SeqWordMachine::new(&compiled);
        let mut sim = SeqSimulator::new(&net);
        for cycle in 0..10 {
            m.step(&compiled, &[]).unwrap();
            sim.step(&net, &[]).unwrap();
            for (i, w) in m.state_words().iter().enumerate() {
                let expect = broadcast(sim.state()[i]);
                assert_eq!(*w, expect, "cycle {cycle}, flop {i}: all lanes agree");
            }
        }
    }

    #[test]
    fn flipped_lane_matches_scalar_flip() {
        let net = generate::lfsr(6, &[5, 3]);
        let compiled = CompiledNetlist::new(&net);
        let trace = GoldenTrace::record(&compiled, &[], 10).unwrap();
        // Flip flop 2 at cycle 3: lane 7 packed vs a scalar machine.
        let mut m = SeqWordMachine::new(&compiled);
        m.load_broadcast(&compiled, trace.snapshot(3));
        m.flip_lane(2, 7);
        let mut scalar = SeqSimulator::new(&net);
        scalar.load_state(trace.snapshot(3)).unwrap();
        scalar.flip_state(2);
        for k in 0..5 {
            m.step(&compiled, &[]).unwrap();
            let out = scalar.step(&net, &[]).unwrap();
            // Lane 7 state equals the scalar faulty machine.
            for (i, w) in m.state_words().iter().enumerate() {
                assert_eq!(w >> 7 & 1 == 1, scalar.state()[i], "step {k}, flop {i}");
            }
            // Lane 7 output-diff equals the scalar golden/faulty diff.
            let diff = m.output_diff_mask(&compiled, trace.outputs_at(3 + k));
            let scalar_diff = out.iter().zip(trace.outputs_at(3 + k)).any(|(a, b)| a != b);
            assert_eq!(diff >> 7 & 1 == 1, scalar_diff, "step {k} output diff");
            // Lane 0 (never flipped) stays on the golden trace.
            assert_eq!(diff & 1, 0, "step {k}: golden lane clean");
        }
        let sdiff = m.state_diff_mask(trace.snapshot(8));
        assert_eq!(
            sdiff >> 7 & 1 == 1,
            scalar.state() != trace.snapshot(8),
            "final state diff"
        );
        assert_eq!(sdiff & 1, 0, "golden lane state matches snapshot");
    }

    #[test]
    fn machine_counters_track_restores_and_steps() {
        let net = generate::counter(4);
        let compiled = CompiledNetlist::new(&net);
        let trace = GoldenTrace::record(&compiled, &[], 3).unwrap();
        let mut m = SeqWordMachine::new(&compiled);
        assert_eq!((m.restores(), m.steps()), (0, 0));
        m.load_broadcast(&compiled, trace.snapshot(1));
        m.step(&compiled, &[]).unwrap();
        m.step(&compiled, &[]).unwrap();
        assert_eq!(m.take_counters(), (1, 2));
        assert_eq!((m.restores(), m.steps()), (0, 0), "take zeroes");
    }

    #[test]
    fn width_mismatch_is_reported() {
        let net = generate::c17();
        let compiled = CompiledNetlist::new(&net);
        let mut m = SeqWordMachine::new(&compiled);
        assert!(matches!(
            m.step(&compiled, &[0; 2]),
            Err(SimError::InputWidthMismatch {
                expected: 5,
                found: 2
            })
        ));
    }
}
