//! Level-blocked sweep kernels for full-design packed evaluation.
//!
//! [`crate::compiled::CompiledNetlist::eval_words_into`] walks
//! `eval_order` one gate at a time: every gate pays a kind dispatch, two
//! CSR offset loads and an iterator fold over its pin slice. At a million
//! gates that per-gate overhead — not the bitwise logic — dominates
//! golden-chunk simulation.
//!
//! [`SweepPlan`] removes it. At compile time the evaluation order is cut
//! into *runs*: maximal groups of gates on the same logic level with the
//! same operator shape (2-input AND, inverter, …). Each run is stored
//! structure-of-arrays — one `out[]` index array plus the `a[]`/`b[]`
//! input indices resolved from the CSR — and evaluated as a tight loop
//! of one fixed bitwise expression, no kind dispatch and no pin-slice
//! iterators inside. Levelization makes the reordering sound: a gate
//! only ever reads values from strictly lower levels, so any evaluation
//! order *within* a level produces the same words. Gates whose shape has
//! no dedicated kernel (MUXes, variadic AND/OR/XOR trees) fall back to
//! the generic fold per gate, so the sweep is byte-identical to
//! gate-order evaluation for every netlist.
//!
//! The same compile step also flattens every gate into a per-gate *fast
//! descriptor* (opcode byte + two resolved input indices), which
//! [`SweepPlan::eval_gate`] and [`SweepPlan::eval_gate_pin_forced`]
//! dispatch on. Single-gate callers — the event-driven cone walks and
//! the critical-path-tracing chain ascent in `rescue-faults` — go
//! through these instead of the CSR fold, shaving the dispatch overhead
//! off the incremental paths too.
//!
//! The plan is **derived state**: it is recomputed from the arena both
//! at compile time and on artifact-cache decode, never serialized, so
//! the compiled wire format and its content hashes are unchanged.

use crate::compiled::CompiledNetlist;
use crate::wide::SimWord;
use rescue_netlist::GateKind;

/// Fast-descriptor opcodes. Runs only ever carry `OP_CONST0..=OP_XNOR2`
/// and `OP_GENERIC`; `OP_DFF` appears in per-gate descriptors (packed
/// evaluation treats DFF outputs as all-zero) and `Input` gates map to
/// `OP_GENERIC` so the fallback keeps the historical panic.
const OP_CONST0: u8 = 0;
const OP_CONST1: u8 = 1;
const OP_BUF: u8 = 2;
const OP_NOT: u8 = 3;
const OP_AND2: u8 = 4;
const OP_NAND2: u8 = 5;
const OP_OR2: u8 = 6;
const OP_NOR2: u8 = 7;
const OP_XOR2: u8 = 8;
const OP_XNOR2: u8 = 9;
const OP_DFF: u8 = 10;
const OP_GENERIC: u8 = 11;

/// Opcodes eligible for level runs, in the emission order within each
/// level. `OP_DFF` is excluded (sources are not in `eval_order`).
const RUN_OPS: [u8; 11] = [
    OP_AND2, OP_NAND2, OP_OR2, OP_NOR2, OP_XOR2, OP_XNOR2, OP_BUF, OP_NOT, OP_CONST0, OP_CONST1,
    OP_GENERIC,
];

/// Operator shape of one gate: a dedicated kernel opcode when the kind
/// *and* arity match one, `OP_GENERIC` otherwise. Only exact matches get
/// a kernel — a 3-input AND folds generically — so every kernel is
/// algebraically identical to the generic fold it replaces.
fn classify(kind: GateKind, arity: usize) -> u8 {
    match (kind, arity) {
        (GateKind::Const0, _) => OP_CONST0,
        (GateKind::Const1, _) => OP_CONST1,
        (GateKind::Buf, 1) => OP_BUF,
        (GateKind::Not, 1) => OP_NOT,
        (GateKind::And, 2) => OP_AND2,
        (GateKind::Nand, 2) => OP_NAND2,
        (GateKind::Or, 2) => OP_OR2,
        (GateKind::Nor, 2) => OP_NOR2,
        (GateKind::Xor, 2) => OP_XOR2,
        (GateKind::Xnor, 2) => OP_XNOR2,
        (GateKind::Dff, _) => OP_DFF,
        _ => OP_GENERIC,
    }
}

/// One same-level, same-shape gate run: `len` gates starting at `start`
/// in the plan's structure-of-arrays arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SweepRun {
    op: u8,
    start: u32,
    len: u32,
}

/// Level-blocked sweep schedule plus per-gate fast descriptors, derived
/// once from a [`CompiledNetlist`]. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    /// Level-major run schedule over `eval_order`'s gates.
    runs: Vec<SweepRun>,
    /// SoA arenas indexed by the runs: output gate and resolved inputs.
    out: Vec<u32>,
    a: Vec<u32>,
    b: Vec<u32>,
    /// Per-gate fast descriptors over *all* gates (single-gate dispatch).
    ops: Vec<u8>,
    pa: Vec<u32>,
    pb: Vec<u32>,
    /// Gates evaluated by a dedicated kernel (non-generic run entries).
    swept: usize,
}

impl SweepPlan {
    /// Derives the sweep schedule and fast descriptors from a compiled
    /// arena. `O(gates)` and allocation-bounded by four `u32` arenas.
    pub fn build(c: &CompiledNetlist) -> SweepPlan {
        let n = c.len();
        let mut ops = vec![0u8; n];
        let mut pa = vec![0u32; n];
        let mut pb = vec![0u32; n];
        for g in 0..n {
            let pins = c.pins_of(g);
            let op = classify(c.kind(g), pins.len());
            ops[g] = op;
            match op {
                OP_BUF | OP_NOT => pa[g] = pins[0],
                OP_AND2..=OP_XNOR2 => {
                    pa[g] = pins[0];
                    pb[g] = pins[1];
                }
                _ => {}
            }
        }

        let eo = c.eval_order();
        let mut runs = Vec::new();
        let mut out = Vec::with_capacity(eo.len());
        let mut ra = Vec::with_capacity(eo.len());
        let mut rb = Vec::with_capacity(eo.len());
        let mut swept = 0usize;
        // eval_order is levelized, so each level is one contiguous
        // stretch; bucket it by shape in the fixed RUN_OPS order.
        let mut i = 0usize;
        while i < eo.len() {
            let lvl = c.level(eo[i] as usize);
            let mut j = i;
            while j < eo.len() && c.level(eo[j] as usize) == lvl {
                j += 1;
            }
            for op in RUN_OPS {
                let start = out.len();
                for &g in &eo[i..j] {
                    if ops[g as usize] == op {
                        out.push(g);
                        ra.push(pa[g as usize]);
                        rb.push(pb[g as usize]);
                    }
                }
                let len = out.len() - start;
                if len > 0 {
                    if op != OP_GENERIC {
                        swept += len;
                    }
                    runs.push(SweepRun {
                        op,
                        start: start as u32,
                        len: len as u32,
                    });
                }
            }
            i = j;
        }
        SweepPlan {
            runs,
            out,
            a: ra,
            b: rb,
            ops,
            pa,
            pb,
            swept,
        }
    }

    /// Number of same-level, same-shape runs in the schedule.
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Gates evaluated by a dedicated kernel (the rest take the generic
    /// per-gate fold inside the sweep).
    pub fn swept_gates(&self) -> usize {
        self.swept
    }

    /// Full-design sweep evaluation: sources (PIs, DFFs) must already be
    /// set in `values`; every other gate is written exactly once, in
    /// level-major run order. Byte-identical to walking `eval_order`
    /// gate by gate.
    pub fn eval_sweep<Wd: SimWord>(&self, c: &CompiledNetlist, values: &mut [Wd]) {
        for run in &self.runs {
            let s = run.start as usize;
            let e = s + run.len as usize;
            let out = &self.out[s..e];
            let a = &self.a[s..e];
            let b = &self.b[s..e];
            macro_rules! bin_run {
                ($expr:expr) => {
                    for k in 0..out.len() {
                        let x = values[a[k] as usize];
                        let y = values[b[k] as usize];
                        values[out[k] as usize] = $expr(x, y);
                    }
                };
            }
            match run.op {
                OP_AND2 => bin_run!(|x: Wd, y: Wd| x & y),
                OP_NAND2 => bin_run!(|x: Wd, y: Wd| !(x & y)),
                OP_OR2 => bin_run!(|x: Wd, y: Wd| x | y),
                OP_NOR2 => bin_run!(|x: Wd, y: Wd| !(x | y)),
                OP_XOR2 => bin_run!(|x: Wd, y: Wd| x ^ y),
                OP_XNOR2 => bin_run!(|x: Wd, y: Wd| !(x ^ y)),
                OP_BUF => {
                    for k in 0..out.len() {
                        values[out[k] as usize] = values[a[k] as usize];
                    }
                }
                OP_NOT => {
                    for k in 0..out.len() {
                        values[out[k] as usize] = !values[a[k] as usize];
                    }
                }
                OP_CONST0 => {
                    for &g in out {
                        values[g as usize] = Wd::ZERO;
                    }
                }
                OP_CONST1 => {
                    for &g in out {
                        values[g as usize] = Wd::ONES;
                    }
                }
                _ => {
                    for &g in out {
                        let v = c.eval_word_generic(g as usize, values);
                        values[g as usize] = v;
                    }
                }
            }
        }
    }

    /// Single-gate fast dispatch: the descriptor replaces the kind
    /// match and CSR fold of [`CompiledNetlist::eval_word`]; shapes
    /// without a kernel fall back to the generic fold.
    #[inline]
    pub fn eval_gate<Wd: SimWord>(&self, c: &CompiledNetlist, g: usize, values: &[Wd]) -> Wd {
        match self.ops[g] {
            OP_CONST0 => Wd::ZERO,
            OP_CONST1 => Wd::ONES,
            OP_BUF => values[self.pa[g] as usize],
            OP_NOT => !values[self.pa[g] as usize],
            OP_AND2 => values[self.pa[g] as usize] & values[self.pb[g] as usize],
            OP_NAND2 => !(values[self.pa[g] as usize] & values[self.pb[g] as usize]),
            OP_OR2 => values[self.pa[g] as usize] | values[self.pb[g] as usize],
            OP_NOR2 => !(values[self.pa[g] as usize] | values[self.pb[g] as usize]),
            OP_XOR2 => values[self.pa[g] as usize] ^ values[self.pb[g] as usize],
            OP_XNOR2 => !(values[self.pa[g] as usize] ^ values[self.pb[g] as usize]),
            OP_DFF => Wd::ZERO,
            _ => c.eval_word_generic(g, values),
        }
    }

    /// Single-gate fast dispatch with input pin `pin` replaced by `word`
    /// (the pin stuck-at injection primitive of the cone walks and the
    /// CPT sensitization kernel).
    #[inline]
    pub fn eval_gate_pin_forced<Wd: SimWord>(
        &self,
        c: &CompiledNetlist,
        g: usize,
        values: &[Wd],
        pin: usize,
        word: Wd,
    ) -> Wd {
        let op = self.ops[g];
        if (OP_AND2..=OP_XNOR2).contains(&op) {
            let x = if pin == 0 {
                word
            } else {
                values[self.pa[g] as usize]
            };
            let y = if pin == 1 {
                word
            } else {
                values[self.pb[g] as usize]
            };
            return match op {
                OP_AND2 => x & y,
                OP_NAND2 => !(x & y),
                OP_OR2 => x | y,
                OP_NOR2 => !(x | y),
                OP_XOR2 => x ^ y,
                _ => !(x ^ y),
            };
        }
        match op {
            OP_BUF if pin == 0 => word,
            OP_NOT if pin == 0 => !word,
            _ => c.eval_word_pin_forced_generic(g, values, pin, word),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::{generate, renumber};

    #[test]
    fn classify_requires_exact_arity() {
        assert_eq!(classify(GateKind::And, 2), OP_AND2);
        assert_eq!(classify(GateKind::And, 3), OP_GENERIC);
        assert_eq!(classify(GateKind::Mux, 3), OP_GENERIC);
        assert_eq!(classify(GateKind::Input, 0), OP_GENERIC);
        assert_eq!(classify(GateKind::Dff, 1), OP_DFF);
    }

    #[test]
    fn runs_cover_eval_order_exactly_once() {
        let (net, _) = renumber::levelized(&generate::random_logic(8, 400, 4, 21));
        let c = CompiledNetlist::new(&net);
        let plan = SweepPlan::build(&c);
        let mut seen: Vec<u32> = plan.out.clone();
        seen.sort_unstable();
        let mut want: Vec<u32> = c.eval_order().to_vec();
        want.sort_unstable();
        assert_eq!(seen, want, "every evaluated gate appears in one run");
        assert!(plan.swept_gates() > 0, "random logic has 2-input shapes");
    }

    #[test]
    fn runs_never_read_their_own_level() {
        let (net, _) = renumber::levelized(&generate::random_logic(8, 400, 4, 5));
        let c = CompiledNetlist::new(&net);
        let plan = SweepPlan::build(&c);
        for run in &plan.runs {
            for k in run.start as usize..(run.start + run.len) as usize {
                let g = plan.out[k] as usize;
                for &p in c.pins_of(g) {
                    assert!(
                        c.level(p as usize) < c.level(g),
                        "gate {g} reads same-level input {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_descriptors_match_csr() {
        let net = generate::random_logic(6, 200, 3, 9);
        let c = CompiledNetlist::new(&net);
        let plan = SweepPlan::build(&c);
        for g in 0..c.len() {
            let pins = c.pins_of(g);
            match plan.ops[g] {
                OP_BUF | OP_NOT => assert_eq!(plan.pa[g], pins[0]),
                op if (OP_AND2..=OP_XNOR2).contains(&op) => {
                    assert_eq!([plan.pa[g], plan.pb[g]], [pins[0], pins[1]]);
                }
                _ => {}
            }
        }
    }
}
