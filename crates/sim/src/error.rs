//! Simulation error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The supplied input vector does not match the primary-input count.
    InputWidthMismatch {
        /// Inputs the netlist declares.
        expected: usize,
        /// Inputs supplied by the caller.
        found: usize,
    },
    /// The supplied state vector does not match the flip-flop count.
    StateWidthMismatch {
        /// Flip-flops in the design.
        expected: usize,
        /// State bits supplied.
        found: usize,
    },
    /// A named signal was not found in the netlist.
    UnknownSignal {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputWidthMismatch { expected, found } => {
                write!(f, "expected {expected} primary inputs, got {found}")
            }
            SimError::StateWidthMismatch { expected, found } => {
                write!(f, "expected {expected} state bits, got {found}")
            }
            SimError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SimError::InputWidthMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("4"));
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
