//! Multi-cycle sequential simulation with flip-flop state.

use crate::compiled::CompiledNetlist;
use crate::error::SimError;
use rescue_netlist::Netlist;

/// Two-valued sequential simulator.
///
/// Holds the current flip-flop state; [`SeqSimulator::step`] evaluates the
/// combinational logic with the present state, captures the next state
/// into the DFFs and returns the primary-output values *before* the clock
/// edge (Mealy view of the cycle).
///
/// The SEU-injection hook [`SeqSimulator::flip_state`] implements the
/// single-event-upset model of paper Section III.B: a radiation-induced
/// bit flip in a state element between two clock edges.
///
/// # Examples
///
/// ```
/// use rescue_netlist::generate;
/// use rescue_sim::seq::SeqSimulator;
///
/// let counter = generate::counter(3);
/// let mut sim = SeqSimulator::new(&counter);
/// for _ in 0..5 {
///     sim.step(&counter, &[])?;
/// }
/// assert_eq!(sim.state_value(), 5);
/// # Ok::<(), rescue_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeqSimulator {
    compiled: CompiledNetlist,
    state: Vec<bool>,
    cycles: u64,
}

impl SeqSimulator {
    /// Creates a simulator with all flip-flops reset to 0.
    pub fn new(netlist: &Netlist) -> Self {
        let compiled = CompiledNetlist::new(netlist);
        let state = vec![false; compiled.dffs().len()];
        SeqSimulator {
            compiled,
            state,
            cycles: 0,
        }
    }

    /// Resets all flip-flops to 0 and the cycle counter.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|b| *b = false);
        self.cycles = 0;
    }

    /// Number of clock cycles simulated since construction/reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current state bits in `netlist.dffs()` order.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Interprets the state as a little-endian integer (DFF 0 = bit 0).
    ///
    /// # Panics
    ///
    /// Panics if the design has more than 64 flip-flops.
    pub fn state_value(&self) -> u64 {
        assert!(self.state.len() <= 64, "state wider than 64 bits");
        self.state
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    /// Overwrites the state (e.g. to load a scan pattern).
    ///
    /// # Errors
    ///
    /// [`SimError::StateWidthMismatch`] on length mismatch.
    pub fn load_state(&mut self, bits: &[bool]) -> Result<(), SimError> {
        if bits.len() != self.state.len() {
            return Err(SimError::StateWidthMismatch {
                expected: self.state.len(),
                found: bits.len(),
            });
        }
        self.state.copy_from_slice(bits);
        Ok(())
    }

    /// Flips one state bit — the SEU injection primitive.
    ///
    /// # Panics
    ///
    /// Panics if `dff_index` is out of range.
    pub fn flip_state(&mut self, dff_index: usize) {
        self.state[dff_index] = !self.state[dff_index];
    }

    /// Evaluates one clock cycle and returns the primary-output values.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when `inputs` has the wrong length.
    pub fn step(&mut self, netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        let values = self.evaluate(netlist, inputs)?;
        // Capture next state: DFF input values become the new state.
        for (i, &d) in self.compiled.dff_d().iter().enumerate() {
            self.state[i] = values[d as usize];
        }
        self.cycles += 1;
        Ok(crate::comb::outputs_of(netlist, &values))
    }

    /// Evaluates the combinational logic for the present state without
    /// advancing the clock; returns every gate value.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] when `inputs` has the wrong length.
    pub fn evaluate(&self, _netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        let mut values = Vec::new();
        self.compiled
            .eval_bools_into(inputs, &self.state, &mut values)?;
        Ok(values)
    }

    /// Runs `cycles` clock cycles with constant `inputs`, returning the
    /// output trace (one vector per cycle).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SeqSimulator::step`].
    pub fn run(
        &mut self,
        netlist: &Netlist,
        inputs: &[bool],
        cycles: usize,
    ) -> Result<Vec<Vec<bool>>, SimError> {
        (0..cycles).map(|_| self.step(netlist, inputs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rescue_netlist::generate;

    #[test]
    fn counter_counts() {
        let c = generate::counter(4);
        let mut sim = SeqSimulator::new(&c);
        for expect in 0u64..20 {
            assert_eq!(sim.state_value(), expect % 16);
            sim.step(&c, &[]).unwrap();
        }
        assert_eq!(sim.cycles(), 20);
        sim.reset();
        assert_eq!(sim.state_value(), 0);
        assert_eq!(sim.cycles(), 0);
    }

    #[test]
    fn shift_register_shifts() {
        let s = generate::shift_register(4);
        let mut sim = SeqSimulator::new(&s);
        // Feed 1 for one cycle then 0s; the 1 marches down the chain.
        sim.step(&s, &[true]).unwrap();
        assert_eq!(sim.state(), &[true, false, false, false]);
        sim.step(&s, &[false]).unwrap();
        assert_eq!(sim.state(), &[false, true, false, false]);
        let out = sim.step(&s, &[false]).unwrap();
        assert_eq!(out, vec![false]);
        sim.step(&s, &[false]).unwrap();
        // After 4 total shifts the 1 is at the output register.
        assert_eq!(sim.state(), &[false, false, false, true]);
    }

    #[test]
    fn lfsr_cycles_through_states() {
        let l = generate::lfsr(4, &[3, 2]);
        let mut sim = SeqSimulator::new(&l);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            seen.insert(sim.state_value());
            sim.step(&l, &[]).unwrap();
        }
        assert!(seen.len() > 2, "lfsr must visit several states");
    }

    #[test]
    fn fsm_sequences() {
        let f = generate::control_fsm();
        let mut sim = SeqSimulator::new(&f);
        // IDLE: busy=0
        let v = sim.evaluate(&f, &[false, false]).unwrap();
        let busy = crate::comb::outputs_of(&f, &v)[0];
        assert!(!busy);
        // go -> RUN
        sim.step(&f, &[true, false]).unwrap();
        let v = sim.evaluate(&f, &[false, false]).unwrap();
        assert!(crate::comb::outputs_of(&f, &v)[0], "busy in RUN");
        // RUN -> DONE
        sim.step(&f, &[false, false]).unwrap();
        let v = sim.evaluate(&f, &[false, false]).unwrap();
        assert!(crate::comb::outputs_of(&f, &v)[1], "done asserted");
        // DONE -> IDLE
        sim.step(&f, &[false, false]).unwrap();
        assert_eq!(sim.state_value(), 0);
    }

    #[test]
    fn seu_flip_changes_trajectory() {
        let c = generate::counter(4);
        let mut golden = SeqSimulator::new(&c);
        let mut faulty = SeqSimulator::new(&c);
        for _ in 0..3 {
            golden.step(&c, &[]).unwrap();
            faulty.step(&c, &[]).unwrap();
        }
        faulty.flip_state(2); // SEU in bit 2
        assert_ne!(golden.state_value(), faulty.state_value());
        // the flip persists (counter has no correction)
        golden.step(&c, &[]).unwrap();
        faulty.step(&c, &[]).unwrap();
        assert_ne!(golden.state_value(), faulty.state_value());
    }

    #[test]
    fn load_state_checks_width() {
        let c = generate::counter(4);
        let mut sim = SeqSimulator::new(&c);
        assert!(sim.load_state(&[true; 3]).is_err());
        sim.load_state(&[true, false, true, false]).unwrap();
        assert_eq!(sim.state_value(), 0b0101);
    }
}
