//! Compiled flat-arena netlist representation shared by all simulators.
//!
//! [`CompiledNetlist`] lowers a [`Netlist`] into a CSR (compressed sparse
//! row) arena so the simulation hot loops touch only dense `u32`/`u64`
//! arrays instead of chasing per-gate `Gate` structs and re-collecting
//! input buffers:
//!
//! * `kinds[g]` — the [`GateKind`] of gate `g`;
//! * `pins[pin_offsets[g] .. pin_offsets[g + 1]]` — gate `g`'s input
//!   gate indices, contiguous in one flat arena (CSR row `g`);
//! * `order` — the full levelized evaluation order;
//!   `eval_order` — the same order with `Input`/`Dff` sources removed,
//!   so evaluation loops carry no per-gate kind dispatch for sources;
//! * `levels[g]` / `topo_pos[g]` — gate level and position within
//!   `order` (the inverse permutation), used by incremental fault
//!   propagation to walk fanout cones in dependency order;
//! * `fan[fan_offsets[g] .. fan_offsets[g + 1]]` — gate `g`'s direct
//!   consumers (fanout CSR), computed once at compile time instead of
//!   per [`Netlist::fanout`] call;
//! * `pis` / `po_drivers` / `is_po` / `dffs` / `dff_d` — primary inputs,
//!   output driver gates, an output-driver membership mask, DFF gates
//!   and each DFF's `D`-input gate.
//!
//! Evaluation kernels come in three value domains (64-way packed `u64`
//! words, `bool`, four-valued [`Logic`]) and fold directly over the CSR
//! pin slice — no `buf.clear()/extend()` per gate. A `*_pin_forced`
//! variant substitutes one input pin, which is how pin stuck-at faults
//! are injected without touching the arena.

use crate::codec::{put_bits, put_len, put_u32s, take_bits, take_len, take_u32s};
use crate::error::SimError;
use crate::logic::Logic;
use crate::sweep::SweepPlan;
use crate::wide::SimWord;
use rescue_netlist::{GateId, GateKind, Netlist, NetlistError};

/// Flat-arena, levelized form of a [`Netlist`]. See the module docs for
/// the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledNetlist {
    kinds: Vec<GateKind>,
    pin_offsets: Vec<u32>,
    pins: Vec<u32>,
    order: Vec<u32>,
    eval_order: Vec<u32>,
    levels: Vec<u32>,
    topo_pos: Vec<u32>,
    pis: Vec<u32>,
    po_drivers: Vec<u32>,
    is_po: Vec<bool>,
    dffs: Vec<u32>,
    dff_d: Vec<u32>,
    fan_offsets: Vec<u32>,
    fan: Vec<u32>,
    /// Per gate: number of fanout edges into combinational consumers
    /// (DFF `D`-pins excluded). One entry per consuming *pin*, so a gate
    /// feeding two pins of one consumer counts twice — exactly the edge
    /// count fault-effect propagation sees within a chunk.
    comb_fan_degree: Vec<u32>,
    depth: u32,
    /// Level-blocked sweep schedule, present when the arena is levelized
    /// (gate ids ascend with logic level, the [`rescue_netlist`]
    /// `renumber::levelized` contract). **Derived state**: recomputed
    /// identically by [`CompiledNetlist::try_new`] and
    /// [`CompiledNetlist::from_bytes`], never serialized, so the wire
    /// format and content hashes are independent of it.
    sweep: Option<SweepPlan>,
}

impl CompiledNetlist {
    /// Compiles `netlist` (levelization + fanout CSR, `O(gates + edges)`).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (a validated
    /// netlist never does) or exceeds the `u32` index capacity (see
    /// [`CompiledNetlist::try_new`] for the fallible form).
    pub fn new(netlist: &Netlist) -> Self {
        Self::try_new(netlist).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible compilation with a typed capacity guard.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::TooLarge`] when the netlist has too many
    /// nets for the `u32` index arenas, instead of silently truncating
    /// gate indices.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (a validated
    /// netlist never does).
    pub fn try_new(netlist: &Netlist) -> Result<Self, NetlistError> {
        let n = netlist.len();
        rescue_netlist::ensure_u32_indexable(n)?;
        let lv = netlist.levelize();

        let mut kinds = Vec::with_capacity(n);
        let mut pin_offsets = Vec::with_capacity(n + 1);
        let mut pins = Vec::new();
        pin_offsets.push(0);
        for (_, g) in netlist.iter() {
            kinds.push(g.kind());
            pins.extend(g.inputs().iter().map(|p| p.index() as u32));
            pin_offsets.push(pins.len() as u32);
        }

        let order: Vec<u32> = lv.order().iter().map(|g| g.index() as u32).collect();
        let mut topo_pos = vec![0u32; n];
        for (pos, &g) in order.iter().enumerate() {
            topo_pos[g as usize] = pos as u32;
        }
        let eval_order: Vec<u32> = order
            .iter()
            .copied()
            .filter(|&g| !matches!(kinds[g as usize], GateKind::Input | GateKind::Dff))
            .collect();
        let levels: Vec<u32> = (0..n).map(|i| lv.level(GateId(i))).collect();

        // Fanout CSR via counting sort over the pin arena.
        let mut fan_counts = vec![0u32; n];
        for &p in &pins {
            fan_counts[p as usize] += 1;
        }
        let mut fan_offsets = Vec::with_capacity(n + 1);
        fan_offsets.push(0u32);
        for g in 0..n {
            fan_offsets.push(fan_offsets[g] + fan_counts[g]);
        }
        let mut fan = vec![0u32; pins.len()];
        let mut cursor: Vec<u32> = fan_offsets[..n].to_vec();
        for g in 0..n {
            for &p in &pins[pin_offsets[g] as usize..pin_offsets[g + 1] as usize] {
                fan[cursor[p as usize] as usize] = g as u32;
                cursor[p as usize] += 1;
            }
        }

        let pis: Vec<u32> = netlist
            .primary_inputs()
            .iter()
            .map(|g| g.index() as u32)
            .collect();
        let po_drivers: Vec<u32> = netlist
            .primary_outputs()
            .iter()
            .map(|(_, g)| g.index() as u32)
            .collect();
        let mut is_po = vec![false; n];
        for &g in &po_drivers {
            is_po[g as usize] = true;
        }
        let comb_fan_degree: Vec<u32> = (0..n)
            .map(|g| {
                fan[fan_offsets[g] as usize..fan_offsets[g + 1] as usize]
                    .iter()
                    .filter(|&&s| kinds[s as usize] != GateKind::Dff)
                    .count() as u32
            })
            .collect();

        let dffs: Vec<u32> = netlist.dffs().iter().map(|g| g.index() as u32).collect();
        let dff_d: Vec<u32> = netlist
            .dffs()
            .iter()
            .map(|&d| netlist.gate(d).inputs()[0].index() as u32)
            .collect();

        let mut c = CompiledNetlist {
            kinds,
            pin_offsets,
            pins,
            order,
            eval_order,
            levels,
            topo_pos,
            pis,
            po_drivers,
            is_po,
            dffs,
            dff_d,
            fan_offsets,
            fan,
            comb_fan_degree,
            depth: lv.depth(),
            sweep: None,
        };
        c.sweep = c.derive_sweep();
        Ok(c)
    }

    /// Builds the level-blocked sweep schedule when the arena is
    /// levelized (levels nondecreasing over gate ids — guaranteed after
    /// `renumber::levelized`, the opt-in hook). Non-levelized arenas
    /// keep the gate-order kernels: the sweep would still be correct but
    /// its SoA runs would gather from scattered ids, defeating the
    /// locality the level blocking buys.
    fn derive_sweep(&self) -> Option<SweepPlan> {
        let n = self.len();
        // Also runs on decoded (possibly corrupt) bytes, so everything
        // the plan build itself indexes must be validated first — a bad
        // cache entry degrades to the gate-order path, it never panics
        // here.
        let indexable = self.pin_offsets.windows(2).all(|w| w[0] <= w[1])
            && self
                .pin_offsets
                .last()
                .is_some_and(|&e| e as usize == self.pins.len())
            && self.eval_order.iter().all(|&g| (g as usize) < n);
        if n > 0 && indexable && self.levels.windows(2).all(|w| w[0] <= w[1]) {
            Some(SweepPlan::build(self))
        } else {
            None
        }
    }

    /// The derived sweep schedule, when the arena is levelized.
    pub fn sweep_plan(&self) -> Option<&SweepPlan> {
        self.sweep.as_ref()
    }

    /// Forces the sweep kernels off (or re-derives them): the ablation
    /// hook benches use to time gate-order vs. level-blocked execution
    /// on the same arena. No effect on results — both paths are
    /// byte-identical.
    pub fn set_sweep(&mut self, enabled: bool) {
        self.sweep = if enabled { self.derive_sweep() } else { None };
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the design has no gates.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of gate `g`.
    #[inline]
    pub fn kind(&self, g: usize) -> GateKind {
        self.kinds[g]
    }

    /// Input gate indices of `g` (CSR row).
    #[inline]
    pub fn pins_of(&self, g: usize) -> &[u32] {
        &self.pins[self.pin_offsets[g] as usize..self.pin_offsets[g + 1] as usize]
    }

    /// Direct consumers of `g` (fanout CSR row).
    #[inline]
    pub fn fanout_of(&self, g: usize) -> &[u32] {
        &self.fan[self.fan_offsets[g] as usize..self.fan_offsets[g + 1] as usize]
    }

    /// Number of combinational fanout edges of `g`: fanout CSR entries
    /// whose consumer is not a DFF, counted per consuming pin. This is
    /// the stem metadata critical-path tracing classifies on — 0 means a
    /// fault effect at `g` dies locally (within one chunk), 1 means it
    /// propagates along a single edge (fanout-free region), ≥ 2 marks a
    /// fanout stem whose branches may reconverge.
    #[inline]
    pub fn comb_fanout_degree(&self, g: usize) -> u32 {
        self.comb_fan_degree[g]
    }

    /// Full levelized order over all gates.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Levelized order restricted to gates that need evaluation
    /// (`Input`/`Dff` sources removed).
    pub fn eval_order(&self) -> &[u32] {
        &self.eval_order
    }

    /// Level of gate `g` (0 for sources).
    #[inline]
    pub fn level(&self, g: usize) -> u32 {
        self.levels[g]
    }

    /// Position of gate `g` within [`CompiledNetlist::order`].
    #[inline]
    pub fn topo_pos(&self, g: usize) -> u32 {
        self.topo_pos[g]
    }

    /// Logic depth of the design.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Primary-input gate indices, in declaration order.
    pub fn primary_inputs(&self) -> &[u32] {
        &self.pis
    }

    /// Gate indices driving the primary outputs, in declaration order.
    pub fn po_drivers(&self) -> &[u32] {
        &self.po_drivers
    }

    /// Whether gate `g` drives at least one primary output.
    #[inline]
    pub fn is_po(&self, g: usize) -> bool {
        self.is_po[g]
    }

    /// DFF gate indices, in declaration order.
    pub fn dffs(&self) -> &[u32] {
        &self.dffs
    }

    /// For each DFF (same order as [`CompiledNetlist::dffs`]), the gate
    /// feeding its `D` pin.
    pub fn dff_d(&self) -> &[u32] {
        &self.dff_d
    }

    fn check_width(&self, found: usize) -> Result<(), SimError> {
        if found != self.pis.len() {
            return Err(SimError::InputWidthMismatch {
                expected: self.pis.len(),
                found,
            });
        }
        Ok(())
    }

    /// Evaluates gate `g` over one packed pattern word (64 lanes for
    /// `u64`, `64 * W` for [`crate::wide::PackedWord`]) from `values`.
    /// `Dff` evaluates to the all-zero word; `Input` is the caller's job.
    /// Dispatches through the sweep fast descriptors when the arena is
    /// levelized (same result, no CSR fold).
    #[inline]
    pub fn eval_word<Wd: SimWord>(&self, g: usize, values: &[Wd]) -> Wd {
        match &self.sweep {
            Some(plan) => plan.eval_gate(self, g, values),
            None => self.eval_word_generic(g, values),
        }
    }

    /// The CSR-fold gate evaluation the sweep fast path falls back to
    /// for shapes without a dedicated kernel.
    #[inline]
    pub(crate) fn eval_word_generic<Wd: SimWord>(&self, g: usize, values: &[Wd]) -> Wd {
        eval_word_from(
            self.kinds[g],
            self.pins_of(g).iter().map(|&p| values[p as usize]),
        )
    }

    /// Like [`CompiledNetlist::eval_word`] with input pin `pin` replaced
    /// by `word` — the pin stuck-at injection primitive.
    #[inline]
    pub fn eval_word_pin_forced<Wd: SimWord>(
        &self,
        g: usize,
        values: &[Wd],
        pin: usize,
        word: Wd,
    ) -> Wd {
        match &self.sweep {
            Some(plan) => plan.eval_gate_pin_forced(self, g, values, pin, word),
            None => self.eval_word_pin_forced_generic(g, values, pin, word),
        }
    }

    /// CSR-fold form of [`CompiledNetlist::eval_word_pin_forced`].
    #[inline]
    pub(crate) fn eval_word_pin_forced_generic<Wd: SimWord>(
        &self,
        g: usize,
        values: &[Wd],
        pin: usize,
        word: Wd,
    ) -> Wd {
        eval_word_from(
            self.kinds[g],
            self.pins_of(g).iter().enumerate().map(|(i, &p)| {
                if i == pin {
                    word
                } else {
                    values[p as usize]
                }
            }),
        )
    }

    /// Evaluates gate `g` two-valued. `Dff` evaluates to `false`.
    #[inline]
    pub fn eval_bool(&self, g: usize, values: &[bool]) -> bool {
        eval_bool_from(
            self.kinds[g],
            self.pins_of(g).iter().map(|&p| values[p as usize]),
        )
    }

    /// Like [`CompiledNetlist::eval_bool`] with input pin `pin` replaced
    /// by `value`.
    #[inline]
    pub fn eval_bool_pin_forced(&self, g: usize, values: &[bool], pin: usize, value: bool) -> bool {
        eval_bool_from(
            self.kinds[g],
            self.pins_of(g).iter().enumerate().map(|(i, &p)| {
                if i == pin {
                    value
                } else {
                    values[p as usize]
                }
            }),
        )
    }

    /// Evaluates gate `g` four-valued. `Dff` evaluates to `X`.
    #[inline]
    pub fn eval_logic(&self, g: usize, values: &[Logic]) -> Logic {
        eval_logic_from(
            self.kinds[g],
            self.pins_of(g).iter().map(|&p| values[p as usize]),
        )
    }

    /// Full packed evaluation into a reusable buffer (cleared and
    /// resized), one word of [`SimWord::LANES`] patterns per gate.
    /// `input_words[i]` carries primary input `i`; DFF outputs evaluate
    /// to all-zero words. Optionally forces one gate's output word (the
    /// stuck-at-output injection hook).
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] on word-count mismatch.
    pub fn eval_words_into<Wd: SimWord>(
        &self,
        input_words: &[Wd],
        force: Option<(u32, Wd)>,
        values: &mut Vec<Wd>,
    ) -> Result<(), SimError> {
        self.check_width(input_words.len())?;
        values.clear();
        values.resize(self.len(), Wd::ZERO);
        self.eval_words_fill_inner(input_words, force, values);
        Ok(())
    }

    /// Slice form of [`CompiledNetlist::eval_words_into`] for reusable
    /// flat arenas: no clear/resize, `values` must already hold exactly
    /// [`CompiledNetlist::len`] words. Every gate is overwritten (PIs
    /// from `input_words`, DFF outputs to zero, the rest by evaluation),
    /// so stale contents never leak — the zero-allocation golden-chunk
    /// path depends on this.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] on word-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != self.len()`.
    pub fn eval_words_fill<Wd: SimWord>(
        &self,
        input_words: &[Wd],
        force: Option<(u32, Wd)>,
        values: &mut [Wd],
    ) -> Result<(), SimError> {
        self.check_width(input_words.len())?;
        assert_eq!(values.len(), self.len(), "value arena width mismatch");
        self.eval_words_fill_inner(input_words, force, values);
        Ok(())
    }

    /// Shared full-evaluation body: sources first, then the sweep
    /// schedule when available (unforced only — forcing needs the
    /// gate-major site check) or the gate-order walk.
    fn eval_words_fill_inner<Wd: SimWord>(
        &self,
        input_words: &[Wd],
        force: Option<(u32, Wd)>,
        values: &mut [Wd],
    ) {
        for (i, &pi) in self.pis.iter().enumerate() {
            values[pi as usize] = input_words[i];
        }
        for &d in &self.dffs {
            values[d as usize] = Wd::ZERO;
        }
        match force {
            None => match &self.sweep {
                Some(plan) => plan.eval_sweep(self, values),
                None => {
                    for &g in &self.eval_order {
                        let v = self.eval_word(g as usize, values);
                        values[g as usize] = v;
                    }
                }
            },
            Some((site, word)) => {
                // Sources are outside eval_order; force them up front.
                if matches!(self.kinds[site as usize], GateKind::Input | GateKind::Dff) {
                    values[site as usize] = word;
                }
                for &g in &self.eval_order {
                    let v = if g == site {
                        word
                    } else {
                        self.eval_word(g as usize, values)
                    };
                    values[g as usize] = v;
                }
            }
        }
    }

    /// Two-valued full evaluation into a reusable buffer. DFF outputs
    /// take their value from `state` (in [`CompiledNetlist::dffs`]
    /// order); pass `&[]`-initialized state for pure combinational use.
    ///
    /// # Errors
    ///
    /// [`SimError::InputWidthMismatch`] on input-width mismatch;
    /// [`SimError::StateWidthMismatch`] on state-width mismatch.
    pub fn eval_bools_into(
        &self,
        inputs: &[bool],
        state: &[bool],
        values: &mut Vec<bool>,
    ) -> Result<(), SimError> {
        self.check_width(inputs.len())?;
        if state.len() != self.dffs.len() {
            return Err(SimError::StateWidthMismatch {
                expected: self.dffs.len(),
                found: state.len(),
            });
        }
        values.clear();
        values.resize(self.len(), false);
        for (i, &pi) in self.pis.iter().enumerate() {
            values[pi as usize] = inputs[i];
        }
        for (i, &dff) in self.dffs.iter().enumerate() {
            values[dff as usize] = state[i];
        }
        for &g in &self.eval_order {
            let v = self.eval_bool(g as usize, values);
            values[g as usize] = v;
        }
        Ok(())
    }

    // --- compiled-artifact wire format ----------------------------------

    /// Serializes the full compiled arena for the artifact cache.
    ///
    /// Every derived field (levelization, CSRs, orders) is dumped
    /// verbatim, so a cache hit deserializes with zero levelization or
    /// CSR-construction work. Little-endian, versioned; gate kinds use
    /// the frozen [`GateKind::wire_code`] table.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.kinds.len() * 40 + self.pins.len() * 8);
        buf.push(WIRE_VERSION);
        buf.extend_from_slice(&self.depth.to_le_bytes());
        put_len(&mut buf, self.kinds.len());
        buf.extend(self.kinds.iter().map(|k| k.wire_code()));
        for arr in [
            &self.pin_offsets,
            &self.pins,
            &self.order,
            &self.eval_order,
            &self.levels,
            &self.topo_pos,
            &self.pis,
            &self.po_drivers,
            &self.dffs,
            &self.dff_d,
            &self.fan_offsets,
            &self.fan,
            &self.comb_fan_degree,
        ] {
            put_u32s(&mut buf, arr);
        }
        put_bits(&mut buf, &self.is_po);
        buf
    }

    /// Deserializes [`CompiledNetlist::to_bytes`] output.
    ///
    /// Returns `None` on version mismatch or malformed input — a corrupt
    /// cache entry must fall back to recompiling, never panic.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        if *bytes.get(off)? != WIRE_VERSION {
            return None;
        }
        off += 1;
        let depth = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?);
        off += 4;
        let n = take_len(bytes, &mut off)?;
        // One byte per kind: the prefix can never exceed the remaining
        // payload, so corrupt input cannot trigger a huge allocation.
        if n > bytes.len() - off {
            return None;
        }
        let mut kinds = Vec::with_capacity(n);
        for _ in 0..n {
            kinds.push(GateKind::from_wire_code(*bytes.get(off)?)?);
            off += 1;
        }
        let pin_offsets = take_u32s(bytes, &mut off)?;
        let pins = take_u32s(bytes, &mut off)?;
        let order = take_u32s(bytes, &mut off)?;
        let eval_order = take_u32s(bytes, &mut off)?;
        let levels = take_u32s(bytes, &mut off)?;
        let topo_pos = take_u32s(bytes, &mut off)?;
        let pis = take_u32s(bytes, &mut off)?;
        let po_drivers = take_u32s(bytes, &mut off)?;
        let dffs = take_u32s(bytes, &mut off)?;
        let dff_d = take_u32s(bytes, &mut off)?;
        let fan_offsets = take_u32s(bytes, &mut off)?;
        let fan = take_u32s(bytes, &mut off)?;
        let comb_fan_degree = take_u32s(bytes, &mut off)?;
        let is_po = take_bits(bytes, &mut off)?;
        let shape_ok = off == bytes.len()
            && pin_offsets.len() == n + 1
            && fan_offsets.len() == n + 1
            && order.len() == n
            && levels.len() == n
            && topo_pos.len() == n
            && comb_fan_degree.len() == n
            && is_po.len() == n
            && fan.len() == pins.len()
            && dff_d.len() == dffs.len();
        if !shape_ok {
            return None;
        }
        let mut c = CompiledNetlist {
            kinds,
            pin_offsets,
            pins,
            order,
            eval_order,
            levels,
            topo_pos,
            pis,
            po_drivers,
            is_po,
            dffs,
            dff_d,
            fan_offsets,
            fan,
            comb_fan_degree,
            depth,
            sweep: None,
        };
        // The sweep schedule is derived, not serialized: recompute it so
        // a cache hit behaves exactly like a fresh compile.
        c.sweep = c.derive_sweep();
        Some(c)
    }
}

const WIRE_VERSION: u8 = 1;

/// Word-domain gate function over an input iterator, generic over the
/// packed lane width. `Dff` yields the all-zero word (the packed-pattern
/// convention); `Input` has no combinational function.
///
/// # Panics
///
/// Panics on `GateKind::Input`.
#[inline]
pub fn eval_word_from<Wd: SimWord, I: Iterator<Item = Wd>>(kind: GateKind, mut ins: I) -> Wd {
    match kind {
        GateKind::Const0 => Wd::ZERO,
        GateKind::Const1 => Wd::ONES,
        GateKind::Buf => ins.next().unwrap(),
        GateKind::Not => !ins.next().unwrap(),
        GateKind::And => ins.fold(Wd::ONES, |a, b| a & b),
        GateKind::Nand => !ins.fold(Wd::ONES, |a, b| a & b),
        GateKind::Or => ins.fold(Wd::ZERO, |a, b| a | b),
        GateKind::Nor => !ins.fold(Wd::ZERO, |a, b| a | b),
        GateKind::Xor => ins.fold(Wd::ZERO, |a, b| a ^ b),
        GateKind::Xnor => !ins.fold(Wd::ZERO, |a, b| a ^ b),
        GateKind::Mux => {
            let s = ins.next().unwrap();
            let a = ins.next().unwrap();
            let b = ins.next().unwrap();
            (!s & a) | (s & b)
        }
        GateKind::Dff => Wd::ZERO,
        GateKind::Input => panic!("eval_word_from called on an Input gate"),
    }
}

/// Bool-domain gate function over an input iterator. `Dff` yields
/// `false`; `Input` has no combinational function.
///
/// # Panics
///
/// Panics on `GateKind::Input`.
#[inline]
pub fn eval_bool_from<I: Iterator<Item = bool>>(kind: GateKind, mut ins: I) -> bool {
    match kind {
        GateKind::Const0 => false,
        GateKind::Const1 => true,
        GateKind::Buf => ins.next().unwrap(),
        GateKind::Not => !ins.next().unwrap(),
        GateKind::And => ins.all(|b| b),
        GateKind::Nand => !ins.all(|b| b),
        GateKind::Or => ins.any(|b| b),
        GateKind::Nor => !ins.any(|b| b),
        GateKind::Xor => ins.fold(false, |a, b| a ^ b),
        GateKind::Xnor => !ins.fold(false, |a, b| a ^ b),
        GateKind::Mux => {
            let s = ins.next().unwrap();
            let a = ins.next().unwrap();
            let b = ins.next().unwrap();
            if s {
                b
            } else {
                a
            }
        }
        GateKind::Dff => false,
        GateKind::Input => panic!("eval_bool_from called on an Input gate"),
    }
}

/// Four-valued gate function over an input iterator. `Dff` yields `X`;
/// `Input` has no combinational function.
///
/// # Panics
///
/// Panics on `GateKind::Input`.
#[inline]
pub fn eval_logic_from<I: Iterator<Item = Logic>>(kind: GateKind, mut ins: I) -> Logic {
    match kind {
        GateKind::Const0 => Logic::Zero,
        GateKind::Const1 => Logic::One,
        GateKind::Buf => ins.next().unwrap(),
        GateKind::Not => !ins.next().unwrap(),
        GateKind::And => ins.fold(Logic::One, Logic::and),
        GateKind::Nand => !ins.fold(Logic::One, Logic::and),
        GateKind::Or => ins.fold(Logic::Zero, Logic::or),
        GateKind::Nor => !ins.fold(Logic::Zero, Logic::or),
        GateKind::Xor => ins.fold(Logic::Zero, Logic::xor),
        GateKind::Xnor => !ins.fold(Logic::Zero, Logic::xor),
        GateKind::Mux => {
            let s = ins.next().unwrap();
            let a = ins.next().unwrap();
            let b = ins.next().unwrap();
            match s.to_bool() {
                Some(false) => a,
                Some(true) => b,
                None => {
                    if a == b && !a.is_unknown() {
                        a
                    } else {
                        Logic::X
                    }
                }
            }
        }
        GateKind::Dff => Logic::X,
        GateKind::Input => panic!("eval_logic_from called on an Input gate"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::{eval_gate, eval_gate_bool, eval_gate_word};
    use rescue_netlist::generate;

    #[test]
    fn csr_layout_matches_netlist() {
        let net = generate::c17();
        let c = CompiledNetlist::new(&net);
        assert_eq!(c.len(), net.len());
        for (id, g) in net.iter() {
            assert_eq!(c.kind(id.index()), g.kind());
            let pins: Vec<u32> = g.inputs().iter().map(|p| p.index() as u32).collect();
            assert_eq!(c.pins_of(id.index()), &pins[..]);
        }
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.po_drivers().len(), 2);
        for &po in c.po_drivers() {
            assert!(c.is_po(po as usize));
        }
    }

    #[test]
    fn fanout_csr_matches_netlist_fanout() {
        let net = generate::random_logic(6, 50, 3, 11);
        let c = CompiledNetlist::new(&net);
        let fo = net.fanout();
        for (g, fan) in fo.iter().enumerate() {
            let mut a: Vec<u32> = c.fanout_of(g).to_vec();
            let mut b: Vec<u32> = fan.iter().map(|x| x.index() as u32).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "gate {g}");
        }
    }

    #[test]
    fn topo_pos_inverts_order() {
        let net = generate::random_logic(5, 40, 2, 3);
        let c = CompiledNetlist::new(&net);
        for (pos, &g) in c.order().iter().enumerate() {
            assert_eq!(c.topo_pos(g as usize), pos as u32);
        }
        // Every gate appears after all its combinational inputs.
        for &g in c.eval_order() {
            for &p in c.pins_of(g as usize) {
                assert!(c.topo_pos(p as usize) < c.topo_pos(g as usize));
            }
        }
    }

    #[test]
    fn kernels_agree_with_slice_kernels() {
        use rescue_netlist::GateKind::*;
        for kind in [And, Nand, Or, Nor, Xor, Xnor] {
            for a in [false, true] {
                for b in [false, true] {
                    let ins = [a, b];
                    assert_eq!(
                        eval_bool_from(kind, ins.iter().copied()),
                        eval_gate_bool(kind, &ins)
                    );
                    let words = [if a { u64::MAX } else { 0 }, if b { u64::MAX } else { 0 }];
                    assert_eq!(
                        eval_word_from(kind, words.iter().copied()),
                        eval_gate_word(kind, &words)
                    );
                    let logics = [Logic::from_bool(a), Logic::from_bool(b)];
                    assert_eq!(
                        eval_logic_from(kind, logics.iter().copied()),
                        eval_gate(kind, &logics)
                    );
                }
            }
        }
        // Mux X-select resolution matches the reference kernel.
        for sel in [Logic::Zero, Logic::One, Logic::X, Logic::Z] {
            for a in [Logic::Zero, Logic::One, Logic::X] {
                for b in [Logic::Zero, Logic::One, Logic::X] {
                    let ins = [sel, a, b];
                    assert_eq!(
                        eval_logic_from(Mux, ins.iter().copied()),
                        eval_gate(Mux, &ins),
                        "{ins:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_words_into_matches_reference() {
        let net = generate::adder(4);
        let c = CompiledNetlist::new(&net);
        let words: Vec<u64> = (0..9)
            .map(|i| 0x9e3779b97f4a7c15u64.rotate_left(i))
            .collect();
        let mut values = Vec::new();
        c.eval_words_into(&words, None, &mut values).unwrap();
        for p in 0..64 {
            let pattern: Vec<bool> = words.iter().map(|w| w >> p & 1 == 1).collect();
            let serial = crate::comb::eval_bool(&net, &pattern).unwrap();
            for g in 0..net.len() {
                assert_eq!(values[g] >> p & 1 == 1, serial[g], "pattern {p}, gate {g}");
            }
        }
    }

    #[test]
    fn comb_fanout_degree_counts_non_dff_edges() {
        let net = generate::random_logic(6, 50, 3, 11);
        let c = CompiledNetlist::new(&net);
        for g in 0..c.len() {
            let want = c
                .fanout_of(g)
                .iter()
                .filter(|&&s| c.kind(s as usize) != GateKind::Dff)
                .count() as u32;
            assert_eq!(c.comb_fanout_degree(g), want, "gate {g}");
        }
        // A shift register's stages feed only DFF D-pins: combinational
        // degree 0 even though the fanout CSR row is non-empty.
        let s = generate::shift_register(3);
        let cs = CompiledNetlist::new(&s);
        for &d in cs.dff_d() {
            let all_dff = cs
                .fanout_of(d as usize)
                .iter()
                .all(|&x| cs.kind(x as usize) == GateKind::Dff);
            if all_dff {
                assert_eq!(cs.comb_fanout_degree(d as usize), 0);
            }
        }
    }

    #[test]
    fn dff_d_maps_state_capture() {
        let net = generate::shift_register(3);
        let c = CompiledNetlist::new(&net);
        assert_eq!(c.dffs().len(), 3);
        for (i, &d) in c.dff_d().iter().enumerate() {
            let dff = c.dffs()[i] as usize;
            assert_eq!(c.pins_of(dff), &[d], "DFF {i} D-pin");
        }
    }

    #[test]
    fn width_mismatch_is_reported() {
        let net = generate::c17();
        let c = CompiledNetlist::new(&net);
        let mut buf = Vec::new();
        assert!(matches!(
            c.eval_words_into(&[0; 3], None, &mut buf),
            Err(SimError::InputWidthMismatch {
                expected: 5,
                found: 3
            })
        ));
    }

    #[test]
    fn sweep_engages_only_on_levelized_arenas_and_matches_gate_order() {
        let net = generate::random_logic(8, 300, 4, 9);
        let (lev, _) = rescue_netlist::renumber::levelized(&net);
        let mut c = CompiledNetlist::new(&lev);
        assert!(c.sweep_plan().is_some(), "levelized ids select the sweep");
        let words: Vec<u64> = (0..8)
            .map(|i| 0xdeadbeefcafef00du64.rotate_left(i))
            .collect();
        let mut swept = Vec::new();
        c.eval_words_into(&words, None, &mut swept).unwrap();
        c.set_sweep(false);
        assert!(c.sweep_plan().is_none());
        let mut gate_order = Vec::new();
        c.eval_words_into(&words, None, &mut gate_order).unwrap();
        assert_eq!(swept, gate_order, "sweep must be byte-identical");
        c.set_sweep(true);
        assert!(c.sweep_plan().is_some(), "toggle re-derives the plan");
        // The slice variant fills a dirty arena to the same bytes.
        let mut arena = vec![u64::MAX; c.len()];
        c.eval_words_fill(&words, None, &mut arena).unwrap();
        assert_eq!(arena, gate_order);
    }

    #[test]
    fn decoded_arena_rederives_the_sweep() {
        let (lev, _) = rescue_netlist::renumber::levelized(&generate::random_logic(7, 250, 3, 4));
        let c = CompiledNetlist::new(&lev);
        let back = CompiledNetlist::from_bytes(&c.to_bytes()).expect("decode");
        assert!(back.sweep_plan().is_some(), "cache hits keep the sweep");
        assert_eq!(c, back);
    }

    #[test]
    fn wire_format_round_trips() {
        for net in [
            generate::c17(),
            generate::random_logic(8, 300, 4, 9),
            generate::control_fsm(),
        ] {
            let c = CompiledNetlist::new(&net);
            let bytes = c.to_bytes();
            let back = CompiledNetlist::from_bytes(&bytes).expect("decode");
            assert_eq!(c, back, "round trip must be lossless for {}", net.name());
        }
    }

    #[test]
    fn wire_format_rejects_corruption() {
        let c = CompiledNetlist::new(&generate::c17());
        let bytes = c.to_bytes();
        assert!(CompiledNetlist::from_bytes(&[]).is_none());
        assert!(CompiledNetlist::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 0xff;
        assert!(CompiledNetlist::from_bytes(&wrong_version).is_none());
        let mut bad_kind = bytes.clone();
        // First kind byte sits after version(1) + depth(4) + len(8).
        bad_kind[13] = 0xee;
        assert!(CompiledNetlist::from_bytes(&bad_kind).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(CompiledNetlist::from_bytes(&trailing).is_none());
    }
}
