//! Four-valued logic and gate evaluation kernels.

use rescue_netlist::GateKind;
use std::fmt;

/// IEEE-1164-style four-valued logic: `0`, `1`, unknown `X`, high-Z `Z`.
///
/// `Z` behaves as `X` when consumed by a gate input (there are no tristate
/// gates in the IR; `Z` exists for scan-chain and bus modelling in the RSN
/// crate).
///
/// # Examples
///
/// ```
/// use rescue_sim::Logic;
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(!Logic::Zero, Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Logic {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Logic {
    /// Converts from a bool.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for the binary values, `None` for `X`/`Z`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// Returns `true` for `X` or `Z`.
    pub fn is_unknown(self) -> bool {
        matches!(self, Logic::X | Logic::Z)
    }

    /// Kleene AND.
    pub fn and(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Kleene OR.
    pub fn or(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Kleene XOR.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.norm(), other.norm()) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => Logic::from_bool(a != b),
        }
    }

    /// Kleene NOT.
    #[allow(clippy::should_implement_trait)] // `std::ops::Not` is also implemented
    pub fn not(self) -> Logic {
        match self.norm() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }

    fn norm(self) -> Logic {
        if self == Logic::Z {
            Logic::X
        } else {
            self
        }
    }

    /// The character used in waveform dumps: `0`, `1`, `x`, `z`.
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
            Logic::Z => 'z',
        }
    }

    /// Parses a waveform character (case-insensitive). Returns `None` for
    /// anything outside `01xXzZ`.
    pub fn from_char(c: char) -> Option<Logic> {
        Some(match c {
            '0' => Logic::Zero,
            '1' => Logic::One,
            'x' | 'X' => Logic::X,
            'z' | 'Z' => Logic::Z,
            _ => return None,
        })
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        self.or(rhs)
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        self.xor(rhs)
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        Logic::not(self)
    }
}

/// Evaluates one gate over four-valued inputs.
///
/// `Input`, `Dff` and constants are handled by the caller (they do not
/// depend on gate inputs in the combinational sense).
///
/// # Panics
///
/// Panics if called with `GateKind::Input` or `GateKind::Dff`.
pub fn eval_gate(kind: GateKind, ins: &[Logic]) -> Logic {
    match kind {
        GateKind::Const0 => Logic::Zero,
        GateKind::Const1 => Logic::One,
        GateKind::Buf => ins[0],
        GateKind::Not => !ins[0],
        GateKind::And => ins.iter().copied().fold(Logic::One, Logic::and),
        GateKind::Nand => !ins.iter().copied().fold(Logic::One, Logic::and),
        GateKind::Or => ins.iter().copied().fold(Logic::Zero, Logic::or),
        GateKind::Nor => !ins.iter().copied().fold(Logic::Zero, Logic::or),
        GateKind::Xor => ins.iter().copied().fold(Logic::Zero, Logic::xor),
        GateKind::Xnor => !ins.iter().copied().fold(Logic::Zero, Logic::xor),
        GateKind::Mux => match ins[0].norm() {
            Logic::Zero => ins[1],
            Logic::One => ins[2],
            _ => {
                if ins[1] == ins[2] && !ins[1].is_unknown() {
                    ins[1]
                } else {
                    Logic::X
                }
            }
        },
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate called on non-combinational kind {kind}")
        }
    }
}

/// Evaluates one gate over two-valued inputs.
///
/// # Panics
///
/// Panics if called with `GateKind::Input` or `GateKind::Dff`.
pub fn eval_gate_bool(kind: GateKind, ins: &[bool]) -> bool {
    match kind {
        GateKind::Const0 => false,
        GateKind::Const1 => true,
        GateKind::Buf => ins[0],
        GateKind::Not => !ins[0],
        GateKind::And => ins.iter().all(|&b| b),
        GateKind::Nand => !ins.iter().all(|&b| b),
        GateKind::Or => ins.iter().any(|&b| b),
        GateKind::Nor => !ins.iter().any(|&b| b),
        GateKind::Xor => ins.iter().fold(false, |a, &b| a ^ b),
        GateKind::Xnor => !ins.iter().fold(false, |a, &b| a ^ b),
        GateKind::Mux => {
            if ins[0] {
                ins[2]
            } else {
                ins[1]
            }
        }
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate_bool called on non-combinational kind {kind}")
        }
    }
}

/// Evaluates one gate over 64 packed patterns at once (bit `i` of each word
/// is pattern `i`).
///
/// # Panics
///
/// Panics if called with `GateKind::Input` or `GateKind::Dff`.
pub fn eval_gate_word(kind: GateKind, ins: &[u64]) -> u64 {
    match kind {
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Buf => ins[0],
        GateKind::Not => !ins[0],
        GateKind::And => ins.iter().fold(u64::MAX, |a, &b| a & b),
        GateKind::Nand => !ins.iter().fold(u64::MAX, |a, &b| a & b),
        GateKind::Or => ins.iter().fold(0, |a, &b| a | b),
        GateKind::Nor => !ins.iter().fold(0, |a, &b| a | b),
        GateKind::Xor => ins.iter().fold(0, |a, &b| a ^ b),
        GateKind::Xnor => !ins.iter().fold(0, |a, &b| a ^ b),
        GateKind::Mux => (!ins[0] & ins[1]) | (ins[0] & ins[2]),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate_word called on non-combinational kind {kind}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kleene_tables() {
        use Logic::*;
        assert_eq!(Zero & X, Zero);
        assert_eq!(One & X, X);
        assert_eq!(One | X, One);
        assert_eq!(Zero | X, X);
        assert_eq!(X ^ One, X);
        assert_eq!(!X, X);
        assert_eq!(!Z, X);
        assert_eq!(Z & One, X);
        assert_eq!(Z & Zero, Zero);
    }

    #[test]
    fn char_round_trip() {
        for v in [Logic::Zero, Logic::One, Logic::X, Logic::Z] {
            assert_eq!(Logic::from_char(v.to_char()), Some(v));
        }
        assert_eq!(Logic::from_char('q'), None);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::Z.is_unknown());
        let l: Logic = true.into();
        assert_eq!(l, Logic::One);
    }

    #[test]
    fn gate_eval_consistency_across_domains() {
        // For every 2-input combinational kind, bool, word and 4-valued
        // evaluation agree on binary inputs.
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for kind in kinds {
            for a in [false, true] {
                for b in [false, true] {
                    let vb = eval_gate_bool(kind, &[a, b]);
                    let vl = eval_gate(kind, &[a.into(), b.into()]);
                    let w = eval_gate_word(
                        kind,
                        &[if a { u64::MAX } else { 0 }, if b { u64::MAX } else { 0 }],
                    );
                    assert_eq!(vl.to_bool(), Some(vb));
                    assert_eq!(w & 1 == 1, vb);
                }
            }
        }
    }

    #[test]
    fn mux_eval() {
        assert!(!eval_gate_bool(GateKind::Mux, &[false, false, true]));
        assert!(eval_gate_bool(GateKind::Mux, &[true, false, true]));
        // X select with agreeing data resolves
        assert_eq!(
            eval_gate(GateKind::Mux, &[Logic::X, Logic::One, Logic::One]),
            Logic::One
        );
        assert_eq!(
            eval_gate(GateKind::Mux, &[Logic::X, Logic::Zero, Logic::One]),
            Logic::X
        );
    }

    #[test]
    #[should_panic(expected = "non-combinational")]
    fn eval_rejects_input_kind() {
        eval_gate(GateKind::Input, &[]);
    }
}
