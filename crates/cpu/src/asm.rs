//! A small two-pass assembler for the ISA of [`crate::isa`].
//!
//! Syntax: one instruction per line; `#` comments; `label:` prefixes;
//! branch targets may be labels (resolved to relative offsets) or
//! numeric immediates; jump targets may be labels (absolute word
//! addresses, assuming a base of 0) or numbers.

use crate::isa::Instruction;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AssembleError {}

fn err(line: usize, message: impl Into<String>) -> AssembleError {
    AssembleError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AssembleError> {
    tok.trim()
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&r| r < 32)
        .ok_or_else(|| err(line, format!("expected register, found `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AssembleError> {
    let t = tok.trim();
    let parsed = if let Some(h) = t.strip_prefix("0x") {
        i64::from_str_radix(h, 16).ok()
    } else if let Some(h) = t.strip_prefix("-0x") {
        i64::from_str_radix(h, 16).ok().map(|v| -v)
    } else {
        t.parse::<i64>().ok()
    };
    parsed
        .filter(|v| (-(1i64 << 31)..(1i64 << 32)).contains(v))
        .map(|v| v as i32)
        .ok_or_else(|| err(line, format!("expected immediate, found `{tok}`")))
}

/// Assembles a program.
///
/// # Errors
///
/// Returns the first [`AssembleError`] encountered.
///
/// # Examples
///
/// ```
/// use rescue_cpu::asm::assemble;
/// let p = assemble("addi r1, r0, 1\nhalt")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), rescue_cpu::asm::AssembleError>(())
/// ```
pub fn assemble(text: &str) -> Result<Vec<Instruction>, AssembleError> {
    // Pass 1: strip comments/labels, record label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let mut body = raw.split('#').next().unwrap_or("").trim().to_string();
        while let Some(colon) = body.find(':') {
            let label = body[..colon].trim().to_string();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line_no, "malformed label"));
            }
            if labels.insert(label.clone(), lines.len() as u32).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            body = body[colon + 1..].trim().to_string();
        }
        if !body.is_empty() {
            lines.push((line_no, body));
        }
    }
    // Pass 2: encode.
    let mut program = Vec::with_capacity(lines.len());
    for (idx, (line_no, body)) in lines.iter().enumerate() {
        let line = *line_no;
        let (mnemonic, rest) = body
            .split_once(char::is_whitespace)
            .map(|(m, r)| (m, r.trim()))
            .unwrap_or((body.as_str(), ""));
        let ops: Vec<&str> = if rest.is_empty() {
            vec![]
        } else {
            rest.split(',').map(|s| s.trim()).collect()
        };
        let need = |n: usize| -> Result<(), AssembleError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("{mnemonic} takes {n} operands")))
            }
        };
        let r3 = |ctor: fn(u8, u8, u8) -> Instruction| -> Result<Instruction, AssembleError> {
            need(3)?;
            Ok(ctor(
                parse_reg(ops[0], line)?,
                parse_reg(ops[1], line)?,
                parse_reg(ops[2], line)?,
            ))
        };
        let ri16 = |ctor: fn(u8, u8, i16) -> Instruction| -> Result<Instruction, AssembleError> {
            need(3)?;
            Ok(ctor(
                parse_reg(ops[0], line)?,
                parse_reg(ops[1], line)?,
                parse_imm(ops[2], line)? as i16,
            ))
        };
        let ru16 = |ctor: fn(u8, u8, u16) -> Instruction| -> Result<Instruction, AssembleError> {
            need(3)?;
            Ok(ctor(
                parse_reg(ops[0], line)?,
                parse_reg(ops[1], line)?,
                parse_imm(ops[2], line)? as u16,
            ))
        };
        let rr = |ctor: fn(u8, u8) -> Instruction| -> Result<Instruction, AssembleError> {
            need(2)?;
            Ok(ctor(parse_reg(ops[0], line)?, parse_reg(ops[1], line)?))
        };
        // Branch target: label (relative) or immediate.
        let branch_imm = |tok: &str| -> Result<i16, AssembleError> {
            if let Some(&target) = labels.get(tok.trim()) {
                Ok((target as i64 - idx as i64) as i16)
            } else {
                Ok(parse_imm(tok, line)? as i16)
            }
        };
        let jump_target = |tok: &str| -> Result<u32, AssembleError> {
            if let Some(&target) = labels.get(tok.trim()) {
                Ok(target)
            } else {
                Ok(parse_imm(tok, line)? as u32)
            }
        };
        let ins = match mnemonic {
            "add" => r3(Instruction::Add)?,
            "sub" => r3(Instruction::Sub)?,
            "and" => r3(Instruction::And)?,
            "or" => r3(Instruction::Or)?,
            "xor" => r3(Instruction::Xor)?,
            "sll" => r3(Instruction::Sll)?,
            "srl" => r3(Instruction::Srl)?,
            "sra" => r3(Instruction::Sra)?,
            "mul" => r3(Instruction::Mul)?,
            "addi" => ri16(Instruction::Addi)?,
            "andi" => ru16(Instruction::Andi)?,
            "ori" => ru16(Instruction::Ori)?,
            "xori" => ru16(Instruction::Xori)?,
            "movhi" => {
                need(2)?;
                Instruction::Movhi(parse_reg(ops[0], line)?, parse_imm(ops[1], line)? as u16)
            }
            "lw" | "sw" => {
                need(2)?;
                // rX, imm(rY)
                let (imm, base) = ops[1]
                    .split_once('(')
                    .and_then(|(i, r)| r.strip_suffix(')').map(|r| (i, r)))
                    .ok_or_else(|| err(line, "expected `imm(rN)`"))?;
                let offset = if imm.trim().is_empty() {
                    0
                } else {
                    parse_imm(imm, line)?
                } as i16;
                let rbase = parse_reg(base, line)?;
                let rdata = parse_reg(ops[0], line)?;
                if mnemonic == "lw" {
                    Instruction::Lw(rdata, rbase, offset)
                } else {
                    Instruction::Sw(rbase, rdata, offset)
                }
            }
            "sfeq" => rr(Instruction::Sfeq)?,
            "sfne" => rr(Instruction::Sfne)?,
            "sfltu" => rr(Instruction::Sfltu)?,
            "sfgeu" => rr(Instruction::Sfgeu)?,
            "bf" => {
                need(1)?;
                Instruction::Bf(branch_imm(ops[0])?)
            }
            "bnf" => {
                need(1)?;
                Instruction::Bnf(branch_imm(ops[0])?)
            }
            "j" => {
                need(1)?;
                Instruction::J(jump_target(ops[0])?)
            }
            "jal" => {
                need(1)?;
                Instruction::Jal(jump_target(ops[0])?)
            }
            "jr" => {
                need(1)?;
                Instruction::Jr(parse_reg(ops[0], line)?)
            }
            "nop" => Instruction::Nop,
            "halt" => Instruction::Halt,
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        program.push(ins);
    }
    Ok(program)
}

/// Disassembles a program to text (labels are not reconstructed).
pub fn disassemble(program: &[Instruction]) -> String {
    program
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve() {
        let p = assemble(
            "start: addi r1, r0, 2\n\
             sfne r1, r0\n\
             bf start\n\
             j end\n\
             nop\n\
             end: halt",
        )
        .unwrap();
        assert_eq!(p[2], Instruction::Bf(-2));
        assert_eq!(p[3], Instruction::J(5));
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw r1, 8(r2)\nsw r3, -4(r4)\nlw r5, (r6)").unwrap();
        assert_eq!(p[0], Instruction::Lw(1, 2, 8));
        assert_eq!(p[1], Instruction::Sw(4, 3, -4));
        assert_eq!(p[2], Instruction::Lw(5, 6, 0));
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("movhi r1, 0xDEAD\nori r1, r1, 0xBEEF").unwrap();
        assert_eq!(p[0], Instruction::Movhi(1, 0xDEAD));
        assert_eq!(p[1], Instruction::Ori(1, 1, 0xBEEF));
    }

    #[test]
    fn error_cases() {
        assert!(assemble("frobnicate r1").is_err());
        assert!(assemble("add r1, r2").is_err());
        assert!(assemble("add r1, r2, r99").is_err());
        assert!(assemble("lw r1, nope").is_err());
        assert!(assemble("x: nop\nx: nop").is_err());
        let e = assemble("add r1").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn disassemble_round_trip() {
        let src = "add r1, r2, r3\naddi r4, r5, -6\nhalt";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# header\n\nnop # trailing\n  \nhalt").unwrap();
        assert_eq!(p.len(), 2);
    }
}
