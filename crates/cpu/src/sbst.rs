//! Software-based self-test (SBST) generation and grading.
//!
//! "The proposed techniques belong to the general category of functional
//! ones (Software-based Self-test)" (paper Section III.A). An SBST
//! program exercises the processor's units with high-toggle patterns and
//! compacts every result into a software MISR signature stored to
//! memory; a fault is detected when the observable store stream differs
//! from the golden one (or the program traps/times out — a DUE).

use crate::asm::assemble;
use crate::cpu::{Cpu, CpuFault};
use crate::isa::Instruction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The architectural fault universe graded by SBST campaigns.
///
/// Register bits for `r1..=r31`, ALU result lines, the flag, and the
/// low PC bits.
pub fn cpu_fault_universe() -> Vec<CpuFault> {
    let mut faults = Vec::new();
    for reg in 1..=31u8 {
        for bit in 0..32u8 {
            for value in [false, true] {
                faults.push(CpuFault::RegisterStuck { reg, bit, value });
            }
        }
    }
    for bit in 0..32u8 {
        for value in [false, true] {
            faults.push(CpuFault::AluStuck { bit, value });
        }
    }
    faults.push(CpuFault::FlagStuck { value: false });
    faults.push(CpuFault::FlagStuck { value: true });
    for bit in 0..8u8 {
        for value in [false, true] {
            faults.push(CpuFault::PcStuck { bit, value });
        }
    }
    faults
}

/// The outcome of grading one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SbstOutcome {
    /// Observable store stream differed — detected as SDC-turned-test-fail.
    Detected,
    /// The faulty run trapped or timed out — detected as DUE.
    DetectedDue,
    /// No observable difference.
    Undetected,
}

/// Campaign report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbstReport {
    faults: Vec<CpuFault>,
    outcomes: Vec<SbstOutcome>,
}

impl SbstReport {
    /// Per-fault outcomes, parallel to [`Self::faults`].
    pub fn outcomes(&self) -> &[SbstOutcome] {
        &self.outcomes
    }

    /// The graded fault list.
    pub fn faults(&self) -> &[CpuFault] {
        &self.faults
    }

    /// Overall fault coverage.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        let det = self
            .outcomes
            .iter()
            .filter(|o| !matches!(o, SbstOutcome::Undetected))
            .count();
        det as f64 / self.outcomes.len() as f64
    }

    /// Coverage restricted to faults matching `filter`.
    pub fn coverage_of<F: Fn(&CpuFault) -> bool>(&self, filter: F) -> f64 {
        let subset: Vec<_> = self
            .faults
            .iter()
            .zip(&self.outcomes)
            .filter(|(f, _)| filter(f))
            .collect();
        if subset.is_empty() {
            return 1.0;
        }
        let det = subset
            .iter()
            .filter(|(_, o)| !matches!(o, SbstOutcome::Undetected))
            .count();
        det as f64 / subset.len() as f64
    }
}

/// Generates the deterministic SBST program.
///
/// Structure: (1) register-file march with complementary patterns over
/// `r16..=r31`; (2) ALU sweep — every opcode over walking-one and mask
/// patterns, all results compacted into a rotating-XOR signature in
/// `r2`; (3) flag/branch test; all signatures stored to `result_base`.
///
/// # Panics
///
/// Panics only on an internal assembler bug.
pub fn generate_sbst(result_base: u32) -> Vec<Instruction> {
    let mut s = String::new();
    let mut store_idx = 0u32;
    // Setup: r11 = 1, r12 = 31 for rotation.
    let _ = writeln!(s, "addi r11, r0, 1");
    let _ = writeln!(s, "addi r12, r0, 31");
    let _ = writeln!(s, "addi r2, r0, 0x123");
    // (1) register file march over r16..r31.
    for pattern in ["0xA5A5", "0x5A5A", "0xFFFF", "0x0000"] {
        for reg in 16..=31 {
            let _ = writeln!(s, "movhi r{reg}, {pattern}");
            let _ = writeln!(s, "ori r{reg}, r{reg}, {pattern}");
        }
        for reg in 16..=31 {
            // fold into signature: r2 = rot1(r2) ^ rReg
            let _ = writeln!(s, "sll r14, r2, r11");
            let _ = writeln!(s, "srl r15, r2, r12");
            let _ = writeln!(s, "or r2, r14, r15");
            let _ = writeln!(s, "xor r2, r2, r{reg}");
        }
        let _ = writeln!(s, "sw r2, {}(r0)", result_base + store_idx);
        store_idx += 1;
    }
    // (2) ALU sweep: operands from a pattern table.
    let patterns = [
        0x0000_0001u32,
        0x8000_0000,
        0xAAAA_AAAA,
        0x5555_5555,
        0x0F0F_0F0F,
        0xFFFF_0000,
        0x0000_FFFF,
        0xDEAD_BEEF,
    ];
    let ops = ["add", "sub", "and", "or", "xor", "mul"];
    for (i, &pa) in patterns.iter().enumerate() {
        let pb = patterns[(i + 3) % patterns.len()];
        let _ = writeln!(s, "movhi r1, {:#x}", pa >> 16);
        let _ = writeln!(s, "ori r1, r1, {:#x}", pa & 0xFFFF);
        let _ = writeln!(s, "movhi r13, {:#x}", pb >> 16);
        let _ = writeln!(s, "ori r13, r13, {:#x}", pb & 0xFFFF);
        for op in ops {
            let _ = writeln!(s, "{op} r3, r1, r13");
            let _ = writeln!(s, "sll r14, r2, r11");
            let _ = writeln!(s, "srl r15, r2, r12");
            let _ = writeln!(s, "or r2, r14, r15");
            let _ = writeln!(s, "xor r2, r2, r3");
        }
        // shifts with controlled amounts
        for op in ["sll", "srl", "sra"] {
            let _ = writeln!(s, "andi r4, r13, 31");
            let _ = writeln!(s, "{op} r3, r1, r4");
            let _ = writeln!(s, "sll r14, r2, r11");
            let _ = writeln!(s, "srl r15, r2, r12");
            let _ = writeln!(s, "or r2, r14, r15");
            let _ = writeln!(s, "xor r2, r2, r3");
        }
        let _ = writeln!(s, "sw r2, {}(r0)", result_base + store_idx);
        store_idx += 1;
    }
    // (3) flag and branch test: count compares that succeed.
    let _ = writeln!(s, "addi r5, r0, 0");
    let comparisons = [
        ("sfeq", 7, 7, true),
        ("sfeq", 7, 8, false),
        ("sfne", 7, 8, true),
        ("sfltu", 3, 9, true),
        ("sfltu", 9, 3, false),
        ("sfgeu", 9, 3, true),
    ];
    for (i, (op, a, b, _expect)) in comparisons.iter().enumerate() {
        let _ = writeln!(s, "addi r6, r0, {a}");
        let _ = writeln!(s, "addi r7, r0, {b}");
        let _ = writeln!(s, "{op} r6, r7");
        let _ = writeln!(s, "bnf skip{i}");
        let _ = writeln!(s, "addi r5, r5, {}", 1 << i);
        let _ = writeln!(s, "skip{i}: nop");
    }
    let _ = writeln!(s, "sw r5, {}(r0)", result_base + store_idx);
    let _ = writeln!(s, "halt");
    assemble(&s).expect("generated SBST assembles")
}

/// Generates a random-instruction baseline SBST of roughly comparable
/// length (the paper's comparison point for deterministic generation).
pub fn generate_random_sbst(result_base: u32, length: usize, seed: u64) -> Vec<Instruction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = String::new();
    let _ = writeln!(s, "addi r2, r0, 0x321");
    for _ in 0..length {
        let d = rng.gen_range(1..16);
        let a = rng.gen_range(0..16);
        let b = rng.gen_range(0..16);
        match rng.gen_range(0..8) {
            0 => {
                let _ = writeln!(s, "add r{d}, r{a}, r{b}");
            }
            1 => {
                let _ = writeln!(s, "sub r{d}, r{a}, r{b}");
            }
            2 => {
                let _ = writeln!(s, "xor r{d}, r{a}, r{b}");
            }
            3 => {
                let _ = writeln!(s, "and r{d}, r{a}, r{b}");
            }
            4 => {
                let _ = writeln!(s, "or r{d}, r{a}, r{b}");
            }
            5 => {
                let _ = writeln!(s, "mul r{d}, r{a}, r{b}");
            }
            6 => {
                let imm = rng.gen_range(-1000i32..1000);
                let _ = writeln!(s, "addi r{d}, r{a}, {imm}");
            }
            _ => {
                let _ = writeln!(s, "xor r2, r2, r{d}");
            }
        }
    }
    let _ = writeln!(s, "sw r2, {}(r0)", result_base);
    let _ = writeln!(s, "halt");
    assemble(&s).expect("generated random SBST assembles")
}

/// Grades `program` against `faults`; detection = differing store
/// stream or a DUE (trap/timeout).
pub fn grade(program: &[Instruction], faults: &[CpuFault], max_cycles: u64) -> SbstReport {
    let golden = run_collect(program, None, max_cycles);
    let golden_trace = golden.expect("golden SBST must run clean");
    let outcomes = faults
        .iter()
        .map(|&f| match run_collect(program, Some(f), max_cycles) {
            Ok(trace) => {
                if trace == golden_trace {
                    SbstOutcome::Undetected
                } else {
                    SbstOutcome::Detected
                }
            }
            Err(_) => SbstOutcome::DetectedDue,
        })
        .collect();
    SbstReport {
        faults: faults.to_vec(),
        outcomes,
    }
}

fn run_collect(
    program: &[Instruction],
    fault: Option<CpuFault>,
    max_cycles: u64,
) -> Result<Vec<(u32, u32)>, crate::cpu::ExecError> {
    let mut cpu = Cpu::new(4096);
    cpu.load(program, 0);
    if let Some(f) = fault {
        cpu.inject(f);
    }
    cpu.run(max_cycles)?;
    Ok(cpu.store_trace().to_vec())
}

/// Safe-in-context analysis \[33\]: faults that do not change a given
/// *application*'s outputs are safe for that deployment even if SBST
/// detects them. Returns `(safe, dangerous)` fault partitions.
pub fn safe_in_context(
    program: &[Instruction],
    data: &[(u32, u32)],
    faults: &[CpuFault],
    max_cycles: u64,
) -> (Vec<CpuFault>, Vec<CpuFault>) {
    let run = |fault: Option<CpuFault>| -> Option<Vec<(u32, u32)>> {
        let mut cpu = Cpu::new(4096);
        cpu.load(program, 0);
        for &(a, v) in data {
            cpu.set_memory_word(a, v);
        }
        if let Some(f) = fault {
            cpu.inject(f);
        }
        cpu.run(max_cycles).ok()?;
        Some(cpu.store_trace().to_vec())
    };
    let golden = run(None).expect("application runs clean");
    let mut safe = Vec::new();
    let mut dangerous = Vec::new();
    for &f in faults {
        match run(Some(f)) {
            Some(trace) if trace == golden => safe.push(f),
            _ => dangerous.push(f),
        }
    }
    (safe, dangerous)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_universe(stride: usize) -> Vec<CpuFault> {
        cpu_fault_universe().into_iter().step_by(stride).collect()
    }

    #[test]
    fn golden_sbst_runs_clean() {
        let p = generate_sbst(3000);
        let trace = run_collect(&p, None, 200_000).unwrap();
        assert!(trace.len() >= 12, "signatures stored: {}", trace.len());
    }

    #[test]
    fn sbst_catches_alu_and_register_faults() {
        let p = generate_sbst(3000);
        let faults = vec![
            CpuFault::AluStuck {
                bit: 0,
                value: true,
            },
            CpuFault::AluStuck {
                bit: 17,
                value: false,
            },
            CpuFault::RegisterStuck {
                reg: 20,
                bit: 4,
                value: true,
            },
            CpuFault::FlagStuck { value: true },
            CpuFault::FlagStuck { value: false },
        ];
        let r = grade(&p, &faults, 200_000);
        assert_eq!(r.coverage(), 1.0, "{:?}", r.outcomes());
    }

    #[test]
    fn deterministic_sbst_beats_random() {
        let det = generate_sbst(3000);
        let rnd = generate_random_sbst(3000, det.len(), 5);
        let faults = sample_universe(37);
        let r_det = grade(&det, &faults, 300_000);
        let r_rnd = grade(&rnd, &faults, 300_000);
        assert!(
            r_det.coverage() >= r_rnd.coverage(),
            "det {} vs rnd {}",
            r_det.coverage(),
            r_rnd.coverage()
        );
        assert!(r_det.coverage() > 0.6, "{}", r_det.coverage());
    }

    #[test]
    fn coverage_of_filters() {
        let p = generate_sbst(3000);
        let faults = vec![
            CpuFault::AluStuck {
                bit: 3,
                value: true,
            },
            CpuFault::RegisterStuck {
                reg: 30,
                bit: 0,
                value: true,
            },
        ];
        let r = grade(&p, &faults, 200_000);
        let alu_cov = r.coverage_of(|f| matches!(f, CpuFault::AluStuck { .. }));
        assert!(alu_cov > 0.0);
        assert_eq!(r.coverage_of(|_| false), 1.0, "empty subset convention");
    }

    #[test]
    fn safe_in_context_partition() {
        // An application that never uses r25: faults there are safe.
        let p = assemble(
            "addi r1, r0, 7\n\
             mul r3, r1, r1\n\
             sw r3, 100(r0)\n\
             halt",
        )
        .unwrap();
        let faults = vec![
            CpuFault::RegisterStuck {
                reg: 25,
                bit: 3,
                value: true,
            },
            CpuFault::AluStuck {
                bit: 0,
                value: false,
            },
        ];
        let (safe, dangerous) = safe_in_context(&p, &[], &faults, 10_000);
        assert_eq!(safe.len(), 1);
        assert!(matches!(safe[0], CpuFault::RegisterStuck { reg: 25, .. }));
        assert_eq!(dangerous.len(), 1);
    }

    #[test]
    fn universe_size() {
        let u = cpu_fault_universe();
        assert_eq!(u.len(), 31 * 32 * 2 + 64 + 2 + 16);
    }
}
