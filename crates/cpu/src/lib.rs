//! CPU substrate and AutoSoC benchmark for RESCUE-rs.
//!
//! The RESCUE AutoSoC benchmark (paper Section IV.B) is "a SoC hardware
//! based on the OR1200 CPU … available in a number of configurations,
//! including different safety mechanisms to increase reliability, such
//! as LockStep for the CPU and ECCs for the memories". This crate
//! provides the executable equivalent:
//!
//! * [`isa`] + [`asm`] — an OR1K-flavoured 32-bit RISC subset with a
//!   binary encoding, disassembler and a small assembler.
//! * [`cpu`] — the instruction-set simulator with architectural fault
//!   injection points (register bits, ALU lanes, PC, flag).
//! * [`programs`] — representative automotive workloads (CRC-32, FIR
//!   filter, bubble sort, matrix multiply).
//! * [`sbst`] — software-based self-test generation and grading
//!   (paper Section III.A: \[23\], \[28\], \[33\]), including
//!   *safe-in-context* fault identification.
//! * [`autosoc`] — the benchmark configurations (baseline, lockstep,
//!   ECC memory) under SEU campaigns (experiment E8).
//!
//! # Examples
//!
//! Assemble and run a small program:
//!
//! ```
//! # use std::error::Error;
//! use rescue_cpu::asm::assemble;
//! use rescue_cpu::cpu::Cpu;
//!
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let program = assemble(
//!     "addi r1, r0, 21\n\
//!      add  r2, r1, r1\n\
//!      sw   r2, 0(r0)\n\
//!      halt",
//! )?;
//! let mut cpu = Cpu::new(1024);
//! cpu.load(&program, 0);
//! cpu.run(100)?;
//! assert_eq!(cpu.memory_word(0), 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod autosoc;
pub mod cpu;
pub mod isa;
pub mod programs;
pub mod sbst;

pub use cpu::{Cpu, CpuFault, ExecError};
pub use isa::Instruction;
