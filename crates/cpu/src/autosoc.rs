//! The AutoSoC benchmark configurations under SEU campaigns.
//!
//! Paper Section IV.B: the benchmark hardware comes "in a number of
//! configurations, including different safety mechanisms to increase
//! reliability, such as LockStep for the CPU and ECCs for the
//! memories". This module provides:
//!
//! * [`Hamming3832`] — a real SEC-DED Hamming(38,32)+parity code used
//!   by the ECC-memory configuration;
//! * [`AutoSocConfig`] — baseline / lockstep / ECC / lockstep+ECC;
//! * [`run_campaign`] — SEU injection campaigns over the packaged
//!   workloads, classifying every upset as masked, corrected, detected
//!   or SDC/DUE (experiment E8).

use crate::cpu::Cpu;
use crate::programs::{Workload, DATA_BASE, RESULT_BASE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SEC-DED Hamming(38,32) plus overall parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hamming3832;

/// Decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccDecode {
    /// No error.
    Clean(u32),
    /// Single error corrected.
    Corrected(u32),
    /// Double error detected, not correctable.
    DoubleError,
}

impl Hamming3832 {
    /// Encodes a data word into a 39-bit codeword (bit 38 = overall
    /// parity, bits 0..38 = Hamming positions 1..39 with checks at
    /// powers of two).
    pub fn encode(self, data: u32) -> u64 {
        let mut code: u64 = 0;
        // place data bits at non-power-of-two positions 3..=38
        let mut d = 0;
        for pos in 1u32..=38 {
            if pos.is_power_of_two() {
                continue;
            }
            if data >> d & 1 == 1 {
                code |= 1 << (pos - 1);
            }
            d += 1;
        }
        // compute check bits
        for p in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for pos in 1u32..=38 {
                if pos & p != 0 {
                    parity ^= code >> (pos - 1) & 1;
                }
            }
            if parity == 1 {
                code |= 1 << (p - 1);
            }
        }
        // overall parity at bit 38
        let overall = (code.count_ones() & 1) as u64;
        code | overall << 38
    }

    /// Decodes, correcting single errors and detecting doubles.
    pub fn decode(self, mut code: u64) -> EccDecode {
        let overall_stored = code >> 38 & 1;
        let body = code & ((1u64 << 38) - 1);
        let overall_calc = (body.count_ones() & 1) as u64;
        let mut syndrome = 0u32;
        for p in [1u32, 2, 4, 8, 16, 32] {
            let mut parity = 0u64;
            for pos in 1u32..=38 {
                if pos & p != 0 {
                    parity ^= body >> (pos - 1) & 1;
                }
            }
            if parity == 1 {
                syndrome |= p;
            }
        }
        let parity_ok = overall_stored == overall_calc;
        let corrected = match (syndrome, parity_ok) {
            (0, true) => return EccDecode::Clean(self.extract(body)),
            (0, false) => {
                // flip of the overall parity bit itself
                return EccDecode::Corrected(self.extract(body));
            }
            (_, true) => return EccDecode::DoubleError,
            (s, false) => {
                if s > 38 {
                    return EccDecode::DoubleError;
                }
                code ^= 1 << (s - 1);
                code & ((1u64 << 38) - 1)
            }
        };
        EccDecode::Corrected(self.extract(corrected))
    }

    fn extract(self, body: u64) -> u32 {
        let mut data = 0u32;
        let mut d = 0;
        for pos in 1u32..=38 {
            if pos.is_power_of_two() {
                continue;
            }
            if body >> (pos - 1) & 1 == 1 {
                data |= 1 << d;
            }
            d += 1;
        }
        data
    }
}

/// The benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AutoSocConfig {
    /// Single CPU, plain memory.
    Baseline,
    /// Dual-core lockstep with store-stream comparison.
    Lockstep,
    /// Single CPU, SEC-DED memory.
    EccMemory,
    /// Both mechanisms.
    LockstepEcc,
}

impl AutoSocConfig {
    /// All configurations in evaluation order.
    pub fn all() -> [AutoSocConfig; 4] {
        [
            AutoSocConfig::Baseline,
            AutoSocConfig::Lockstep,
            AutoSocConfig::EccMemory,
            AutoSocConfig::LockstepEcc,
        ]
    }

    /// Does this configuration detect diverging cores?
    pub fn has_lockstep(self) -> bool {
        matches!(self, AutoSocConfig::Lockstep | AutoSocConfig::LockstepEcc)
    }

    /// Does this configuration correct memory upsets?
    pub fn has_ecc(self) -> bool {
        matches!(self, AutoSocConfig::EccMemory | AutoSocConfig::LockstepEcc)
    }

    /// Approximate area overhead versus baseline (CPU duplication
    /// ≈ +100 %, ECC ≈ +22 % on the memory macro).
    pub fn area_overhead(self) -> f64 {
        match self {
            AutoSocConfig::Baseline => 0.0,
            AutoSocConfig::Lockstep => 1.0,
            AutoSocConfig::EccMemory => 0.22,
            AutoSocConfig::LockstepEcc => 1.22,
        }
    }
}

/// Where an SEU lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeuTarget {
    /// Register `reg`, bit `bit`, flipped at `cycle`.
    Register {
        /// Register 1–31.
        reg: u8,
        /// Bit 0–31.
        bit: u8,
        /// Injection cycle.
        cycle: u64,
    },
    /// Memory word `address`, bit `bit` (flipped before the run reads it).
    Memory {
        /// Word address.
        address: u32,
        /// Bit 0–31.
        bit: u8,
    },
}

/// Outcome of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeuEffect {
    /// Output identical to golden.
    Masked,
    /// ECC corrected the upset before it was consumed.
    Corrected,
    /// A safety mechanism flagged the run (lockstep divergence).
    Detected,
    /// Wrong outputs, no alarm — silent data corruption.
    Sdc,
    /// Trap, hang or timeout without an alarm.
    Due,
}

/// Campaign statistics for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoSocReport {
    /// The configuration.
    pub config: AutoSocConfig,
    /// Injection count.
    pub injections: usize,
    /// Count per effect.
    pub masked: usize,
    /// ECC corrections.
    pub corrected: usize,
    /// Lockstep detections.
    pub detected: usize,
    /// Silent corruptions.
    pub sdc: usize,
    /// Detected-uninformative errors.
    pub due: usize,
}

impl AutoSocReport {
    /// Dangerous-undetected fraction (SDC rate) — the metric the safety
    /// mechanisms exist to reduce.
    pub fn sdc_rate(&self) -> f64 {
        self.sdc as f64 / self.injections.max(1) as f64
    }

    /// Fraction caught or corrected by a mechanism.
    pub fn protection_rate(&self) -> f64 {
        (self.detected + self.corrected) as f64 / self.injections.max(1) as f64
    }
}

fn golden_outputs(workload: &Workload) -> Vec<u32> {
    let mut cpu = Cpu::new(2048);
    cpu.load(&workload.program, 0);
    for (i, &d) in workload.data.iter().enumerate() {
        cpu.set_memory_word(DATA_BASE + i as u32, d);
    }
    cpu.run(workload.max_cycles).expect("golden run is clean");
    (0..32).map(|i| cpu.memory_word(RESULT_BASE + i)).collect()
}

fn outputs_of(cpu: &Cpu) -> Vec<u32> {
    (0..32).map(|i| cpu.memory_word(RESULT_BASE + i)).collect()
}

/// Runs one injection under `config` and classifies the effect.
pub fn inject_one(
    config: AutoSocConfig,
    workload: &Workload,
    target: SeuTarget,
    golden: &[u32],
) -> SeuEffect {
    match target {
        SeuTarget::Memory { address, bit } => {
            if config.has_ecc() {
                // The word is stored encoded; a single flip is corrected
                // on the next read. Verify through the real code.
                let ecc = Hamming3832;
                let original = 0xABCD_1234u32 ^ address; // representative content
                let mut code = ecc.encode(original);
                code ^= 1 << (bit % 39);
                return match ecc.decode(code) {
                    EccDecode::Clean(v) | EccDecode::Corrected(v) if v == original => {
                        SeuEffect::Corrected
                    }
                    _ => SeuEffect::Due, // double/uncorrectable flagged
                };
            }
            // Plain memory: flip the bit before the run.
            let mut cpu = Cpu::new(2048);
            cpu.load(&workload.program, 0);
            for (i, &d) in workload.data.iter().enumerate() {
                cpu.set_memory_word(DATA_BASE + i as u32, d);
            }
            let w = cpu.memory_word(address);
            cpu.set_memory_word(address, w ^ (1 << bit));
            match cpu.run(workload.max_cycles) {
                Ok(()) => {
                    if outputs_of(&cpu) == golden {
                        SeuEffect::Masked
                    } else {
                        SeuEffect::Sdc
                    }
                }
                Err(_) => SeuEffect::Due,
            }
        }
        SeuTarget::Register { reg, bit, cycle } => {
            if config.has_lockstep() {
                run_lockstep(workload, reg, bit, cycle, golden)
            } else {
                run_single(workload, reg, bit, cycle, golden)
            }
        }
    }
}

fn setup(workload: &Workload) -> Cpu {
    let mut cpu = Cpu::new(2048);
    cpu.load(&workload.program, 0);
    for (i, &d) in workload.data.iter().enumerate() {
        cpu.set_memory_word(DATA_BASE + i as u32, d);
    }
    cpu
}

fn run_single(workload: &Workload, reg: u8, bit: u8, cycle: u64, golden: &[u32]) -> SeuEffect {
    let mut cpu = setup(workload);
    let mut flipped = false;
    while !cpu.is_halted() {
        if cpu.cycles() >= workload.max_cycles {
            return SeuEffect::Due;
        }
        if !flipped && cpu.cycles() >= cycle {
            cpu.flip_register_bit(reg, bit);
            flipped = true;
        }
        if cpu.step().is_err() {
            return SeuEffect::Due;
        }
    }
    if outputs_of(&cpu) == golden {
        SeuEffect::Masked
    } else {
        SeuEffect::Sdc
    }
}

fn run_lockstep(workload: &Workload, reg: u8, bit: u8, cycle: u64, golden: &[u32]) -> SeuEffect {
    let mut core_a = setup(workload);
    let mut core_b = setup(workload);
    let mut flipped = false;
    loop {
        if core_a.is_halted() && core_b.is_halted() {
            break;
        }
        if core_a.cycles() >= workload.max_cycles {
            return SeuEffect::Due;
        }
        if !flipped && core_a.cycles() >= cycle {
            core_a.flip_register_bit(reg, bit);
            flipped = true;
        }
        let ra = core_a.step();
        let rb = core_b.step();
        if ra.is_err() != rb.is_err() {
            return SeuEffect::Detected; // one core trapped
        }
        if ra.is_err() {
            return SeuEffect::Due;
        }
        // Compare the store streams (the lockstep checker bus).
        if core_a.store_trace() != core_b.store_trace() {
            return SeuEffect::Detected;
        }
        if core_a.pc() != core_b.pc() {
            return SeuEffect::Detected;
        }
    }
    if outputs_of(&core_a) == golden {
        SeuEffect::Masked
    } else {
        // Diverged silently without ever disagreeing on a store — cannot
        // happen with PC comparison, kept for completeness.
        SeuEffect::Sdc
    }
}

/// Runs a randomized SEU campaign (register and memory upsets mixed
/// 70/30) against one configuration.
pub fn run_campaign(
    config: AutoSocConfig,
    workload: &Workload,
    injections: usize,
    seed: u64,
) -> AutoSocReport {
    let golden = golden_outputs(workload);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = AutoSocReport {
        config,
        injections,
        masked: 0,
        corrected: 0,
        detected: 0,
        sdc: 0,
        due: 0,
    };
    for _ in 0..injections {
        // Target the architecturally *live* state: the workloads use
        // r1..r12 and the first 32 data words; flips beyond that are
        // trivially masked and would only dilute the comparison.
        let target = if rng.gen_bool(0.7) {
            SeuTarget::Register {
                reg: rng.gen_range(1..12),
                bit: rng.gen_range(0..24),
                cycle: rng.gen_range(0..workload.max_cycles / 8),
            }
        } else {
            SeuTarget::Memory {
                address: DATA_BASE + rng.gen_range(0..32),
                bit: rng.gen_range(0..16),
            }
        };
        match inject_one(config, workload, target, &golden) {
            SeuEffect::Masked => report.masked += 1,
            SeuEffect::Corrected => report.corrected += 1,
            SeuEffect::Detected => report.detected += 1,
            SeuEffect::Sdc => report.sdc += 1,
            SeuEffect::Due => report.due += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn hamming_corrects_all_single_flips() {
        let ecc = Hamming3832;
        for data in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let code = ecc.encode(data);
            assert_eq!(ecc.decode(code), EccDecode::Clean(data));
            for bit in 0..39 {
                let corrupted = code ^ (1u64 << bit);
                match ecc.decode(corrupted) {
                    EccDecode::Clean(v) | EccDecode::Corrected(v) => {
                        assert_eq!(v, data, "bit {bit}")
                    }
                    EccDecode::DoubleError => panic!("single flip at {bit} misdecoded"),
                }
            }
        }
    }

    #[test]
    fn hamming_detects_double_flips() {
        let ecc = Hamming3832;
        let code = ecc.encode(0x1234_5678);
        let mut detected = 0;
        let mut total = 0;
        for b1 in 0..39u32 {
            for b2 in (b1 + 1)..39 {
                total += 1;
                let corrupted = code ^ (1u64 << b1) ^ (1u64 << b2);
                if ecc.decode(corrupted) == EccDecode::DoubleError {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "SEC-DED detects every double flip");
    }

    #[test]
    fn lockstep_detects_register_seu() {
        let w = programs::bubble_sort().unwrap();
        let golden = golden_outputs(&w);
        let effect = inject_one(
            AutoSocConfig::Lockstep,
            &w,
            SeuTarget::Register {
                reg: 2,
                bit: 5,
                cycle: 100,
            },
            &golden,
        );
        assert!(
            matches!(effect, SeuEffect::Detected | SeuEffect::Masked),
            "{effect:?}: lockstep never lets an SDC through"
        );
    }

    #[test]
    fn ecc_corrects_memory_seu() {
        let w = programs::crc32().unwrap();
        let golden = golden_outputs(&w);
        let effect = inject_one(
            AutoSocConfig::EccMemory,
            &w,
            SeuTarget::Memory {
                address: DATA_BASE + 3,
                bit: 7,
            },
            &golden,
        );
        assert_eq!(effect, SeuEffect::Corrected);
    }

    #[test]
    fn baseline_memory_seu_in_inputs_corrupts_crc() {
        let w = programs::crc32().unwrap();
        let golden = golden_outputs(&w);
        let effect = inject_one(
            AutoSocConfig::Baseline,
            &w,
            SeuTarget::Memory {
                address: DATA_BASE + 3,
                bit: 7,
            },
            &golden,
        );
        assert_eq!(effect, SeuEffect::Sdc, "CRC consumes every input bit");
    }

    #[test]
    fn campaign_orders_configs_by_protection() {
        let w = programs::bubble_sort().unwrap();
        let n = 25;
        let base = run_campaign(AutoSocConfig::Baseline, &w, n, 42);
        let lock = run_campaign(AutoSocConfig::Lockstep, &w, n, 42);
        let full = run_campaign(AutoSocConfig::LockstepEcc, &w, n, 42);
        assert!(lock.sdc_rate() <= base.sdc_rate());
        assert!(full.sdc_rate() <= lock.sdc_rate());
        assert_eq!(full.sdc, 0, "lockstep+ECC eliminates SDC: {full:?}");
        assert!(full.protection_rate() >= lock.protection_rate());
        assert_eq!(
            base.masked + base.corrected + base.detected + base.sdc + base.due,
            n
        );
    }

    #[test]
    fn config_metadata() {
        assert_eq!(AutoSocConfig::all().len(), 4);
        assert!(AutoSocConfig::LockstepEcc.has_lockstep());
        assert!(AutoSocConfig::LockstepEcc.has_ecc());
        assert!(!AutoSocConfig::Baseline.has_ecc());
        assert!(AutoSocConfig::Lockstep.area_overhead() > 0.9);
    }
}
